//! Little-endian binary encoding helpers shared by WAL record payloads
//! and snapshot state.
//!
//! Floats travel as their raw IEEE-754 bits, so every value — including
//! the `±inf` sentinels an empty summary holds — round-trips bit-exactly.
//! The [`Reader`] is bounds-checked: running off the end of a buffer is a
//! recoverable [`CodecError`], never a panic, because decode paths face
//! bytes that survived a crash.

/// Decoding failure: truncated input or a structurally invalid value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(String);

impl CodecError {
    /// Creates an error carrying `msg`.
    pub fn msg(msg: impl Into<String>) -> CodecError {
        CodecError(msg.into())
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CodecError {}

/// Appends one byte.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a `u32`, little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64`, little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `i64`, little-endian.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its raw bits, little-endian.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Appends a `usize` as a `u64`.
pub fn put_len(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// Bounds-checked cursor over an encoded buffer.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` once every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::msg(format!(
                "unexpected end of input: need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consumes one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.bytes(1)?[0])
    }

    /// Consumes a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Consumes a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Consumes a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(self.u64()? as i64)
    }

    /// Consumes an `f64` stored as raw bits.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Consumes a length written by [`put_len`], rejecting values that
    /// could not possibly fit in the remaining input when each element
    /// occupies at least `min_elem_bytes` (a defence against corrupt
    /// lengths triggering huge allocations).
    pub fn len(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| CodecError::msg("length overflows usize"))?;
        if min_elem_bytes > 0 && n.saturating_mul(min_elem_bytes) > self.remaining() {
            return Err(CodecError::msg(format!(
                "implausible length {n}: {} bytes remain",
                self.remaining()
            )));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_i64(&mut buf, -42);
        put_f64(&mut buf, std::f64::consts::PI);
        put_f64(&mut buf, f64::INFINITY);
        put_f64(&mut buf, f64::NEG_INFINITY);
        put_len(&mut buf, 3);

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap().to_bits(), std::f64::consts::PI.to_bits());
        assert_eq!(r.f64().unwrap(), f64::INFINITY);
        assert_eq!(r.f64().unwrap(), f64::NEG_INFINITY);
        assert_eq!(r.len(0).unwrap(), 3);
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 5);
        let mut r = Reader::new(&buf[..4]);
        assert!(r.u64().is_err());
    }

    #[test]
    fn implausible_lengths_are_rejected() {
        let mut buf = Vec::new();
        put_len(&mut buf, usize::MAX / 2);
        let mut r = Reader::new(&buf);
        assert!(r.len(8).is_err());
    }
}
