//! The segmented append-only log.
//!
//! A [`Wal`] owns a directory of segment files named
//! `wal-{first_lsn:020}.seg`. Records carry consecutive log sequence
//! numbers starting at 1; a segment's name is the LSN of its first
//! record, so the files sort chronologically by name and a segment can be
//! deleted the moment a snapshot covers every LSN it holds.
//!
//! **Open** scans every segment in order and repairs what a crash left
//! behind: a torn tail (the file ends mid-frame) or a corrupt frame
//! (checksum mismatch, absurd length, LSN discontinuity) truncates the
//! file back to its last valid record, and any later segments — which
//! would leave a hole in the LSN sequence — are dropped. Zero-length
//! segments (a crash between segment creation and the first append) are
//! removed. Every repair is reported as a diagnostic string, never a
//! panic: recovering to the last durable record is the expected path
//! after a kill, not an exceptional one.
//!
//! **Appends** batch any number of payloads into one `write_all`. The
//! fsync policy decides when the OS buffers are forced to disk:
//! [`FsyncPolicy::Always`] after every batch (every acknowledged point
//! survives power loss), [`FsyncPolicy::Interval`] at most every `d` via
//! [`Wal::tick`] (bounded loss window, near-native throughput),
//! [`FsyncPolicy::OnClose`] only on rolls and shutdown (process kills —
//! which do not lose OS page-cache writes — still lose nothing; power
//! loss can). Sealing a segment always syncs it first.

use crate::record::{decode_record, encode_record, Frame};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// When appended records are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every append batch.
    Always,
    /// Fsync when [`Wal::tick`] observes this much time since the last
    /// sync (and on segment rolls and close).
    Interval(Duration),
    /// Fsync only on segment rolls and close.
    OnClose,
}

impl FsyncPolicy {
    /// Parses a policy name (`always` / `interval` / `onclose`),
    /// using `interval` as the period for the interval policy.
    pub fn parse(name: &str, interval: Duration) -> Option<FsyncPolicy> {
        match name {
            "always" => Some(FsyncPolicy::Always),
            "interval" => Some(FsyncPolicy::Interval(interval)),
            "onclose" | "on-close" => Some(FsyncPolicy::OnClose),
            _ => None,
        }
    }

    /// The policy's flag name.
    pub fn as_str(&self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Interval(_) => "interval",
            FsyncPolicy::OnClose => "onclose",
        }
    }
}

/// Log tunables.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding the segment files (created if absent).
    pub dir: PathBuf,
    /// Roll to a new segment once the current one reaches this size.
    pub segment_bytes: u64,
    /// When appends are forced to stable storage.
    pub fsync: FsyncPolicy,
}

impl WalConfig {
    /// A configuration with the default 64 MiB segments and a 50 ms
    /// fsync interval.
    pub fn new(dir: impl Into<PathBuf>) -> WalConfig {
        WalConfig {
            dir: dir.into(),
            segment_bytes: 64 * 1024 * 1024,
            fsync: FsyncPolicy::Interval(Duration::from_millis(50)),
        }
    }
}

/// What [`Wal::open`] found and repaired.
#[derive(Debug, Default)]
pub struct WalOpenReport {
    /// Highest LSN recovered (0 when the log is empty).
    pub last_lsn: u64,
    /// Segment files kept (including the one reopened for appends).
    pub segments: usize,
    /// Bytes discarded while repairing torn tails, corrupt frames and
    /// dropped segments.
    pub truncated_bytes: u64,
    /// Human-readable repair log; empty after a clean shutdown.
    pub diagnostics: Vec<String>,
}

/// Point-in-time log statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalStats {
    /// Highest assigned LSN (0 when empty).
    pub last_lsn: u64,
    /// Live segment files, including the append target.
    pub segments: usize,
    /// Bytes across all live segments.
    pub live_bytes: u64,
    /// Records appended since open.
    pub appended_records: u64,
    /// Frame bytes appended since open.
    pub appended_bytes: u64,
    /// Fsyncs performed since open.
    pub syncs: u64,
    /// Duration of the most recent fsync, in microseconds.
    pub last_sync_micros: u64,
}

/// A sealed (no longer appended-to) segment.
struct Sealed {
    first_lsn: u64,
    path: PathBuf,
    bytes: u64,
}

struct Inner {
    sealed: Vec<Sealed>,
    current: File,
    current_path: PathBuf,
    current_first_lsn: u64,
    current_bytes: u64,
    next_lsn: u64,
    dirty: bool,
    last_sync: Instant,
    encode_buf: Vec<u8>,
    appended_records: u64,
    appended_bytes: u64,
    syncs: u64,
    last_sync_micros: u64,
    /// Set after an append/sync I/O error; the log refuses further
    /// appends rather than risk interleaving garbage.
    failed: Option<String>,
}

/// The write-ahead log. All methods take `&self`; appends from
/// concurrent shards serialise on an internal mutex.
pub struct Wal {
    config: WalConfig,
    inner: Mutex<Inner>,
    /// Observes every fsync's duration in microseconds (installed once by
    /// the server to feed its latency histogram).
    sync_observer: OnceLock<Box<dyn Fn(u64) + Send + Sync>>,
}

fn segment_name(first_lsn: u64) -> String {
    format!("wal-{first_lsn:020}.seg")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

/// Fsyncs `dir` so renames/creates/deletes inside it are durable.
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

impl Wal {
    /// Opens (creating the directory if needed) and repairs the log;
    /// returns the log positioned for appends plus the repair report.
    pub fn open(config: WalConfig) -> io::Result<(Wal, WalOpenReport)> {
        fs::create_dir_all(&config.dir)?;
        let mut report = WalOpenReport::default();

        let mut segments: Vec<(u64, PathBuf)> = fs::read_dir(&config.dir)?
            .filter_map(|entry| {
                let entry = entry.ok()?;
                let lsn = parse_segment_name(entry.file_name().to_str()?)?;
                Some((lsn, entry.path()))
            })
            .collect();
        segments.sort_by_key(|(lsn, _)| *lsn);

        let mut kept: Vec<Sealed> = Vec::new();
        let mut next_lsn: u64 = 1;
        let mut drop_rest = false;
        for (name_lsn, path) in segments {
            let name = path
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .into_owned();
            if drop_rest {
                let bytes = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                report.truncated_bytes += bytes;
                report
                    .diagnostics
                    .push(format!("dropped segment {name} past an earlier repair"));
                fs::remove_file(&path)?;
                continue;
            }
            let data = fs::read(&path)?;
            if data.is_empty() {
                report
                    .diagnostics
                    .push(format!("removed zero-length segment {name}"));
                fs::remove_file(&path)?;
                continue;
            }
            let mut offset = 0usize;
            let mut expected = name_lsn;
            loop {
                match decode_record(&data[offset..]) {
                    Frame::Record { lsn, frame_len, .. } => {
                        if lsn != expected {
                            report.diagnostics.push(format!(
                                "{name}: LSN discontinuity at byte {offset} \
                                 (found {lsn}, expected {expected}); truncated"
                            ));
                            drop_rest = true;
                            break;
                        }
                        expected += 1;
                        offset += frame_len;
                    }
                    Frame::Incomplete => {
                        if offset < data.len() {
                            report.diagnostics.push(format!(
                                "{name}: torn tail at byte {offset} \
                                 ({} bytes discarded)",
                                data.len() - offset
                            ));
                            drop_rest = true;
                        }
                        break;
                    }
                    Frame::Corrupt(msg) => {
                        report.diagnostics.push(format!(
                            "{name}: corrupt frame at byte {offset} ({msg}); \
                             truncated to last valid record"
                        ));
                        drop_rest = true;
                        break;
                    }
                }
            }
            if offset == 0 {
                // Nothing valid in this file at all.
                report.truncated_bytes += data.len() as u64;
                fs::remove_file(&path)?;
                continue;
            }
            if offset < data.len() {
                report.truncated_bytes += (data.len() - offset) as u64;
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(offset as u64)?;
                f.sync_all()?;
            }
            next_lsn = expected;
            kept.push(Sealed {
                first_lsn: name_lsn,
                path,
                bytes: offset as u64,
            });
        }

        // Reopen the newest surviving segment for appends, or start a
        // fresh one.
        let (current_path, current_first_lsn, current_bytes) = match kept.pop() {
            Some(seg) => (seg.path, seg.first_lsn, seg.bytes),
            None => {
                let path = config.dir.join(segment_name(next_lsn));
                drop(File::create(&path)?);
                sync_dir(&config.dir)?;
                (path, next_lsn, 0)
            }
        };
        let current = OpenOptions::new().append(true).open(&current_path)?;

        report.last_lsn = next_lsn - 1;
        report.segments = kept.len() + 1;
        let wal = Wal {
            config,
            inner: Mutex::new(Inner {
                sealed: kept,
                current,
                current_path,
                current_first_lsn,
                current_bytes,
                next_lsn,
                dirty: false,
                last_sync: Instant::now(),
                encode_buf: Vec::new(),
                appended_records: 0,
                appended_bytes: 0,
                syncs: 0,
                last_sync_micros: 0,
                failed: None,
            }),
            sync_observer: OnceLock::new(),
        };
        Ok((wal, report))
    }

    /// The log's configuration.
    pub fn config(&self) -> &WalConfig {
        &self.config
    }

    /// Installs the fsync-latency observer (first call wins). The
    /// observer receives each fsync's duration in microseconds.
    pub fn set_sync_observer(&self, observer: Box<dyn Fn(u64) + Send + Sync>) {
        let _ = self.sync_observer.set(observer);
    }

    /// Appends `payloads` as consecutive records in one write, returning
    /// the LSN of the last record (or the current last LSN for an empty
    /// batch).
    pub fn append_batch(&self, payloads: &[&[u8]]) -> io::Result<u64> {
        let mut inner = self.inner.lock().expect("wal poisoned");
        if let Some(msg) = &inner.failed {
            return Err(io::Error::other(format!("wal previously failed: {msg}")));
        }
        if payloads.is_empty() {
            return Ok(inner.next_lsn - 1);
        }
        let mut buf = std::mem::take(&mut inner.encode_buf);
        buf.clear();
        for payload in payloads {
            encode_record(inner.next_lsn, payload, &mut buf);
            inner.next_lsn += 1;
        }
        let write = inner.current.write_all(&buf);
        if let Err(e) = write {
            inner.failed = Some(e.to_string());
            return Err(e);
        }
        inner.current_bytes += buf.len() as u64;
        inner.appended_records += payloads.len() as u64;
        inner.appended_bytes += buf.len() as u64;
        inner.dirty = true;
        let last = inner.next_lsn - 1;
        buf.clear();
        inner.encode_buf = buf;
        if matches!(self.config.fsync, FsyncPolicy::Always) {
            self.sync_inner(&mut inner)?;
        }
        if inner.current_bytes >= self.config.segment_bytes {
            self.roll(&mut inner)?;
        }
        Ok(last)
    }

    /// Forces buffered appends to stable storage.
    pub fn sync(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("wal poisoned");
        self.sync_inner(&mut inner)
    }

    /// Drives the [`FsyncPolicy::Interval`] policy: syncs when the
    /// configured interval has elapsed since the last sync. No-op under
    /// the other policies. Call this from a periodic maintenance thread.
    pub fn tick(&self) -> io::Result<()> {
        let FsyncPolicy::Interval(period) = self.config.fsync else {
            return Ok(());
        };
        let mut inner = self.inner.lock().expect("wal poisoned");
        if inner.dirty && inner.last_sync.elapsed() >= period {
            self.sync_inner(&mut inner)?;
        }
        Ok(())
    }

    /// Highest assigned LSN (0 when the log is empty).
    pub fn last_lsn(&self) -> u64 {
        self.inner.lock().expect("wal poisoned").next_lsn - 1
    }

    /// Deletes sealed segments whose every record has LSN ≤ `lsn`
    /// (because a snapshot now covers them). Returns the bytes freed.
    pub fn truncate_until(&self, lsn: u64) -> io::Result<u64> {
        let mut inner = self.inner.lock().expect("wal poisoned");
        let mut freed = 0u64;
        while !inner.sealed.is_empty() {
            let next_first = inner
                .sealed
                .get(1)
                .map(|s| s.first_lsn)
                .unwrap_or(inner.current_first_lsn);
            // The head segment's records all precede `next_first`.
            if next_first > lsn + 1 {
                break;
            }
            let seg = inner.sealed.remove(0);
            fs::remove_file(&seg.path)?;
            freed += seg.bytes;
        }
        if freed > 0 {
            sync_dir(&self.config.dir)?;
        }
        Ok(freed)
    }

    /// Streams every record to `f` in LSN order. Intended for recovery,
    /// before concurrent appends begin; the log is locked for the
    /// duration. Returns the number of records visited.
    pub fn replay<F: FnMut(u64, &[u8])>(&self, mut f: F) -> io::Result<u64> {
        let inner = self.inner.lock().expect("wal poisoned");
        let mut paths: Vec<&Path> = inner.sealed.iter().map(|s| s.path.as_path()).collect();
        paths.push(inner.current_path.as_path());
        let mut count = 0u64;
        for path in paths {
            let data = fs::read(path)?;
            let mut offset = 0usize;
            while let Frame::Record {
                lsn,
                payload,
                frame_len,
            } = decode_record(&data[offset..])
            {
                f(lsn, payload);
                count += 1;
                offset += frame_len;
            }
        }
        Ok(count)
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> WalStats {
        let inner = self.inner.lock().expect("wal poisoned");
        WalStats {
            last_lsn: inner.next_lsn - 1,
            segments: inner.sealed.len() + 1,
            live_bytes: inner.sealed.iter().map(|s| s.bytes).sum::<u64>() + inner.current_bytes,
            appended_records: inner.appended_records,
            appended_bytes: inner.appended_bytes,
            syncs: inner.syncs,
            last_sync_micros: inner.last_sync_micros,
        }
    }

    fn sync_inner(&self, inner: &mut Inner) -> io::Result<()> {
        if !inner.dirty {
            return Ok(());
        }
        let start = Instant::now();
        if let Err(e) = inner.current.sync_data() {
            inner.failed = Some(e.to_string());
            return Err(e);
        }
        let micros = start.elapsed().as_micros() as u64;
        inner.dirty = false;
        inner.last_sync = Instant::now();
        inner.syncs += 1;
        inner.last_sync_micros = micros;
        if let Some(observer) = self.sync_observer.get() {
            observer(micros);
        }
        Ok(())
    }

    /// Seals the current segment (always fsynced first — sealed segments
    /// are durable by construction) and starts a fresh one.
    fn roll(&self, inner: &mut Inner) -> io::Result<()> {
        inner.current.sync_data()?;
        inner.dirty = false;
        inner.last_sync = Instant::now();
        let path = self.config.dir.join(segment_name(inner.next_lsn));
        let file = File::create(&path)?;
        sync_dir(&self.config.dir)?;
        let old_path = std::mem::replace(&mut inner.current_path, path);
        let old_bytes = std::mem::replace(&mut inner.current_bytes, 0);
        let old_first = std::mem::replace(&mut inner.current_first_lsn, inner.next_lsn);
        inner.current = file;
        inner.sealed.push(Sealed {
            first_lsn: old_first,
            path: old_path,
            bytes: old_bytes,
        });
        Ok(())
    }
}

impl Drop for Wal {
    /// Best-effort final sync so a clean drop loses nothing even under
    /// [`FsyncPolicy::OnClose`].
    fn drop(&mut self) {
        if let Ok(mut inner) = self.inner.lock() {
            let _ = self.sync_inner(&mut inner);
        }
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.config.dir)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("traj-wal-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_config(dir: &Path) -> WalConfig {
        WalConfig {
            dir: dir.to_path_buf(),
            segment_bytes: 256,
            fsync: FsyncPolicy::OnClose,
        }
    }

    fn collect(wal: &Wal) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::new();
        wal.replay(|lsn, payload| out.push((lsn, payload.to_vec())))
            .expect("replay");
        out
    }

    #[test]
    fn append_reopen_and_replay() {
        let dir = temp_dir("reopen");
        {
            let (wal, report) = Wal::open(WalConfig::new(&dir)).expect("open");
            assert_eq!(report.last_lsn, 0);
            assert!(report.diagnostics.is_empty());
            assert_eq!(wal.append_batch(&[b"one", b"two"]).unwrap(), 2);
            assert_eq!(wal.append_batch(&[b"three"]).unwrap(), 3);
            wal.sync().unwrap();
        }
        let (wal, report) = Wal::open(WalConfig::new(&dir)).expect("reopen");
        assert_eq!(report.last_lsn, 3);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        assert_eq!(
            collect(&wal),
            vec![
                (1, b"one".to_vec()),
                (2, b"two".to_vec()),
                (3, b"three".to_vec())
            ]
        );
        assert_eq!(wal.append_batch(&[b"four"]).unwrap(), 4, "LSNs continue");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segments_roll_and_truncate() {
        let dir = temp_dir("roll");
        let (wal, _) = Wal::open(tiny_config(&dir)).expect("open");
        let payload = [7u8; 64];
        for _ in 0..12 {
            wal.append_batch(&[&payload]).unwrap();
        }
        let stats = wal.stats();
        assert!(stats.segments > 1, "expected rolls, got {stats:?}");
        assert_eq!(stats.last_lsn, 12);
        assert_eq!(collect(&wal).len(), 12);

        // A snapshot at LSN 9 releases every sealed segment it covers.
        let freed = wal.truncate_until(9).unwrap();
        assert!(freed > 0);
        let replayed = collect(&wal);
        assert_eq!(replayed.last().unwrap().0, 12, "tail survives");
        assert!(
            replayed.first().unwrap().0 <= 10,
            "records past the snapshot survive"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_truncates_to_last_valid_record() {
        let dir = temp_dir("torn");
        {
            let (wal, _) = Wal::open(WalConfig::new(&dir)).expect("open");
            wal.append_batch(&[b"alpha", b"beta"]).unwrap();
            wal.sync().unwrap();
        }
        // Simulate a crash mid-append: half a frame of garbage.
        let seg = dir.join(segment_name(1));
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[0x21, 0x00, 0x00, 0x00, 0xAA, 0xBB]).unwrap();
        drop(f);

        let (wal, report) = Wal::open(WalConfig::new(&dir)).expect("reopen");
        assert_eq!(report.last_lsn, 2);
        assert_eq!(report.truncated_bytes, 6);
        assert!(
            report.diagnostics.iter().any(|d| d.contains("torn tail")),
            "{:?}",
            report.diagnostics
        );
        assert_eq!(collect(&wal).len(), 2);
        assert_eq!(wal.append_batch(&[b"gamma"]).unwrap(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_byte_truncates_with_a_diagnostic() {
        let dir = temp_dir("flip");
        {
            let (wal, _) = Wal::open(WalConfig::new(&dir)).expect("open");
            wal.append_batch(&[b"aaaa", b"bbbb", b"cccc"]).unwrap();
            wal.sync().unwrap();
        }
        let seg = dir.join(segment_name(1));
        let mut data = fs::read(&seg).unwrap();
        let second_frame = 8 + 8 + 4; // first frame: header + lsn + "aaaa"
        data[second_frame + 10] ^= 0x80; // flip a bit inside record 2
        fs::write(&seg, &data).unwrap();

        let (wal, report) = Wal::open(WalConfig::new(&dir)).expect("reopen");
        assert_eq!(report.last_lsn, 1, "recovers to the last valid record");
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.contains("corrupt frame")),
            "{:?}",
            report.diagnostics
        );
        assert_eq!(collect(&wal), vec![(1, b"aaaa".to_vec())]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_length_segment_is_removed_with_a_diagnostic() {
        let dir = temp_dir("zero");
        {
            let (wal, _) = Wal::open(WalConfig::new(&dir)).expect("open");
            wal.append_batch(&[b"solo"]).unwrap();
            wal.sync().unwrap();
        }
        // A crash between segment creation and first append leaves an
        // empty file.
        File::create(dir.join(segment_name(2))).unwrap();

        let (wal, report) = Wal::open(WalConfig::new(&dir)).expect("reopen");
        assert_eq!(report.last_lsn, 1);
        assert!(
            report.diagnostics.iter().any(|d| d.contains("zero-length")),
            "{:?}",
            report.diagnostics
        );
        assert_eq!(collect(&wal).len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_in_a_middle_segment_drops_later_segments() {
        let dir = temp_dir("middle");
        {
            let (wal, _) = Wal::open(tiny_config(&dir)).expect("open");
            let payload = [1u8; 64];
            for _ in 0..12 {
                wal.append_batch(&[&payload]).unwrap();
            }
            wal.sync().unwrap();
            assert!(wal.stats().segments >= 3);
        }
        // Corrupt the first record of the first segment entirely.
        let seg = dir.join(segment_name(1));
        let mut data = fs::read(&seg).unwrap();
        data[20] ^= 0xFF;
        fs::write(&seg, &data).unwrap();

        let (wal, report) = Wal::open(WalConfig::new(&dir)).expect("reopen");
        assert_eq!(
            report.last_lsn, 0,
            "a hole in the LSN sequence drops the rest"
        );
        assert!(report.diagnostics.len() >= 2, "{:?}", report.diagnostics);
        assert!(report.truncated_bytes > 0);
        assert_eq!(collect(&wal).len(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interval_policy_syncs_on_tick() {
        let dir = temp_dir("tick");
        let config = WalConfig {
            fsync: FsyncPolicy::Interval(Duration::from_millis(1)),
            ..WalConfig::new(&dir)
        };
        let (wal, _) = Wal::open(config).expect("open");
        let observed = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let counter = std::sync::Arc::clone(&observed);
        wal.set_sync_observer(Box::new(move |_| {
            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }));
        wal.append_batch(&[b"x"]).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        wal.tick().unwrap();
        assert_eq!(wal.stats().syncs, 1);
        assert_eq!(observed.load(std::sync::atomic::Ordering::Relaxed), 1);
        wal.tick().unwrap();
        assert_eq!(wal.stats().syncs, 1, "clean log does not re-sync");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn always_policy_syncs_every_batch() {
        let dir = temp_dir("always");
        let config = WalConfig {
            fsync: FsyncPolicy::Always,
            ..WalConfig::new(&dir)
        };
        let (wal, _) = Wal::open(config).expect("open");
        wal.append_batch(&[b"a"]).unwrap();
        wal.append_batch(&[b"b", b"c"]).unwrap();
        assert_eq!(wal.stats().syncs, 2);
        fs::remove_dir_all(&dir).ok();
    }
}
