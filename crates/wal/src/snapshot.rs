//! Atomic snapshot storage.
//!
//! A snapshot is one opaque payload (the engine's encoded state) tagged
//! with the LSN it covers: after loading it, only WAL records past that
//! LSN need replaying. Files are named `snap-{lsn:020}.snap` and written
//! crash-safely: the bytes go to a temporary file which is fsynced,
//! renamed into place, and the directory fsynced — a reader can never
//! observe a half-written snapshot under its final name. Each file
//! carries a magic, a version, and a CRC-32 over the LSN and payload;
//! [`SnapshotStore::load_latest`] validates and falls back to the
//! previous snapshot (with a diagnostic) if the newest is damaged, which
//! is why [`SnapshotStore::write`] keeps one older generation around.

use crate::crc32::Crc32;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

const MAGIC: [u8; 4] = *b"TSNP";
const VERSION: u32 = 1;
/// Magic + version + lsn + payload length + crc.
const HEADER_BYTES: usize = 4 + 4 + 8 + 8 + 4;

/// Snapshot generations kept on disk (the newest plus fallbacks).
const KEEP_GENERATIONS: usize = 2;

/// A validated snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Every WAL record with LSN ≤ this is reflected in the payload.
    pub lsn: u64,
    /// The opaque engine state.
    pub payload: Vec<u8>,
}

/// A directory of snapshot files.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
}

fn snapshot_name(lsn: u64) -> String {
    format!("snap-{lsn:020}.snap")
}

fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

impl SnapshotStore {
    /// Opens (creating if needed) the snapshot directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<SnapshotStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(SnapshotStore { dir })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes a snapshot covering `lsn` atomically and prunes old
    /// generations. Returns the final path.
    pub fn write(&self, lsn: u64, payload: &[u8]) -> io::Result<PathBuf> {
        let final_path = self.dir.join(snapshot_name(lsn));
        let tmp_path = self.dir.join(format!("{}.tmp", snapshot_name(lsn)));

        let mut crc = Crc32::new();
        crc.update(&lsn.to_le_bytes());
        crc.update(payload);

        let mut header = Vec::with_capacity(HEADER_BYTES);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&lsn.to_le_bytes());
        header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        header.extend_from_slice(&crc.finalize().to_le_bytes());

        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp_path)?;
            f.write_all(&header)?;
            f.write_all(payload)?;
            f.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        sync_dir(&self.dir)?;
        self.prune()?;
        Ok(final_path)
    }

    /// Loads the newest valid snapshot, skipping damaged ones with a
    /// diagnostic per skip. `Ok((None, _))` means no usable snapshot.
    pub fn load_latest(&self) -> io::Result<(Option<Snapshot>, Vec<String>)> {
        let mut diagnostics = Vec::new();
        let mut candidates = self.list()?;
        candidates.reverse(); // newest first
        for (lsn, path) in candidates {
            match Self::read_validated(lsn, &path) {
                Ok(snapshot) => return Ok((Some(snapshot), diagnostics)),
                Err(msg) => diagnostics.push(format!(
                    "skipped snapshot {}: {msg}",
                    path.file_name().unwrap_or_default().to_string_lossy()
                )),
            }
        }
        Ok((None, diagnostics))
    }

    /// Snapshot LSNs currently on disk, ascending.
    pub fn lsns(&self) -> io::Result<Vec<u64>> {
        Ok(self.list()?.into_iter().map(|(lsn, _)| lsn).collect())
    }

    fn list(&self) -> io::Result<Vec<(u64, PathBuf)>> {
        let mut out: Vec<(u64, PathBuf)> = fs::read_dir(&self.dir)?
            .filter_map(|entry| {
                let entry = entry.ok()?;
                let lsn = parse_snapshot_name(entry.file_name().to_str()?)?;
                Some((lsn, entry.path()))
            })
            .collect();
        out.sort_by_key(|(lsn, _)| *lsn);
        Ok(out)
    }

    fn read_validated(expected_lsn: u64, path: &Path) -> Result<Snapshot, String> {
        let data = fs::read(path).map_err(|e| e.to_string())?;
        if data.len() < HEADER_BYTES {
            return Err(format!("file too short ({} bytes)", data.len()));
        }
        if data[..4] != MAGIC {
            return Err("bad magic".to_string());
        }
        let version = u32::from_le_bytes([data[4], data[5], data[6], data[7]]);
        if version != VERSION {
            return Err(format!("unsupported version {version}"));
        }
        let lsn = u64::from_le_bytes(data[8..16].try_into().expect("8 bytes"));
        if lsn != expected_lsn {
            return Err(format!("LSN {lsn} does not match the file name"));
        }
        let len = u64::from_le_bytes(data[16..24].try_into().expect("8 bytes")) as usize;
        let stored_crc = u32::from_le_bytes(data[24..28].try_into().expect("4 bytes"));
        if data.len() != HEADER_BYTES + len {
            return Err(format!(
                "payload length mismatch (header says {len}, file holds {})",
                data.len() - HEADER_BYTES
            ));
        }
        let payload = &data[HEADER_BYTES..];
        let mut crc = Crc32::new();
        crc.update(&lsn.to_le_bytes());
        crc.update(payload);
        if crc.finalize() != stored_crc {
            return Err("checksum mismatch".to_string());
        }
        Ok(Snapshot {
            lsn,
            payload: payload.to_vec(),
        })
    }

    fn prune(&self) -> io::Result<()> {
        let list = self.list()?;
        if list.len() <= KEEP_GENERATIONS {
            return Ok(());
        }
        for (_, path) in &list[..list.len() - KEEP_GENERATIONS] {
            fs::remove_file(path)?;
        }
        sync_dir(&self.dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("traj-snap-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_then_load_round_trips() {
        let dir = temp_dir("rt");
        let store = SnapshotStore::open(&dir).unwrap();
        let (none, diags) = store.load_latest().unwrap();
        assert!(none.is_none() && diags.is_empty());

        store.write(17, b"state-bytes").unwrap();
        let (snap, diags) = store.load_latest().unwrap();
        assert!(diags.is_empty());
        let snap = snap.expect("snapshot");
        assert_eq!(snap.lsn, 17);
        assert_eq!(snap.payload, b"state-bytes");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn newest_wins_and_old_generations_are_pruned() {
        let dir = temp_dir("prune");
        let store = SnapshotStore::open(&dir).unwrap();
        for lsn in [10, 20, 30, 40] {
            store.write(lsn, format!("at-{lsn}").as_bytes()).unwrap();
        }
        assert_eq!(store.lsns().unwrap(), vec![30, 40], "keeps two generations");
        let (snap, _) = store.load_latest().unwrap();
        assert_eq!(snap.unwrap().lsn, 40);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_falls_back_with_a_diagnostic() {
        let dir = temp_dir("fallback");
        let store = SnapshotStore::open(&dir).unwrap();
        store.write(5, b"good-old").unwrap();
        let newest = store.write(9, b"good-new").unwrap();
        let mut data = fs::read(&newest).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0x01;
        fs::write(&newest, &data).unwrap();

        let (snap, diags) = store.load_latest().unwrap();
        let snap = snap.expect("fallback snapshot");
        assert_eq!(snap.lsn, 5);
        assert_eq!(snap.payload, b"good-old");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].contains("checksum mismatch"), "{diags:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_snapshot_is_skipped() {
        let dir = temp_dir("short");
        let store = SnapshotStore::open(&dir).unwrap();
        store.write(3, b"ok").unwrap();
        let newest = store.write(8, b"will-be-cut").unwrap();
        let data = fs::read(&newest).unwrap();
        fs::write(&newest, &data[..data.len() - 4]).unwrap();

        let (snap, diags) = store.load_latest().unwrap();
        assert_eq!(snap.expect("fallback").lsn, 3);
        assert!(!diags.is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_payload_snapshot_is_valid() {
        let dir = temp_dir("empty");
        let store = SnapshotStore::open(&dir).unwrap();
        store.write(1, b"").unwrap();
        let (snap, _) = store.load_latest().unwrap();
        assert_eq!(snap.expect("snapshot").payload.len(), 0);
        fs::remove_dir_all(&dir).ok();
    }
}
