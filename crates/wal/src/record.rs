//! The on-disk WAL record frame.
//!
//! ```text
//! ┌───────────┬───────────┬───────────┬─────────────────┐
//! │ len  u32  │ crc  u32  │ lsn  u64  │ payload         │
//! │ LE        │ LE        │ LE        │ len − 8 bytes   │
//! └───────────┴───────────┴───────────┴─────────────────┘
//! ```
//!
//! `len` counts the LSN plus the payload (everything the CRC covers), so
//! a frame occupies `8 + len` bytes on disk. The CRC is the IEEE CRC-32
//! of the LSN bytes followed by the payload; a flipped bit anywhere past
//! the length prefix fails validation. Decoding distinguishes an
//! [`Frame::Incomplete`] tail (a crash mid-write — truncate and carry on)
//! from a [`Frame::Corrupt`] body (bit rot or a torn write that still
//! left enough bytes — truncate at the last valid record and log it).

use crate::crc32::Crc32;

/// Fixed bytes before the payload: length, checksum, LSN.
pub const RECORD_HEADER_BYTES: usize = 16;

/// Upper bound on `len`; anything larger is treated as corruption (a
/// garbage length prefix would otherwise read gigabytes).
pub const MAX_RECORD_BYTES: u32 = 16 * 1024 * 1024;

/// Outcome of decoding one frame from the head of a buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame<'a> {
    /// A valid record: its LSN, payload, and total frame size in bytes.
    Record {
        /// Log sequence number of the record.
        lsn: u64,
        /// The opaque payload.
        payload: &'a [u8],
        /// Bytes the whole frame occupies on disk.
        frame_len: usize,
    },
    /// The buffer ends before the frame does (torn tail).
    Incomplete,
    /// The frame is structurally invalid or fails its checksum.
    Corrupt(String),
}

/// Appends the frame for (`lsn`, `payload`) to `out`.
pub fn encode_record(lsn: u64, payload: &[u8], out: &mut Vec<u8>) {
    let len = 8 + payload.len();
    debug_assert!(len <= MAX_RECORD_BYTES as usize, "oversized WAL record");
    out.extend_from_slice(&(len as u32).to_le_bytes());
    let mut crc = Crc32::new();
    crc.update(&lsn.to_le_bytes());
    crc.update(payload);
    out.extend_from_slice(&crc.finalize().to_le_bytes());
    out.extend_from_slice(&lsn.to_le_bytes());
    out.extend_from_slice(payload);
}

/// Decodes the frame at the head of `buf`.
pub fn decode_record(buf: &[u8]) -> Frame<'_> {
    if buf.len() < 8 {
        return Frame::Incomplete;
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len < 8 {
        return Frame::Corrupt(format!("record length {len} below minimum"));
    }
    if len > MAX_RECORD_BYTES {
        return Frame::Corrupt(format!("record length {len} exceeds the frame bound"));
    }
    let stored_crc = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    let frame_len = 8 + len as usize;
    if buf.len() < frame_len {
        return Frame::Incomplete;
    }
    let body = &buf[8..frame_len];
    let mut crc = Crc32::new();
    crc.update(body);
    if crc.finalize() != stored_crc {
        return Frame::Corrupt("checksum mismatch".to_string());
    }
    let lsn = u64::from_le_bytes([
        body[0], body[1], body[2], body[3], body[4], body[5], body[6], body[7],
    ]);
    Frame::Record {
        lsn,
        payload: &body[8..],
        frame_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        encode_record(42, b"hello", &mut buf);
        match decode_record(&buf) {
            Frame::Record {
                lsn,
                payload,
                frame_len,
            } => {
                assert_eq!(lsn, 42);
                assert_eq!(payload, b"hello");
                assert_eq!(frame_len, buf.len());
            }
            other => panic!("expected a record, got {other:?}"),
        }
    }

    #[test]
    fn back_to_back_records_decode_in_sequence() {
        let mut buf = Vec::new();
        encode_record(1, b"a", &mut buf);
        encode_record(2, b"bb", &mut buf);
        let Frame::Record { frame_len, .. } = decode_record(&buf) else {
            panic!("first record");
        };
        match decode_record(&buf[frame_len..]) {
            Frame::Record { lsn, payload, .. } => {
                assert_eq!(lsn, 2);
                assert_eq!(payload, b"bb");
            }
            other => panic!("expected the second record, got {other:?}"),
        }
    }

    #[test]
    fn flipped_byte_is_corrupt() {
        let mut buf = Vec::new();
        encode_record(7, b"payload", &mut buf);
        for i in 4..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            assert!(
                matches!(decode_record(&bad), Frame::Corrupt(_)),
                "byte {i} flip undetected"
            );
        }
    }

    #[test]
    fn truncated_tail_is_incomplete() {
        let mut buf = Vec::new();
        encode_record(7, b"payload", &mut buf);
        for cut in [3, 8, buf.len() - 1] {
            assert_eq!(decode_record(&buf[..cut]), Frame::Incomplete, "cut {cut}");
        }
    }

    #[test]
    fn absurd_length_is_corrupt_not_incomplete() {
        let mut buf = vec![0xFF, 0xFF, 0xFF, 0xFF]; // len = u32::MAX
        buf.extend_from_slice(&[0u8; 12]);
        assert!(matches!(decode_record(&buf), Frame::Corrupt(_)));
    }

    #[test]
    fn empty_payload_round_trips() {
        let mut buf = Vec::new();
        encode_record(1, b"", &mut buf);
        match decode_record(&buf) {
            Frame::Record { payload, .. } => assert!(payload.is_empty()),
            other => panic!("expected a record, got {other:?}"),
        }
    }
}
