//! Extended trajectory features — the paper's future work, implemented.
//!
//! §5: "The spatiotemporal characteristic of trajectory data is not taken
//! into account in most of the works from literature. […] space and time
//! dependencies can also be explored to tailor features for
//! transportation means prediction."
//!
//! This module adds ten segment-level features beyond the paper's 70
//! statistics:
//!
//! | feature | what it captures |
//! |---------|------------------|
//! | `total_duration_s` | trip length in time |
//! | `path_length_m` | trip length in space |
//! | `displacement_m` | start→end great-circle distance |
//! | `straightness` | displacement / path length ∈ [0, 1]; rail ≈ 1, strolls ≪ 1 |
//! | `stop_rate` | fraction of fixes below 0.5 m/s; buses/subways stop, trains don't |
//! | `turn_density_deg_per_km` | total absolute heading change per kilometre |
//! | `start_hour_sin`, `start_hour_cos` | time of day, circularly encoded |
//! | `day_of_week_sin`, `day_of_week_cos` | day of week, circularly encoded |
//!
//! The extended set is opt-in: the reproduction experiments run the
//! paper's 70 exactly; `trajlib`'s pipeline exposes the 80-feature
//! variant for the extension ablation.

use crate::point_features::PointFeatures;
use traj_geo::geodesy;
use traj_geo::Segment;

/// Number of extended features appended after the paper's 70.
pub const EXTENDED_FEATURE_COUNT: usize = 10;

/// Speed below which a fix counts as stopped, m/s.
pub const STOP_SPEED_THRESHOLD_MS: f64 = 0.5;

/// Names of the extended features, in vector order.
pub fn extended_feature_names() -> Vec<String> {
    [
        "total_duration_s",
        "path_length_m",
        "displacement_m",
        "straightness",
        "stop_rate",
        "turn_density_deg_per_km",
        "start_hour_sin",
        "start_hour_cos",
        "day_of_week_sin",
        "day_of_week_cos",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Computes the ten extended features of a segment (zeros for degenerate
/// segments, matching the base extractor's convention).
pub fn extended_features(segment: &Segment, pf: &PointFeatures) -> Vec<f64> {
    let mut out = Vec::with_capacity(EXTENDED_FEATURE_COUNT);
    let duration = segment.duration_s();
    let path: f64 = pf.distance.iter().skip(1).sum();
    let displacement = match (segment.points.first(), segment.points.last()) {
        (Some(a), Some(b)) => geodesy::point_distance_m(a, b),
        _ => 0.0,
    };
    let straightness = if path > 0.0 {
        (displacement / path).min(1.0)
    } else {
        0.0
    };
    let stop_rate = if pf.speed.is_empty() {
        0.0
    } else {
        pf.speed
            .iter()
            .filter(|&&v| v < STOP_SPEED_THRESHOLD_MS)
            .count() as f64
            / pf.speed.len() as f64
    };
    // Total absolute heading change (skip the back-filled head) per km.
    let total_turn_deg: f64 = pf
        .bearing_rate
        .iter()
        .skip(1)
        .zip(pf.duration.iter().skip(1))
        .map(|(&rate, &dt)| (rate * dt).abs())
        .sum();
    let turn_density = if path > 0.0 {
        total_turn_deg / (path / 1_000.0)
    } else {
        0.0
    };
    let (hour_sin, hour_cos, dow_sin, dow_cos) = match segment.points.first() {
        Some(p) => {
            let hour = p.t.millis_of_day() as f64 / 3_600_000.0; // [0, 24)
            let hour_angle = hour / 24.0 * std::f64::consts::TAU;
            let dow = p.t.day_index().rem_euclid(7) as f64;
            let dow_angle = dow / 7.0 * std::f64::consts::TAU;
            (
                hour_angle.sin(),
                hour_angle.cos(),
                dow_angle.sin(),
                dow_angle.cos(),
            )
        }
        None => (0.0, 0.0, 0.0, 0.0),
    };

    out.push(duration);
    out.push(path);
    out.push(displacement);
    out.push(straightness);
    out.push(stop_rate);
    out.push(turn_density);
    out.push(hour_sin);
    out.push(hour_cos);
    out.push(dow_sin);
    out.push(dow_cos);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_geo::geodesy::destination;
    use traj_geo::{Timestamp, TrajectoryPoint, TransportMode};

    fn straight_segment(speed_ms: f64, n: usize, start_s: i64) -> Segment {
        let mut points = Vec::with_capacity(n);
        let (mut lat, mut lon) = (39.9, 116.3);
        for i in 0..n {
            points.push(TrajectoryPoint::new(
                lat,
                lon,
                Timestamp::from_seconds(start_s + i as i64 * 2),
            ));
            let (nlat, nlon) = destination(lat, lon, 45.0, speed_ms * 2.0);
            lat = nlat;
            lon = nlon;
        }
        let day = Timestamp::from_seconds(start_s).day_index();
        Segment::new(1, TransportMode::Train, day, points)
    }

    fn features_of(seg: &Segment) -> Vec<f64> {
        extended_features(seg, &PointFeatures::compute(seg))
    }

    #[test]
    fn names_match_count() {
        let names = extended_feature_names();
        assert_eq!(names.len(), EXTENDED_FEATURE_COUNT);
        let seg = straight_segment(10.0, 20, 0);
        assert_eq!(features_of(&seg).len(), EXTENDED_FEATURE_COUNT);
    }

    #[test]
    fn straight_segment_has_unit_straightness_and_no_stops() {
        let seg = straight_segment(10.0, 30, 3600 * 8);
        let f = features_of(&seg);
        assert_eq!(f[0], 58.0, "duration: 29 intervals × 2 s");
        assert!((f[3] - 1.0).abs() < 0.01, "straightness {}", f[3]);
        assert_eq!(f[4], 0.0, "no stops at 10 m/s");
        assert!(f[5] < 10.0, "turn density {}", f[5]);
        // Path ≈ displacement ≈ 29 × 20 m.
        assert!((f[1] - 580.0).abs() < 2.0, "path {}", f[1]);
        assert!((f[2] - 580.0).abs() < 2.0, "displacement {}", f[2]);
    }

    #[test]
    fn out_and_back_has_near_zero_straightness() {
        // March north then back south to the start.
        let mut points = Vec::new();
        let (mut lat, lon) = (39.9, 116.3);
        for i in 0..10 {
            points.push(TrajectoryPoint::new(
                lat,
                lon,
                Timestamp::from_seconds(i * 2),
            ));
            let (nlat, _) = destination(lat, lon, 0.0, 20.0);
            lat = nlat;
        }
        for i in 10..20 {
            points.push(TrajectoryPoint::new(
                lat,
                lon,
                Timestamp::from_seconds(i * 2),
            ));
            let (nlat, _) = destination(lat, lon, 180.0, 20.0);
            lat = nlat;
        }
        let seg = Segment::new(1, TransportMode::Walk, 0, points);
        let f = features_of(&seg);
        assert!(f[3] < 0.15, "straightness {}", f[3]);
        // The U-turn contributes ~180° of turning.
        assert!(f[5] > 100.0, "turn density {}", f[5]);
    }

    #[test]
    fn stop_rate_counts_slow_fixes() {
        // Half the fixes stationary.
        let mut points = Vec::new();
        let (mut lat, lon) = (39.9, 116.3);
        for i in 0..20 {
            points.push(TrajectoryPoint::new(
                lat,
                lon,
                Timestamp::from_seconds(i * 2),
            ));
            if i >= 10 {
                let (nlat, _) = destination(lat, lon, 0.0, 10.0);
                lat = nlat;
            }
        }
        let seg = Segment::new(1, TransportMode::Bus, 0, points);
        let f = features_of(&seg);
        assert!((0.35..=0.65).contains(&f[4]), "stop rate {}", f[4]);
    }

    #[test]
    fn time_encodings_are_circular() {
        let morning = features_of(&straight_segment(5.0, 15, 8 * 3600));
        let evening = features_of(&straight_segment(5.0, 15, 20 * 3600));
        // 8 h and 20 h are opposite on the clock circle.
        assert!(
            (morning[6] + evening[6]).abs() < 0.01,
            "hour_sin opposition"
        );
        assert!(
            (morning[7] + evening[7]).abs() < 0.01,
            "hour_cos opposition"
        );
        // sin² + cos² = 1.
        assert!((morning[6] * morning[6] + morning[7] * morning[7] - 1.0).abs() < 1e-9);
        assert!((morning[8] * morning[8] + morning[9] * morning[9] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn day_of_week_distinguishes_days() {
        let monday = features_of(&straight_segment(5.0, 15, 0));
        let thursday = features_of(&straight_segment(5.0, 15, 3 * 86_400));
        assert_ne!((monday[8], monday[9]), (thursday[8], thursday[9]));
        let next_week = features_of(&straight_segment(5.0, 15, 7 * 86_400));
        assert!((monday[8] - next_week[8]).abs() < 1e-9, "weekly period");
        assert!((monday[9] - next_week[9]).abs() < 1e-9);
    }

    #[test]
    fn degenerate_segments_yield_zeros() {
        let empty = Segment::new(1, TransportMode::Walk, 0, vec![]);
        let f = features_of(&empty);
        assert_eq!(f, vec![0.0; EXTENDED_FEATURE_COUNT]);

        let single = Segment::new(
            1,
            TransportMode::Walk,
            0,
            vec![TrajectoryPoint::new(0.0, 0.0, Timestamp::from_seconds(0))],
        );
        let f = features_of(&single);
        assert!(f.iter().all(|v| v.is_finite()));
        assert_eq!(f[1], 0.0, "no path");
        assert_eq!(f[3], 0.0, "straightness of a point");
    }
}
