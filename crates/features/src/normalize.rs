//! Feature normalisation — step 7 of the paper's framework.
//!
//! The paper uses Min–Max normalisation "since this method preserves the
//! relationship between the values to transform features to the same range
//! and improves the quality of the classification process" (§3.2). A
//! z-score scaler is provided for the normalisation ablation.
//!
//! Both scalers follow the fit/transform convention: fit on training rows
//! only, then apply the frozen parameters to training and test rows, so no
//! information leaks from the test set.

use serde::{Deserialize, Serialize};

/// Min–Max scaler: maps each feature column to `[0, 1]` using the
/// column's training minimum and maximum. Constant columns map to `0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    ranges: Vec<f64>,
}

impl MinMaxScaler {
    /// Learns per-column minima and ranges from `rows`.
    ///
    /// # Panics
    /// Panics when `rows` is empty or rows have inconsistent widths.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a scaler on zero rows");
        let d = rows[0].len();
        let mut mins = vec![f64::INFINITY; d];
        let mut maxs = vec![f64::NEG_INFINITY; d];
        for row in rows {
            assert_eq!(row.len(), d, "inconsistent row width");
            for (j, &v) in row.iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        let ranges = mins.iter().zip(&maxs).map(|(&lo, &hi)| hi - lo).collect();
        MinMaxScaler { mins, ranges }
    }

    /// Scales one row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        for (j, v) in row.iter_mut().enumerate() {
            *v = if self.ranges[j] > 0.0 {
                (*v - self.mins[j]) / self.ranges[j]
            } else {
                0.0
            };
        }
    }

    /// Scales every row in place.
    pub fn transform(&self, rows: &mut [Vec<f64>]) {
        for row in rows {
            self.transform_row(row);
        }
    }

    /// Fits on `rows` and scales them in place; the common single-split
    /// path.
    pub fn fit_transform(rows: &mut [Vec<f64>]) -> Self {
        let scaler = MinMaxScaler::fit(rows);
        scaler.transform(rows);
        scaler
    }

    /// Inverts the scaling of one row in place (constant columns recover
    /// the training minimum).
    pub fn inverse_transform_row(&self, row: &mut [f64]) {
        for (j, v) in row.iter_mut().enumerate() {
            *v = *v * self.ranges[j] + self.mins[j];
        }
    }

    /// Number of feature columns the scaler was fitted on.
    pub fn n_features(&self) -> usize {
        self.mins.len()
    }
}

/// z-score scaler: maps each column to zero mean and unit variance on the
/// training rows. Constant columns map to `0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Learns per-column means and population standard deviations.
    ///
    /// # Panics
    /// Panics when `rows` is empty or rows have inconsistent widths.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a scaler on zero rows");
        let d = rows[0].len();
        let n = rows.len() as f64;
        let mut means = vec![0.0; d];
        for row in rows {
            assert_eq!(row.len(), d, "inconsistent row width");
            for (j, &v) in row.iter().enumerate() {
                means[j] += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; d];
        for row in rows {
            for (j, &v) in row.iter().enumerate() {
                let dlt = v - means[j];
                vars[j] += dlt * dlt;
            }
        }
        let stds = vars.iter().map(|&v| (v / n).sqrt()).collect();
        StandardScaler { means, stds }
    }

    /// Scales one row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        for (j, v) in row.iter_mut().enumerate() {
            *v = if self.stds[j] > 0.0 {
                (*v - self.means[j]) / self.stds[j]
            } else {
                0.0
            };
        }
    }

    /// Scales every row in place.
    pub fn transform(&self, rows: &mut [Vec<f64>]) {
        for row in rows {
            self.transform_row(row);
        }
    }

    /// Fits on `rows` and scales them in place.
    pub fn fit_transform(rows: &mut [Vec<f64>]) -> Self {
        let scaler = StandardScaler::fit(rows);
        scaler.transform(rows);
        scaler
    }

    /// Number of feature columns the scaler was fitted on.
    pub fn n_features(&self) -> usize {
        self.means.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 10.0, 5.0],
            vec![5.0, 20.0, 5.0],
            vec![10.0, 40.0, 5.0],
        ]
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let mut rows = sample_rows();
        MinMaxScaler::fit_transform(&mut rows);
        for row in &rows {
            for &v in row {
                assert!((0.0..=1.0).contains(&v), "value {v}");
            }
        }
        assert_eq!(rows[0][0], 0.0);
        assert_eq!(rows[2][0], 1.0);
        assert_eq!(rows[1][0], 0.5);
        // Column 1 is nonlinearly spaced but order-preserving.
        assert!(rows[0][1] < rows[1][1] && rows[1][1] < rows[2][1]);
    }

    #[test]
    fn minmax_constant_column_maps_to_zero() {
        let mut rows = sample_rows();
        MinMaxScaler::fit_transform(&mut rows);
        assert!(rows.iter().all(|r| r[2] == 0.0));
    }

    #[test]
    fn minmax_transform_uses_training_parameters_on_new_rows() {
        let train = sample_rows();
        let scaler = MinMaxScaler::fit(&train);
        let mut test_row = vec![20.0, 25.0, 9.0];
        scaler.transform_row(&mut test_row);
        assert_eq!(test_row[0], 2.0, "out-of-range test values may exceed 1");
        assert_eq!(test_row[1], 0.5);
        assert_eq!(test_row[2], 0.0, "constant training column still collapses");
    }

    #[test]
    fn minmax_inverse_round_trips() {
        let train = sample_rows();
        let scaler = MinMaxScaler::fit(&train);
        let original = vec![7.0, 15.0, 5.0];
        let mut row = original.clone();
        scaler.transform_row(&mut row);
        scaler.inverse_transform_row(&mut row);
        assert!((row[0] - original[0]).abs() < 1e-12);
        assert!((row[1] - original[1]).abs() < 1e-12);
        // Constant column cannot round-trip; it recovers the training min.
        assert_eq!(row[2], 5.0);
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn minmax_fit_panics_on_empty() {
        let _ = MinMaxScaler::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "inconsistent row width")]
    fn minmax_fit_panics_on_jagged_rows() {
        let _ = MinMaxScaler::fit(&[vec![1.0, 2.0], vec![1.0]]);
    }

    #[test]
    fn standard_scaler_zero_mean_unit_variance() {
        let mut rows = sample_rows();
        StandardScaler::fit_transform(&mut rows);
        for j in 0..2 {
            let n = rows.len() as f64;
            let mean: f64 = rows.iter().map(|r| r[j]).sum::<f64>() / n;
            let var: f64 = rows.iter().map(|r| (r[j] - mean).powi(2)).sum::<f64>() / n;
            assert!(mean.abs() < 1e-12, "column {j} mean {mean}");
            assert!((var - 1.0).abs() < 1e-12, "column {j} var {var}");
        }
        assert!(
            rows.iter().all(|r| r[2] == 0.0),
            "constant column collapses"
        );
    }

    #[test]
    fn scalers_report_dimensionality() {
        let rows = sample_rows();
        assert_eq!(MinMaxScaler::fit(&rows).n_features(), 3);
        assert_eq!(StandardScaler::fit(&rows).n_features(), 3);
    }

    #[test]
    fn single_row_fit_is_degenerate_but_finite() {
        let mut rows = vec![vec![3.0, -4.0]];
        MinMaxScaler::fit_transform(&mut rows);
        assert_eq!(rows[0], vec![0.0, 0.0]);
        let mut rows = vec![vec![3.0, -4.0]];
        StandardScaler::fit_transform(&mut rows);
        assert_eq!(rows[0], vec![0.0, 0.0]);
    }
}
