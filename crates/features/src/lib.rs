//! # traj-features
//!
//! Feature engineering for transportation-mode prediction, implementing
//! steps 2, 3, 6 and 7 of the framework in Etemad et al., *"On Feature
//! Selection and Evaluation of Transportation Mode Prediction Strategies"*
//! (EDBT 2019):
//!
//! * [`point_features`] — step 2: per-point kinematics (duration, distance,
//!   speed, acceleration, jerk, bearing, bearing rate, rate of the bearing
//!   rate).
//! * [`trajectory_features`] — step 3: ten statistics (five *global*: min,
//!   max, mean, median, standard deviation; five *local*: percentiles 10,
//!   25, 50, 75, 90) of each of seven point features ⇒ the paper's
//!   **70-dimensional** feature vector per sub-trajectory.
//! * [`extended`] — ten extra spatiotemporal features (straightness, stop
//!   rate, turn density, time-of-day/day-of-week encodings) implementing
//!   the paper's §5 future-work direction; opt-in.
//! * [`noise`] — step 6 (optional): speed-threshold, Hampel and median
//!   filters.
//! * [`normalize`] — step 7: Min–Max normalisation (plus z-score for
//!   ablations).
//! * [`stats`] — the descriptive-statistics kernel shared by the above.
//! * [`zheng`] — the classic 11-feature set of Zheng et al. (UbiComp
//!   2008), the prior-art baseline the feature-set ablation compares
//!   against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extended;
pub mod noise;
pub mod normalize;
pub mod point_features;
pub mod stats;
pub mod trajectory_features;
pub mod zheng;

pub use noise::NoiseConfig;
pub use normalize::{MinMaxScaler, StandardScaler};
pub use point_features::PointFeatures;
pub use trajectory_features::{
    extract_features, extract_features_parallel, feature_names, FeatureTable, FEATURES_PER_SEGMENT,
};
