//! Noise handling — step 6 of the paper's framework (optional).
//!
//! GeoLife GPS logs carry systematic error (poor satellite fixes) and
//! random error (atmospheric/ionospheric effects), plus occasional outlier
//! spikes (§4 of the paper). Step 6 of the framework "deals with noise in
//! the data optionally" — the paper's comparison experiments deliberately
//! run *without* it, and we keep that default, but expose the filters the
//! companion work (Etemad et al., Canadian AI 2018) applies:
//!
//! * [`speed_threshold_filter`] — drop fixes implying a physically
//!   implausible speed for any transportation mode;
//! * [`hampel_filter`] — replace outliers of a scalar series by the local
//!   median when they deviate more than `k` scaled MADs from it;
//! * [`median_smooth`] — sliding-window median smoothing of a series.

use crate::point_features::PointFeatures;
use serde::{Deserialize, Serialize};
use traj_geo::{geodesy, Segment};

/// Configuration of the optional noise-handling step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Drop fixes implying a speed above this many m/s (`None` disables).
    /// 120 m/s comfortably exceeds any ground mode while catching GPS
    /// teleports; airplane segments should disable the threshold.
    pub max_speed_ms: Option<f64>,
    /// Apply a Hampel filter to the speed series with this window
    /// half-width (`None` disables).
    pub hampel_half_window: Option<usize>,
    /// Hampel threshold in scaled-MAD units (ignored unless the Hampel
    /// window is set). 3.0 is the classical default.
    pub hampel_k: f64,
}

impl Default for NoiseConfig {
    /// The paper's comparison-experiment setting: noise handling disabled.
    fn default() -> Self {
        NoiseConfig {
            max_speed_ms: None,
            hampel_half_window: None,
            hampel_k: 3.0,
        }
    }
}

impl NoiseConfig {
    /// Noise handling disabled (the paper's default for §4.3).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// The companion paper's setting: speed threshold plus Hampel filter.
    pub fn enabled() -> Self {
        NoiseConfig {
            max_speed_ms: Some(120.0),
            hampel_half_window: Some(3),
            hampel_k: 3.0,
        }
    }

    /// `true` when any filter is active.
    pub fn is_active(&self) -> bool {
        self.max_speed_ms.is_some() || self.hampel_half_window.is_some()
    }

    /// Applies the configured position-level filters to a segment,
    /// returning the cleaned copy. With everything disabled this is a
    /// clone.
    pub fn clean_segment(&self, segment: &Segment) -> Segment {
        match self.max_speed_ms {
            Some(limit) => speed_threshold_filter(segment, limit),
            None => segment.clone(),
        }
    }

    /// Applies the configured series-level filters to point features in
    /// place (currently the Hampel filter on the speed series).
    pub fn clean_point_features(&self, pf: &mut PointFeatures) {
        if let Some(half) = self.hampel_half_window {
            pf.speed = hampel_filter(&pf.speed, half, self.hampel_k);
        }
    }
}

/// Removes fixes whose implied speed from the previous *kept* fix exceeds
/// `max_speed_ms`. The first fix is always kept.
pub fn speed_threshold_filter(segment: &Segment, max_speed_ms: f64) -> Segment {
    let mut kept = Vec::with_capacity(segment.points.len());
    for &p in &segment.points {
        match kept.last() {
            None => kept.push(p),
            Some(prev) => {
                let dt = p.t.seconds_since(prev.t);
                let d = geodesy::point_distance_m(prev, &p);
                let v = if dt > 0.0 { d / dt } else { f64::INFINITY };
                if v <= max_speed_ms {
                    kept.push(p);
                }
            }
        }
    }
    Segment::new(segment.user, segment.mode, segment.day, kept)
}

/// Hampel filter: replaces `xs[i]` by the median of its
/// `[i-half, i+half]` window whenever it deviates from that median by more
/// than `k` scaled MADs (`1.4826 · MAD`). Returns the filtered copy.
pub fn hampel_filter(xs: &[f64], half_window: usize, k: f64) -> Vec<f64> {
    if xs.is_empty() || half_window == 0 {
        return xs.to_vec();
    }
    let n = xs.len();
    let mut out = xs.to_vec();
    let mut window = Vec::with_capacity(2 * half_window + 1);
    for i in 0..n {
        let lo = i.saturating_sub(half_window);
        let hi = (i + half_window + 1).min(n);
        window.clear();
        window.extend_from_slice(&xs[lo..hi]);
        window.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let med = crate::stats::percentile_of_sorted(&window, 50.0);
        let mut deviations: Vec<f64> = window.iter().map(|&v| (v - med).abs()).collect();
        deviations.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let mad = crate::stats::percentile_of_sorted(&deviations, 50.0);
        let sigma = 1.4826 * mad;
        // With MAD = 0 (an otherwise-constant window) any deviation is an
        // outlier; this is the standard zero-MAD Hampel convention.
        let threshold = if sigma > 0.0 { k * sigma } else { 0.0 };
        if (xs[i] - med).abs() > threshold {
            out[i] = med;
        }
    }
    out
}

/// Sliding-window median smoothing with window half-width `half_window`.
pub fn median_smooth(xs: &[f64], half_window: usize) -> Vec<f64> {
    if xs.is_empty() || half_window == 0 {
        return xs.to_vec();
    }
    let n = xs.len();
    let mut out = Vec::with_capacity(n);
    let mut window = Vec::with_capacity(2 * half_window + 1);
    for i in 0..n {
        let lo = i.saturating_sub(half_window);
        let hi = (i + half_window + 1).min(n);
        window.clear();
        window.extend_from_slice(&xs[lo..hi]);
        window.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        out.push(crate::stats::percentile_of_sorted(&window, 50.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_geo::geodesy::destination;
    use traj_geo::{Timestamp, TrajectoryPoint, TransportMode};

    fn walking_segment_with_teleport() -> Segment {
        let mut points = Vec::new();
        let (mut lat, mut lon) = (39.9, 116.3);
        for i in 0..10 {
            // Inject a GPS teleport at fix 5: jump 5 km away for one fix.
            let p = if i == 5 {
                let (tlat, tlon) = destination(lat, lon, 90.0, 5_000.0);
                TrajectoryPoint::new(tlat, tlon, Timestamp::from_seconds(i * 5))
            } else {
                TrajectoryPoint::new(lat, lon, Timestamp::from_seconds(i * 5))
            };
            points.push(p);
            if i != 5 {
                let (nlat, nlon) = destination(lat, lon, 0.0, 7.0);
                lat = nlat;
                lon = nlon;
            }
        }
        Segment::new(1, TransportMode::Walk, 0, points)
    }

    #[test]
    fn speed_threshold_removes_teleports() {
        let seg = walking_segment_with_teleport();
        let cleaned = speed_threshold_filter(&seg, 50.0);
        assert_eq!(cleaned.len(), seg.len() - 1, "exactly the teleport dropped");
        // Every remaining step is plausible.
        let pf = PointFeatures::compute(&cleaned);
        assert!(pf.speed.iter().all(|&v| v <= 50.0));
    }

    #[test]
    fn speed_threshold_keeps_clean_segments_intact() {
        let mut seg = walking_segment_with_teleport();
        seg.points.remove(5);
        let cleaned = speed_threshold_filter(&seg, 50.0);
        assert_eq!(cleaned.points, seg.points);
    }

    #[test]
    fn speed_threshold_drops_zero_duration_duplicates() {
        let p0 = TrajectoryPoint::new(39.9, 116.3, Timestamp::from_seconds(0));
        let p1 = TrajectoryPoint::new(39.9001, 116.3, Timestamp::from_seconds(0));
        let seg = Segment::new(1, TransportMode::Walk, 0, vec![p0, p1]);
        let cleaned = speed_threshold_filter(&seg, 50.0);
        assert_eq!(cleaned.len(), 1, "zero-dt displaced fix treated as outlier");
    }

    #[test]
    fn hampel_replaces_spike_with_local_median() {
        let mut xs = vec![1.0; 21];
        xs[10] = 100.0;
        let filtered = hampel_filter(&xs, 3, 3.0);
        assert_eq!(filtered[10], 1.0, "spike replaced");
        assert!(
            filtered.iter().take(10).all(|&v| v == 1.0),
            "rest untouched"
        );
    }

    #[test]
    fn hampel_preserves_constant_and_smooth_series() {
        let constant = vec![2.5; 15];
        assert_eq!(hampel_filter(&constant, 3, 3.0), constant);
        let ramp: Vec<f64> = (0..15).map(|i| i as f64).collect();
        let filtered = hampel_filter(&ramp, 3, 3.0);
        assert_eq!(filtered, ramp, "monotone ramp has no outliers");
    }

    #[test]
    fn hampel_degenerate_inputs() {
        assert!(hampel_filter(&[], 3, 3.0).is_empty());
        assert_eq!(hampel_filter(&[5.0], 3, 3.0), vec![5.0]);
        let xs = vec![1.0, 9.0, 1.0];
        assert_eq!(hampel_filter(&xs, 0, 3.0), xs, "zero window is a no-op");
    }

    #[test]
    fn median_smooth_flattens_single_spike() {
        let mut xs = vec![1.0; 11];
        xs[5] = 50.0;
        let smoothed = median_smooth(&xs, 2);
        assert_eq!(smoothed[5], 1.0);
        assert_eq!(median_smooth(&xs, 0), xs);
        assert!(median_smooth(&[], 2).is_empty());
    }

    #[test]
    fn config_default_is_inactive_and_identity() {
        let config = NoiseConfig::default();
        assert!(!config.is_active());
        let seg = walking_segment_with_teleport();
        assert_eq!(config.clean_segment(&seg), seg);
        let mut pf = PointFeatures::compute(&seg);
        let before = pf.clone();
        config.clean_point_features(&mut pf);
        assert_eq!(pf, before);
    }

    #[test]
    fn config_enabled_cleans_both_levels() {
        let config = NoiseConfig::enabled();
        assert!(config.is_active());
        let seg = walking_segment_with_teleport();
        let cleaned = config.clean_segment(&seg);
        assert!(cleaned.len() < seg.len());

        let mut xs = PointFeatures::compute(&seg);
        let spike_max = xs.speed.iter().cloned().fold(0.0f64, f64::max);
        config.clean_point_features(&mut xs);
        let filtered_max = xs.speed.iter().cloned().fold(0.0f64, f64::max);
        assert!(filtered_max < spike_max, "{filtered_max} < {spike_max}");
    }
}
