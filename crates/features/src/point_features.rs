//! Point features — step 2 of the paper's framework.
//!
//! For a segment of `n` fixes we compute eight per-point series, each of
//! length `n`:
//!
//! * **duration** `Δt_i` — seconds between fix `i-1` and fix `i`;
//! * **distance** `d_i` — haversine metres between fix `i-1` and fix `i`;
//! * **speed** `S_i = d_i / Δt_i`;
//! * **acceleration** `A_{i+1} = (S_{i+1} - S_i) / Δt`;
//! * **jerk** `J_{i+1} = (A_{i+1} - A_i) / Δt`;
//! * **bearing** `B_i` — initial great-circle bearing from fix `i-1` to
//!   fix `i`, degrees in `[0, 360)`;
//! * **bearing rate** `Brate_{i+1} = (B_{i+1} - B_i) / Δt`;
//! * **rate of the bearing rate** `Brrate_{i+1} = (Brate_{i+1} - Brate_i) / Δt`.
//!
//! Following §3.1 ("we assume the speed of the first trajectory point is
//! equal to the speed of the second trajectory point"), every series is
//! back-filled at its head so each has exactly one value per fix.
//!
//! **Timestamp policy.** Points whose timestamp does not strictly advance
//! past the previously kept fix (duplicate or backwards timestamps survive
//! some parsers) are dropped via [`traj_geo::sanitize_monotonic`] before
//! any series is computed — a zero `Δt` would otherwise poison speed,
//! acceleration, jerk and the bearing rates. The streaming sessionizer of
//! `traj-stream` applies the same policy, so batch and online features
//! agree point for point. [`safe_rate`] additionally maps a non-positive
//! `Δt` to a `0` rate as a belt-and-braces guard for callers that build
//! series by hand.

use serde::{Deserialize, Serialize};
use traj_geo::geodesy;
use traj_geo::{sanitize_monotonic, Segment, TrajectoryPoint};

/// The per-point feature series of one segment. All vectors share the
/// *kept* point count — the segment length minus any points dropped by
/// the timestamp policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointFeatures {
    /// Seconds since the previous fix (head back-filled).
    pub duration: Vec<f64>,
    /// Haversine metres since the previous fix (head back-filled).
    pub distance: Vec<f64>,
    /// Speed in m/s.
    pub speed: Vec<f64>,
    /// Acceleration in m/s².
    pub acceleration: Vec<f64>,
    /// Jerk in m/s³.
    pub jerk: Vec<f64>,
    /// Bearing in degrees `[0, 360)`.
    pub bearing: Vec<f64>,
    /// Bearing rate in degrees/s.
    pub bearing_rate: Vec<f64>,
    /// Rate of the bearing rate in degrees/s².
    pub bearing_rate_rate: Vec<f64>,
}

impl PointFeatures {
    /// Computes all eight series for a segment (applying the timestamp
    /// policy first; see the module docs).
    pub fn compute(segment: &Segment) -> Self {
        Self::compute_points(&segment.points)
    }

    /// Computes all eight series from a raw point slice. Points rejected
    /// by the timestamp policy are dropped first, so the series length is
    /// [`traj_geo::monotonic_len`] of the input.
    pub fn compute_points(points: &[TrajectoryPoint]) -> Self {
        let (points, _) = sanitize_monotonic(points);
        let points: &[TrajectoryPoint] = &points;
        let n = points.len();
        if n == 0 {
            return PointFeatures::empty();
        }
        if n == 1 {
            return PointFeatures::zeros(1);
        }

        // First-difference series over consecutive fixes (length n-1), then
        // back-fill the head so every series has length n.
        let mut duration = Vec::with_capacity(n);
        let mut distance = Vec::with_capacity(n);
        let mut speed = Vec::with_capacity(n);
        let mut bearing = Vec::with_capacity(n);
        duration.push(0.0); // placeholders, back-filled below
        distance.push(0.0);
        speed.push(0.0);
        bearing.push(0.0);

        for w in points.windows(2) {
            let dt = w[1].t.seconds_since(w[0].t);
            let d = geodesy::point_distance_m(&w[0], &w[1]);
            duration.push(dt);
            distance.push(d);
            speed.push(safe_rate(d, dt));
            bearing.push(geodesy::point_bearing_deg(&w[0], &w[1]));
        }
        duration[0] = duration[1];
        distance[0] = distance[1];
        speed[0] = speed[1];
        bearing[0] = bearing[1];

        let acceleration = derivative(&speed, &duration);
        let jerk = derivative(&acceleration, &duration);
        let bearing_rate = angular_derivative(&bearing, &duration);
        let bearing_rate_rate = derivative(&bearing_rate, &duration);

        PointFeatures {
            duration,
            distance,
            speed,
            acceleration,
            jerk,
            bearing,
            bearing_rate,
            bearing_rate_rate,
        }
    }

    /// Number of fixes covered (the shared length of every series).
    pub fn len(&self) -> usize {
        self.speed.len()
    }

    /// `true` when the series are empty.
    pub fn is_empty(&self) -> bool {
        self.speed.is_empty()
    }

    /// `true` when every value of every series is finite.
    pub fn all_finite(&self) -> bool {
        self.series()
            .iter()
            .all(|s| s.iter().all(|v| v.is_finite()))
    }

    /// The eight series in canonical order (duration, distance, speed,
    /// acceleration, jerk, bearing, bearing rate, rate of bearing rate).
    pub fn series(&self) -> [&[f64]; 8] {
        [
            &self.duration,
            &self.distance,
            &self.speed,
            &self.acceleration,
            &self.jerk,
            &self.bearing,
            &self.bearing_rate,
            &self.bearing_rate_rate,
        ]
    }

    fn empty() -> Self {
        PointFeatures::zeros(0)
    }

    fn zeros(n: usize) -> Self {
        PointFeatures {
            duration: vec![0.0; n],
            distance: vec![0.0; n],
            speed: vec![0.0; n],
            acceleration: vec![0.0; n],
            jerk: vec![0.0; n],
            bearing: vec![0.0; n],
            bearing_rate: vec![0.0; n],
            bearing_rate_rate: vec![0.0; n],
        }
    }
}

/// Finite-difference derivative of `values` with per-step `dt`, head
/// back-filled. `values` and `dt` share their length; entry `i ≥ 1` is
/// `(values[i] - values[i-1]) / dt[i]`.
fn derivative(values: &[f64], dt: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut out = Vec::with_capacity(n);
    if n == 0 {
        return out;
    }
    out.push(0.0);
    for i in 1..n {
        out.push(safe_rate(values[i] - values[i - 1], dt[i]));
    }
    if n > 1 {
        out[0] = out[1];
    }
    out
}

/// Derivative of a *circular* series (degrees in `[0, 360)`): the step
/// `B_{i} - B_{i-1}` is taken as the signed smallest angular difference in
/// `[-180, 180)`, so a heading oscillating across north produces a small
/// turn rate rather than ±360°/s. The paper's `Brate` formula uses a raw
/// difference, which is equivalent away from the 0°/360° seam.
fn angular_derivative(bearing: &[f64], dt: &[f64]) -> Vec<f64> {
    let n = bearing.len();
    let mut out = Vec::with_capacity(n);
    if n == 0 {
        return out;
    }
    out.push(0.0);
    for i in 1..n {
        out.push(safe_rate(angular_step(bearing[i - 1], bearing[i]), dt[i]));
    }
    if n > 1 {
        out[0] = out[1];
    }
    out
}

/// Signed smallest angular difference `to - from` mapped into
/// `[-180, 180)` degrees — the step the bearing-rate derivative uses.
/// Public so the streaming incremental chain applies the *same
/// expression* and stays bit-identical with the batch series.
pub fn angular_step(from: f64, to: f64) -> f64 {
    (to - from + 540.0).rem_euclid(360.0) - 180.0
}

/// `num / dt`, defined as `0` when `dt ≤ 0` so hand-built series with
/// duplicate timestamps never produce infinities. Public for the same
/// bit-parity reason as [`angular_step`].
pub fn safe_rate(num: f64, dt: f64) -> f64 {
    if dt > 0.0 {
        num / dt
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_geo::geodesy::destination;
    use traj_geo::{Timestamp, TrajectoryPoint, TransportMode};

    /// Builds a segment moving due north at a constant `speed_ms`, one fix
    /// per `dt_s` seconds.
    fn constant_speed_segment(speed_ms: f64, dt_s: f64, n: usize) -> Segment {
        let mut points = Vec::with_capacity(n);
        let (mut lat, mut lon) = (39.9, 116.3);
        for i in 0..n {
            points.push(TrajectoryPoint::new(
                lat,
                lon,
                Timestamp::from_seconds_f64(i as f64 * dt_s),
            ));
            let (nlat, nlon) = destination(lat, lon, 0.0, speed_ms * dt_s);
            lat = nlat;
            lon = nlon;
        }
        Segment::new(1, TransportMode::Walk, 0, points)
    }

    #[test]
    fn constant_speed_yields_flat_series() {
        let seg = constant_speed_segment(5.0, 2.0, 20);
        let f = PointFeatures::compute(&seg);
        assert_eq!(f.len(), 20);
        assert!(f.all_finite());
        for &v in &f.speed {
            assert!((v - 5.0).abs() < 0.01, "speed {v}");
        }
        for &dt in &f.duration {
            assert!((dt - 2.0).abs() < 1e-9);
        }
        for &d in &f.distance {
            assert!((d - 10.0).abs() < 0.02, "distance {d}");
        }
        // Constant speed due north: acceleration, jerk ≈ 0; bearing ≈ 0.
        for &a in &f.acceleration {
            assert!(a.abs() < 0.01, "acceleration {a}");
        }
        for &j in &f.jerk {
            assert!(j.abs() < 0.01, "jerk {j}");
        }
        for &b in &f.bearing {
            assert!(!(0.5..=359.5).contains(&b), "bearing {b}");
        }
    }

    #[test]
    fn head_is_backfilled() {
        let seg = constant_speed_segment(3.0, 1.0, 5);
        let f = PointFeatures::compute(&seg);
        assert_eq!(f.speed[0], f.speed[1]);
        assert_eq!(f.duration[0], f.duration[1]);
        assert_eq!(f.distance[0], f.distance[1]);
        assert_eq!(f.bearing[0], f.bearing[1]);
        assert_eq!(f.acceleration[0], f.acceleration[1]);
        assert_eq!(f.jerk[0], f.jerk[1]);
    }

    #[test]
    fn acceleration_detects_speedup() {
        // Speeds 0→2→4 m/s over 1 s steps: acceleration ≈ 2 m/s².
        let mut points = Vec::new();
        let (mut lat, lon) = (39.9, 116.3);
        let speeds = [2.0, 4.0, 6.0, 8.0];
        points.push(TrajectoryPoint::new(lat, lon, Timestamp::from_seconds(0)));
        for (i, &v) in speeds.iter().enumerate() {
            let (nlat, _) = destination(lat, lon, 0.0, v);
            lat = nlat;
            points.push(TrajectoryPoint::new(
                lat,
                lon,
                Timestamp::from_seconds(i as i64 + 1),
            ));
        }
        let seg = Segment::new(1, TransportMode::Car, 0, points);
        let f = PointFeatures::compute(&seg);
        // speed[i] for i>=1 is ~2,4,6,8; acceleration from i>=2 is ~2.
        for &a in &f.acceleration[2..] {
            assert!((a - 2.0).abs() < 0.05, "acceleration {a}");
        }
        // Jerk of a linear speed ramp ≈ 0 (after the backfilled head).
        for &j in &f.jerk[3..] {
            assert!(j.abs() < 0.05, "jerk {j}");
        }
    }

    #[test]
    fn duplicate_timestamps_are_dropped_by_policy() {
        // Regression test for the shared dt = 0 policy: the middle point
        // repeats the first timestamp, so it must be dropped — not folded
        // into the series as a zero-speed step.
        let points = vec![
            TrajectoryPoint::new(39.9, 116.3, Timestamp::from_millis(0)),
            TrajectoryPoint::new(39.901, 116.3, Timestamp::from_millis(0)),
            TrajectoryPoint::new(39.902, 116.3, Timestamp::from_millis(1000)),
        ];
        let seg = Segment::new(1, TransportMode::Walk, 0, points.clone());
        let f = PointFeatures::compute(&seg);
        assert!(f.all_finite());
        assert_eq!(f.len(), 2, "duplicate-timestamp point is dropped");
        // The surviving step is first → third point over 1 s.
        let expected = traj_geo::geodesy::point_distance_m(&points[0], &points[2]);
        assert!((f.speed[1] - expected).abs() < 1e-9);
        assert!(f.speed[1] > 0.0);
        // Identical to computing over the pre-sanitized slice.
        let clean = PointFeatures::compute_points(&[points[0], points[2]]);
        assert_eq!(f, clean);
    }

    #[test]
    fn backwards_timestamps_are_dropped_by_policy() {
        let points = vec![
            TrajectoryPoint::new(39.9, 116.3, Timestamp::from_seconds(0)),
            TrajectoryPoint::new(39.901, 116.3, Timestamp::from_seconds(10)),
            TrajectoryPoint::new(39.902, 116.3, Timestamp::from_seconds(5)), // clock went back
            TrajectoryPoint::new(39.903, 116.3, Timestamp::from_seconds(20)),
        ];
        let f = PointFeatures::compute_points(&points);
        assert_eq!(f.len(), 3);
        assert!(f.all_finite());
        assert!(f.duration.iter().skip(1).all(|&dt| dt > 0.0));
    }

    #[test]
    fn degenerate_segments() {
        let empty = Segment::new(1, TransportMode::Walk, 0, vec![]);
        let f = PointFeatures::compute(&empty);
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);

        let single = Segment::new(
            1,
            TransportMode::Walk,
            0,
            vec![TrajectoryPoint::new(0.0, 0.0, Timestamp::from_seconds(0))],
        );
        let f = PointFeatures::compute(&single);
        assert_eq!(f.len(), 1);
        assert!(f.all_finite());
        assert_eq!(f.speed[0], 0.0);
    }

    #[test]
    fn series_exposes_all_eight() {
        let seg = constant_speed_segment(1.0, 1.0, 12);
        let f = PointFeatures::compute(&seg);
        let series = f.series();
        assert_eq!(series.len(), 8);
        assert!(series.iter().all(|s| s.len() == 12));
    }

    #[test]
    fn turning_changes_bearing_rate() {
        // A right-angle turn: north for 5 fixes, then east for 5 fixes.
        let mut points = Vec::new();
        let (mut lat, mut lon) = (39.9, 116.3);
        for i in 0..10 {
            points.push(TrajectoryPoint::new(
                lat,
                lon,
                Timestamp::from_seconds(i as i64),
            ));
            let bearing = if i < 5 { 0.0 } else { 90.0 };
            let (nlat, nlon) = destination(lat, lon, bearing, 5.0);
            lat = nlat;
            lon = nlon;
        }
        let seg = Segment::new(1, TransportMode::Bike, 0, points);
        let f = PointFeatures::compute(&seg);
        let max_rate = f.bearing_rate.iter().cloned().fold(0.0f64, f64::max);
        assert!(max_rate > 45.0, "turn visible in bearing rate: {max_rate}");
        // Straight sections have ~zero bearing rate.
        assert!(f.bearing_rate[2].abs() < 1.0);
    }
}
