//! Descriptive statistics used to summarise point-feature series.
//!
//! These are the ten trajectory-feature statistics of the paper's step 3:
//! minimum, maximum, mean, median and standard deviation (*global*
//! features) plus the 10th/25th/50th/75th/90th percentiles (*local*
//! features). Percentiles use linear interpolation between closest ranks —
//! the same convention as NumPy's default `percentile`, which the authors'
//! Python reference implementation relied on.

/// Minimum of a slice; `0.0` for an empty slice (a degenerate segment
/// contributes neutral features rather than NaN, so downstream classifiers
/// never see non-finite inputs).
pub fn min(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .fold(f64::INFINITY, f64::min)
        .min_finite_or_zero()
}

/// Maximum of a slice; `0.0` for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
        .min_finite_or_zero()
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation (ddof = 0, NumPy's default);
/// `0.0` for slices with fewer than two elements.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

/// Median (the 50th percentile with linear interpolation); `0.0` for an
/// empty slice.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// The `p`-th percentile (`p ∈ [0, 100]`) with linear interpolation
/// between closest ranks; `0.0` for an empty slice.
///
/// For a sorted sample `x_0 ≤ … ≤ x_{n-1}` the percentile is
/// `x_floor(h) + (h - floor(h)) · (x_ceil(h) - x_floor(h))` with
/// `h = p/100 · (n - 1)`.
///
/// ```
/// use traj_features::stats::percentile;
/// let speeds = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&speeds, 90.0), 3.7); // numpy convention
/// ```
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    percentile_of_sorted(&sorted, p)
}

/// The `p`-th percentile of an already-sorted slice. Callers that need
/// several percentiles of the same series should sort once and use this.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n == 1 {
        return sorted[0];
    }
    let p = p.clamp(0.0, 100.0);
    let h = p / 100.0 * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Several percentiles of the same series, sorting only once.
pub fn percentiles(xs: &[f64], ps: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return vec![0.0; ps.len()];
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    ps.iter()
        .map(|&p| percentile_of_sorted(&sorted, p))
        .collect()
}

/// Number of statistics in a [`summary10`] row (and in the paper's
/// per-feature summary): min, max, mean, median, std, p10, p25, p50,
/// p75, p90 — in that order.
pub const SUMMARY_WIDTH: usize = 10;

/// The canonical ten-statistic summary of one series, in the order the
/// paper's feature vector uses (see [`SUMMARY_WIDTH`]). This is the single
/// implementation both the batch path
/// (`trajectory_features::summarize_series`) and the streaming exact
/// fallback (`traj-stream`) call, so their outputs are bit-identical by
/// construction.
pub fn summary10(xs: &[f64]) -> [f64; SUMMARY_WIDTH] {
    if xs.is_empty() {
        return [0.0; SUMMARY_WIDTH];
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    [
        sorted[0],
        sorted[sorted.len() - 1],
        mean(xs),
        percentile_of_sorted(&sorted, 50.0),
        std_dev(xs),
        percentile_of_sorted(&sorted, 10.0),
        percentile_of_sorted(&sorted, 25.0),
        percentile_of_sorted(&sorted, 50.0),
        percentile_of_sorted(&sorted, 75.0),
        percentile_of_sorted(&sorted, 90.0),
    ]
}

/// An incremental view of one value series that can produce the paper's
/// ten-statistic summary.
///
/// Two families implement it: [`ExactSummary`] (buffers every value,
/// statistics identical to the batch pipeline) and the sketch-backed
/// summaries of `traj-stream` (bounded memory, documented error on the
/// percentile statistics). Having one trait keeps the batch statistics
/// and the streaming sketches interchangeable in feature-building code.
pub trait SeriesSummary {
    /// Observes one value. Non-finite values are the caller's bug; exact
    /// implementations will panic when sorting, sketches may misbehave.
    fn push(&mut self, x: f64);

    /// Number of values observed so far.
    fn count(&self) -> usize;

    /// The ten statistics in [`summary10`] order for the values observed
    /// so far. All-zero before the first push.
    fn stats10(&self) -> [f64; SUMMARY_WIDTH];
}

/// The trivial [`SeriesSummary`]: buffers all values and defers to
/// [`summary10`], so its output is bit-identical to the batch pipeline.
#[derive(Debug, Clone, Default)]
pub struct ExactSummary {
    values: Vec<f64>,
}

impl ExactSummary {
    /// An empty summary.
    pub fn new() -> ExactSummary {
        ExactSummary::default()
    }

    /// The buffered values, in push order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl SeriesSummary for ExactSummary {
    fn push(&mut self, x: f64) {
        self.values.push(x);
    }

    fn count(&self) -> usize {
        self.values.len()
    }

    fn stats10(&self) -> [f64; SUMMARY_WIDTH] {
        summary10(&self.values)
    }
}

trait FiniteOrZero {
    fn min_finite_or_zero(self) -> f64;
}

impl FiniteOrZero for f64 {
    fn min_finite_or_zero(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const XS: [f64; 5] = [3.0, 1.0, 4.0, 1.0, 5.0];

    #[test]
    fn min_max_mean() {
        assert_eq!(min(&XS), 1.0);
        assert_eq!(max(&XS), 5.0);
        assert!((mean(&XS) - 2.8).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_yield_zero() {
        assert_eq!(min(&[]), 0.0);
        assert_eq!(max(&[]), 0.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(percentile(&[], 90.0), 0.0);
        assert_eq!(percentiles(&[], &[10.0, 90.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn singleton_statistics() {
        let xs = [42.0];
        assert_eq!(min(&xs), 42.0);
        assert_eq!(max(&xs), 42.0);
        assert_eq!(mean(&xs), 42.0);
        assert_eq!(std_dev(&xs), 0.0);
        assert_eq!(median(&xs), 42.0);
        for p in [0.0, 10.0, 50.0, 90.0, 100.0] {
            assert_eq!(percentile(&xs, p), 42.0);
        }
    }

    #[test]
    fn population_std_matches_numpy() {
        // numpy.std([3,1,4,1,5]) == 1.6.
        assert!((std_dev(&XS) - 1.6).abs() < 1e-12);
        assert_eq!(std_dev(&[7.0, 7.0, 7.0]), 0.0);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(median(&XS), 3.0);
    }

    #[test]
    fn percentile_linear_interpolation_matches_numpy() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        // numpy.percentile([1,2,3,4], 10) == 1.3
        assert!((percentile(&xs, 10.0) - 1.3).abs() < 1e-12);
        // numpy.percentile([1,2,3,4], 25) == 1.75
        assert!((percentile(&xs, 25.0) - 1.75).abs() < 1e-12);
        // numpy.percentile([1,2,3,4], 90) == 3.7
        assert!((percentile(&xs, 90.0) - 3.7).abs() < 1e-12);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
    }

    #[test]
    fn percentile_clamps_out_of_range_p() {
        let xs = [1.0, 2.0];
        assert_eq!(percentile(&xs, -5.0), 1.0);
        assert_eq!(percentile(&xs, 150.0), 2.0);
    }

    #[test]
    fn percentile_is_order_invariant() {
        let a = [5.0, 1.0, 4.0, 2.0, 3.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        for p in [10.0, 25.0, 50.0, 75.0, 90.0] {
            assert_eq!(percentile(&a, p), percentile(&b, p));
        }
    }

    #[test]
    fn percentiles_batch_matches_individual() {
        let ps = [10.0, 25.0, 50.0, 75.0, 90.0];
        let batch = percentiles(&XS, &ps);
        for (i, &p) in ps.iter().enumerate() {
            assert_eq!(batch[i], percentile(&XS, p));
        }
    }

    #[test]
    fn percentile_of_sorted_requires_no_resort() {
        let sorted = [1.0, 1.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_of_sorted(&sorted, 50.0), 3.0);
        assert_eq!(percentile_of_sorted(&[], 50.0), 0.0);
    }

    #[test]
    fn exact_summary_matches_summary10() {
        let mut s = ExactSummary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.stats10(), [0.0; SUMMARY_WIDTH]);
        for &x in &XS {
            s.push(x);
        }
        assert_eq!(s.count(), XS.len());
        assert_eq!(s.stats10(), summary10(&XS));
        // Spot-check the order contract.
        let stats = s.stats10();
        assert_eq!(stats[0], min(&XS));
        assert_eq!(stats[1], max(&XS));
        assert_eq!(stats[2], mean(&XS));
        assert_eq!(stats[3], median(&XS));
        assert_eq!(stats[4], std_dev(&XS));
        assert_eq!(stats[7], percentile(&XS, 50.0));
    }
}
