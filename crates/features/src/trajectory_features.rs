//! Trajectory features — step 3 of the paper's framework.
//!
//! Ten statistics of each of seven point features give the paper's
//! 70-dimensional feature vector per sub-trajectory:
//!
//! * *global* statistics: minimum, maximum, mean, median, standard
//!   deviation;
//! * *local* statistics: percentiles 10, 25, 50, 75 and 90.
//!
//! The seven point features are distance, speed, acceleration, jerk,
//! bearing, bearing rate and rate of the bearing rate. (The paper computes
//! eight point-feature series but summarises seven — duration is an
//! artefact of the device's sampling interval rather than of movement, so
//! it is used only to derive the rates. This matches the authors' TrajLib
//! reference implementation.)
//!
//! Feature naming follows the paper's `F^p_stat` notation flattened to
//! `"{point_feature}_{stat}"`, e.g. `speed_p90` is the paper's
//! `F^speed_p90` — the feature both selection methods rank first (§5).

use crate::point_features::PointFeatures;
use crate::stats;
use serde::{Deserialize, Serialize};
use traj_geo::{LabelScheme, Segment, TransportMode, UserId};

/// Number of point features summarised per segment.
pub const POINT_FEATURE_COUNT: usize = 7;
/// Number of statistics per point feature (5 global + 5 local).
pub const STATS_PER_FEATURE: usize = 10;
/// Dimensionality of a segment's feature vector (the paper's 70).
pub const FEATURES_PER_SEGMENT: usize = POINT_FEATURE_COUNT * STATS_PER_FEATURE;

/// Names of the summarised point features, in feature-vector order.
pub const POINT_FEATURE_NAMES: [&str; POINT_FEATURE_COUNT] = [
    "distance",
    "speed",
    "acceleration",
    "jerk",
    "bearing",
    "bearing_rate",
    "bearing_rate_rate",
];

/// Names of the statistics, in feature-vector order. The first five are
/// the paper's global features, the last five its local (percentile)
/// features.
pub const STAT_NAMES: [&str; STATS_PER_FEATURE] = [
    "min", "max", "mean", "median", "std", "p10", "p25", "p50", "p75", "p90",
];

/// The 70 canonical feature names, `"{point_feature}_{stat}"`, in
/// feature-vector order.
pub fn feature_names() -> Vec<String> {
    let mut names = Vec::with_capacity(FEATURES_PER_SEGMENT);
    for pf in POINT_FEATURE_NAMES {
        for st in STAT_NAMES {
            names.push(format!("{pf}_{st}"));
        }
    }
    names
}

/// Computes the ten statistics of one series, in [`STAT_NAMES`] order.
/// Delegates to [`stats::summary10`], the single implementation shared
/// with the streaming exact path.
pub fn summarize_series(xs: &[f64]) -> [f64; STATS_PER_FEATURE] {
    stats::summary10(xs)
}

/// Computes a segment's 70-dimensional feature vector.
pub fn segment_features(segment: &Segment) -> Vec<f64> {
    let pf = PointFeatures::compute(segment);
    features_from_point_features(&pf)
}

/// Computes the 70-dimensional vector from precomputed point features
/// (lets noise filters rewrite the series first).
pub fn features_from_point_features(pf: &PointFeatures) -> Vec<f64> {
    let mut out = Vec::with_capacity(FEATURES_PER_SEGMENT);
    let series: [&[f64]; POINT_FEATURE_COUNT] = [
        &pf.distance,
        &pf.speed,
        &pf.acceleration,
        &pf.jerk,
        &pf.bearing,
        &pf.bearing_rate,
        &pf.bearing_rate_rate,
    ];
    for s in series {
        out.extend_from_slice(&summarize_series(s));
    }
    out
}

/// A table of extracted features: one row per segment that survives the
/// label scheme, plus the metadata needed by every downstream experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureTable {
    /// Feature names, length [`FEATURES_PER_SEGMENT`].
    pub names: Vec<String>,
    /// Feature rows; `rows[i][j]` is feature `names[j]` of segment `i`.
    pub rows: Vec<Vec<f64>>,
    /// Class index of each row under the extraction's label scheme.
    pub labels: Vec<usize>,
    /// Owner (user id) of each row — the grouping key of user-oriented
    /// cross-validation.
    pub groups: Vec<UserId>,
    /// Raw transportation mode of each row.
    pub modes: Vec<TransportMode>,
    /// Label scheme the class indices refer to.
    pub scheme: LabelScheme,
}

impl FeatureTable {
    /// Number of rows (segments).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.names.len()
    }

    /// Number of prediction classes under the table's scheme.
    pub fn n_classes(&self) -> usize {
        self.scheme.n_classes()
    }

    /// Index of a feature by name.
    pub fn feature_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// A copy of the table restricted to the given feature columns (in the
    /// given order). Out-of-range indices panic.
    pub fn select_columns(&self, columns: &[usize]) -> FeatureTable {
        FeatureTable {
            names: columns.iter().map(|&c| self.names[c].clone()).collect(),
            rows: self
                .rows
                .iter()
                .map(|r| columns.iter().map(|&c| r[c]).collect())
                .collect(),
            labels: self.labels.clone(),
            groups: self.groups.clone(),
            modes: self.modes.clone(),
            scheme: self.scheme,
        }
    }
}

/// Extracts the feature table of a segment collection under a label scheme
/// (the paper's steps 2 + 3). Segments whose mode is excluded by the
/// scheme are dropped — e.g. airplane segments under the Dabiri scheme.
pub fn extract_features(segments: &[Segment], scheme: LabelScheme) -> FeatureTable {
    build_table(segments, scheme, |kept| {
        kept.iter().map(|seg| segment_features(seg)).collect()
    })
}

/// [`extract_features`] with the per-segment work spread over scoped
/// worker threads. Per-segment extraction is independent, so the output
/// is identical to the sequential version; worth it from a few thousand
/// segments on multi-core hosts.
pub fn extract_features_parallel(segments: &[Segment], scheme: LabelScheme) -> FeatureTable {
    build_table(segments, scheme, |kept| {
        let n_threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(kept.len().max(1));
        if n_threads <= 1 {
            return kept.iter().map(|seg| segment_features(seg)).collect();
        }
        let chunk = kept.len().div_ceil(n_threads);
        let mut rows: Vec<Vec<f64>> = vec![Vec::new(); kept.len()];
        scoped_extract(kept, chunk, &mut rows);
        rows
    })
}

fn scoped_extract(kept: &[&Segment], chunk: usize, rows: &mut [Vec<f64>]) {
    // Split the output buffer into per-worker windows: no locking needed.
    std::thread::scope(|scope| {
        let mut rest = rows;
        let mut offset = 0usize;
        while offset < kept.len() {
            let take = chunk.min(kept.len() - offset);
            let (window, tail) = rest.split_at_mut(take);
            rest = tail;
            let slice = &kept[offset..offset + take];
            scope.spawn(move || {
                for (out, seg) in window.iter_mut().zip(slice) {
                    *out = segment_features(seg);
                }
            });
            offset += take;
        }
    });
}

fn build_table(
    segments: &[Segment],
    scheme: LabelScheme,
    extract: impl FnOnce(&[&Segment]) -> Vec<Vec<f64>>,
) -> FeatureTable {
    let kept: Vec<&Segment> = segments
        .iter()
        .filter(|seg| scheme.class_of(seg.mode).is_some())
        .collect();
    let rows = extract(&kept);
    let labels = kept
        .iter()
        .map(|seg| scheme.class_of(seg.mode).expect("filtered above"))
        .collect();
    let groups = kept.iter().map(|seg| seg.user).collect();
    let modes = kept.iter().map(|seg| seg.mode).collect();
    FeatureTable {
        names: feature_names(),
        rows,
        labels,
        groups,
        modes,
        scheme,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_geo::geodesy::destination;
    use traj_geo::{Timestamp, TrajectoryPoint};

    fn segment(user: UserId, mode: TransportMode, speed_ms: f64, n: usize) -> Segment {
        let mut points = Vec::with_capacity(n);
        let (mut lat, mut lon) = (39.9, 116.3);
        for i in 0..n {
            points.push(TrajectoryPoint::new(
                lat,
                lon,
                Timestamp::from_seconds(i as i64 * 2),
            ));
            let (nlat, nlon) = destination(lat, lon, 45.0, speed_ms * 2.0);
            lat = nlat;
            lon = nlon;
        }
        Segment::new(user, mode, 0, points)
    }

    #[test]
    fn names_are_70_and_unique() {
        let names = feature_names();
        assert_eq!(names.len(), FEATURES_PER_SEGMENT);
        assert_eq!(names.len(), 70);
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 70, "feature names are unique");
        assert!(names.contains(&"speed_p90".to_string()));
        assert!(names.contains(&"bearing_rate_rate_std".to_string()));
    }

    #[test]
    fn summarize_series_orders_stats_correctly() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = summarize_series(&xs);
        assert_eq!(s[0], 1.0); // min
        assert_eq!(s[1], 5.0); // max
        assert_eq!(s[2], 3.0); // mean
        assert_eq!(s[3], 3.0); // median
        assert!((s[4] - std::f64::consts::SQRT_2).abs() < 1e-12); // population std
        assert!((s[5] - 1.4).abs() < 1e-12); // p10
        assert_eq!(s[6], 2.0); // p25
        assert_eq!(s[7], 3.0); // p50 == median
        assert_eq!(s[8], 4.0); // p75
        assert!((s[9] - 4.6).abs() < 1e-12); // p90
    }

    #[test]
    fn summarize_empty_series_is_zeros() {
        assert_eq!(summarize_series(&[]), [0.0; STATS_PER_FEATURE]);
    }

    #[test]
    fn segment_features_dimension_and_finiteness() {
        let seg = segment(1, TransportMode::Bike, 4.0, 30);
        let f = segment_features(&seg);
        assert_eq!(f.len(), FEATURES_PER_SEGMENT);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn speed_statistics_reflect_motion() {
        let names = feature_names();
        let fast = segment_features(&segment(1, TransportMode::Car, 15.0, 30));
        let slow = segment_features(&segment(1, TransportMode::Walk, 1.4, 30));
        let i_mean = names.iter().position(|n| n == "speed_mean").unwrap();
        let i_p90 = names.iter().position(|n| n == "speed_p90").unwrap();
        assert!(
            fast[i_mean] > 10.0 && fast[i_mean] < 20.0,
            "{}",
            fast[i_mean]
        );
        assert!(slow[i_mean] > 1.0 && slow[i_mean] < 2.0, "{}", slow[i_mean]);
        assert!(fast[i_p90] > slow[i_p90]);
    }

    #[test]
    fn median_column_equals_p50_column() {
        let seg = segment(1, TransportMode::Bus, 7.0, 25);
        let f = segment_features(&seg);
        let names = feature_names();
        for pf in POINT_FEATURE_NAMES {
            let i_med = names
                .iter()
                .position(|n| *n == format!("{pf}_median"))
                .unwrap();
            let i_p50 = names
                .iter()
                .position(|n| *n == format!("{pf}_p50"))
                .unwrap();
            assert_eq!(
                f[i_med], f[i_p50],
                "{pf}: median equals p50 by construction"
            );
        }
    }

    #[test]
    fn extract_filters_by_scheme() {
        let segs = vec![
            segment(1, TransportMode::Walk, 1.4, 20),
            segment(2, TransportMode::Airplane, 200.0, 20),
            segment(3, TransportMode::Taxi, 9.0, 20),
        ];
        let table = extract_features(&segs, LabelScheme::Dabiri);
        assert_eq!(table.len(), 2, "airplane excluded under Dabiri");
        assert_eq!(table.labels[0], 0); // walk
        assert_eq!(table.labels[1], 3); // taxi → driving
        assert_eq!(table.groups, vec![1, 3]);
        assert_eq!(table.modes, vec![TransportMode::Walk, TransportMode::Taxi]);
        assert_eq!(table.n_classes(), 5);
        assert_eq!(table.n_features(), 70);
    }

    #[test]
    fn select_columns_projects_names_and_rows() {
        let segs = vec![segment(1, TransportMode::Walk, 1.4, 20)];
        let table = extract_features(&segs, LabelScheme::Raw);
        let i_p90 = table.feature_index("speed_p90").unwrap();
        let i_mean = table.feature_index("speed_mean").unwrap();
        let sub = table.select_columns(&[i_p90, i_mean]);
        assert_eq!(sub.names, vec!["speed_p90", "speed_mean"]);
        assert_eq!(sub.rows[0].len(), 2);
        assert_eq!(sub.rows[0][0], table.rows[0][i_p90]);
        assert_eq!(sub.rows[0][1], table.rows[0][i_mean]);
        assert_eq!(sub.labels, table.labels);
        assert!(!sub.is_empty());
    }

    #[test]
    fn empty_input_gives_empty_table() {
        let table = extract_features(&[], LabelScheme::Raw);
        assert!(table.is_empty());
        assert_eq!(table.len(), 0);
        assert_eq!(table.n_features(), 70);
        let parallel = extract_features_parallel(&[], LabelScheme::Raw);
        assert!(parallel.is_empty());
    }

    #[test]
    fn parallel_extraction_matches_sequential() {
        let segs: Vec<Segment> = (0..17)
            .map(|i| {
                segment(
                    i as UserId,
                    if i % 2 == 0 {
                        TransportMode::Walk
                    } else {
                        TransportMode::Bus
                    },
                    1.0 + i as f64,
                    15 + i as usize,
                )
            })
            .collect();
        let sequential = extract_features(&segs, LabelScheme::Dabiri);
        let parallel = extract_features_parallel(&segs, LabelScheme::Dabiri);
        assert_eq!(sequential, parallel);
    }
}
