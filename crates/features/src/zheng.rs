//! The classic Zheng et al. feature set.
//!
//! Zheng, Li, Chen, Xie & Ma, *"Understanding mobility based on GPS
//! data"* (UbiComp 2008) — the paper's citation [30] and the source of
//! the GeoLife dataset — classified transportation modes with a compact
//! hand-picked feature set: segment length, basic velocity statistics,
//! top-three velocities and accelerations, and three robust rate
//! features — **heading change rate (HCR)**, **stop rate (SR)** and
//! **velocity change rate (VCR)**.
//!
//! Implemented here as a third feature set so the reproduction can
//! compare the paper's 70 statistics against the classic 11 (the
//! `feature-set` ablation): a faithful "prior state of the art" baseline
//! built from the same point features.

use crate::point_features::PointFeatures;
use traj_geo::Segment;

/// Number of Zheng features.
pub const ZHENG_FEATURE_COUNT: usize = 11;

/// Heading-change threshold (degrees) above which a fix counts toward
/// the heading change rate; Zheng et al. tune this on a validation set,
/// 19° is in their reported range.
pub const HCR_THRESHOLD_DEG: f64 = 19.0;

/// Speed (m/s) below which a fix counts toward the stop rate.
pub const SR_THRESHOLD_MS: f64 = 0.6;

/// Relative velocity change above which a fix counts toward the velocity
/// change rate.
pub const VCR_THRESHOLD: f64 = 0.7;

/// Names of the Zheng features, in vector order.
pub fn zheng_feature_names() -> Vec<String> {
    [
        "zheng_length_m",
        "zheng_mean_velocity",
        "zheng_velocity_std",
        "zheng_top1_velocity",
        "zheng_top2_velocity",
        "zheng_top3_velocity",
        "zheng_top1_acceleration",
        "zheng_top2_acceleration",
        "zheng_top3_acceleration",
        "zheng_heading_change_rate",
        "zheng_stop_rate",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Computes the 11 Zheng features of a segment (zeros for degenerate
/// segments).
pub fn zheng_features(segment: &Segment, pf: &PointFeatures) -> Vec<f64> {
    let n = pf.len();
    if n == 0 {
        return vec![0.0; ZHENG_FEATURE_COUNT];
    }
    let length: f64 = pf.distance.iter().skip(1).sum();
    let duration = segment.duration_s();
    let mean_velocity = if duration > 0.0 {
        length / duration
    } else {
        0.0
    };
    let velocity_std = crate::stats::std_dev(&pf.speed);

    let top3 = |xs: &[f64]| -> [f64; 3] {
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite values"));
        [
            sorted.first().copied().unwrap_or(0.0),
            sorted.get(1).copied().unwrap_or(0.0),
            sorted.get(2).copied().unwrap_or(0.0),
        ]
    };
    let top_v = top3(&pf.speed);
    let abs_acc: Vec<f64> = pf.acceleration.iter().map(|a| a.abs()).collect();
    let top_a = top3(&abs_acc);

    // Rates are normalised by the segment's path length ("per metre"
    // rates in Zheng et al.; distance normalisation makes them robust to
    // the sampling interval). Zero-length segments get zero rates.
    let per_metre = |count: usize| {
        if length > 0.0 {
            count as f64 / length
        } else {
            0.0
        }
    };
    let hcr_count = pf
        .bearing_rate
        .iter()
        .skip(1)
        .zip(pf.duration.iter().skip(1))
        .filter(|(&rate, &dt)| (rate * dt).abs() > HCR_THRESHOLD_DEG)
        .count();
    let sr_count = pf.speed.iter().filter(|&&v| v < SR_THRESHOLD_MS).count();

    vec![
        length,
        mean_velocity,
        velocity_std,
        top_v[0],
        top_v[1],
        top_v[2],
        top_a[0],
        top_a[1],
        top_a[2],
        per_metre(hcr_count),
        per_metre(sr_count),
    ]
}

/// Velocity change rate — exposed separately because Zheng et al. report
/// it as a tuned add-on: the per-metre count of fixes whose relative
/// speed change `|v_{i+1} − v_i| / max(v_i, ε)` exceeds
/// [`VCR_THRESHOLD`].
pub fn velocity_change_rate(pf: &PointFeatures) -> f64 {
    let length: f64 = pf.distance.iter().skip(1).sum();
    if length <= 0.0 {
        return 0.0;
    }
    let count = pf
        .speed
        .windows(2)
        .filter(|w| {
            let base = w[0].max(0.1);
            ((w[1] - w[0]).abs() / base) > VCR_THRESHOLD
        })
        .count();
    count as f64 / length
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_geo::geodesy::destination;
    use traj_geo::{Timestamp, TrajectoryPoint, TransportMode};

    fn segment_with_speeds(speeds: &[f64], headings: &[f64]) -> Segment {
        assert_eq!(speeds.len(), headings.len());
        let mut points = Vec::with_capacity(speeds.len() + 1);
        let (mut lat, mut lon) = (39.9, 116.3);
        points.push(TrajectoryPoint::new(lat, lon, Timestamp::from_seconds(0)));
        for (i, (&v, &h)) in speeds.iter().zip(headings).enumerate() {
            let (nlat, nlon) = destination(lat, lon, h, v * 2.0);
            lat = nlat;
            lon = nlon;
            points.push(TrajectoryPoint::new(
                lat,
                lon,
                Timestamp::from_seconds((i as i64 + 1) * 2),
            ));
        }
        Segment::new(1, TransportMode::Bus, 0, points)
    }

    fn features_of(seg: &Segment) -> Vec<f64> {
        zheng_features(seg, &PointFeatures::compute(seg))
    }

    #[test]
    fn names_match_count() {
        assert_eq!(zheng_feature_names().len(), ZHENG_FEATURE_COUNT);
        let seg = segment_with_speeds(&[5.0; 10], &[0.0; 10]);
        assert_eq!(features_of(&seg).len(), ZHENG_FEATURE_COUNT);
    }

    #[test]
    fn straight_constant_run_has_clean_statistics() {
        let seg = segment_with_speeds(&[10.0; 20], &[90.0; 20]);
        let f = features_of(&seg);
        assert!((f[0] - 400.0).abs() < 1.0, "length {}", f[0]);
        assert!((f[1] - 10.0).abs() < 0.05, "mean velocity {}", f[1]);
        assert!(f[2] < 0.1, "velocity std {}", f[2]);
        assert!((f[3] - 10.0).abs() < 0.1, "top1 {}", f[3]);
        assert!(f[3] >= f[4] && f[4] >= f[5], "top-3 ordered");
        assert_eq!(f[9], 0.0, "no heading changes");
        assert_eq!(f[10], 0.0, "no stops");
    }

    #[test]
    fn turns_raise_the_heading_change_rate() {
        let straight = segment_with_speeds(&[5.0; 20], &[0.0; 20]);
        let mut headings = vec![0.0; 20];
        for (i, h) in headings.iter_mut().enumerate() {
            *h = (i as f64) * 45.0; // constant 45°/fix turning
        }
        let turning = segment_with_speeds(&[5.0; 20], &headings);
        assert!(features_of(&turning)[9] > features_of(&straight)[9]);
        assert!(features_of(&turning)[9] > 0.0);
    }

    #[test]
    fn stops_raise_the_stop_rate() {
        let moving = segment_with_speeds(&[5.0; 20], &[0.0; 20]);
        let mut speeds = vec![5.0; 20];
        for v in speeds.iter_mut().take(10) {
            *v = 0.1; // stopped half the time
        }
        let stopping = segment_with_speeds(&speeds, &[0.0; 20]);
        assert!(features_of(&stopping)[10] > features_of(&moving)[10]);
    }

    #[test]
    fn velocity_change_rate_detects_speed_jitter() {
        let smooth = segment_with_speeds(&[8.0; 20], &[0.0; 20]);
        let jittery = segment_with_speeds(
            &[2.0, 9.0, 2.0, 9.0, 2.0, 9.0, 2.0, 9.0, 2.0, 9.0],
            &[0.0; 10],
        );
        let smooth_vcr = velocity_change_rate(&PointFeatures::compute(&smooth));
        let jitter_vcr = velocity_change_rate(&PointFeatures::compute(&jittery));
        assert!(jitter_vcr > smooth_vcr);
        assert!(jitter_vcr > 0.0);
        assert!(smooth_vcr < 1e-6);
    }

    #[test]
    fn degenerate_segment_is_all_zeros() {
        let seg = Segment::new(1, TransportMode::Walk, 0, vec![]);
        assert_eq!(features_of(&seg), vec![0.0; ZHENG_FEATURE_COUNT]);
        assert_eq!(velocity_change_rate(&PointFeatures::compute(&seg)), 0.0);
    }

    #[test]
    fn top3_handles_short_segments() {
        // Two speed values only: top3 back-fills with the smallest... the
        // convention is zeros for missing slots.
        let seg = segment_with_speeds(&[4.0], &[0.0]);
        let f = features_of(&seg);
        // Speeds are [4, 4] (head back-filled) → top3 = 4, 4, 0.
        assert!((f[3] - 4.0).abs() < 0.1);
        assert!((f[4] - 4.0).abs() < 0.1);
        assert_eq!(f[5], 0.0);
    }
}
