//! Property-based tests for statistics, extraction and normalisation
//! invariants.

use proptest::prelude::*;
use traj_features::noise::{hampel_filter, median_smooth};
use traj_features::stats;
use traj_features::trajectory_features::{
    segment_features, summarize_series, FEATURES_PER_SEGMENT,
};
use traj_features::{MinMaxScaler, PointFeatures, StandardScaler};
use traj_geo::geodesy::destination;
use traj_geo::{Segment, Timestamp, TrajectoryPoint, TransportMode};

fn finite_series() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6..1e6f64, 1..200)
}

proptest! {
    #[test]
    fn percentiles_are_monotone_in_p(xs in finite_series(), p1 in 0.0..100.0f64, p2 in 0.0..100.0f64) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(stats::percentile(&xs, lo) <= stats::percentile(&xs, hi) + 1e-9);
    }

    #[test]
    fn percentile_is_bounded_by_extremes(xs in finite_series(), p in 0.0..100.0f64) {
        let v = stats::percentile(&xs, p);
        prop_assert!(v >= stats::min(&xs) - 1e-9);
        prop_assert!(v <= stats::max(&xs) + 1e-9);
    }

    #[test]
    fn mean_is_between_min_and_max(xs in finite_series()) {
        let m = stats::mean(&xs);
        prop_assert!(m >= stats::min(&xs) - 1e-9);
        prop_assert!(m <= stats::max(&xs) + 1e-9);
    }

    #[test]
    fn std_dev_is_nonnegative_and_shift_invariant(xs in finite_series(), shift in -1e5..1e5f64) {
        let s1 = stats::std_dev(&xs);
        prop_assert!(s1 >= 0.0);
        let shifted: Vec<f64> = xs.iter().map(|&x| x + shift).collect();
        let s2 = stats::std_dev(&shifted);
        prop_assert!((s1 - s2).abs() < 1e-6 * (1.0 + s1.abs()), "{s1} vs {s2}");
    }

    #[test]
    fn summarize_series_stats_are_internally_consistent(xs in finite_series()) {
        let s = summarize_series(&xs);
        // min <= p10 <= p25 <= median <= p75 <= p90 <= max.
        prop_assert!(s[0] <= s[5] + 1e-9);
        prop_assert!(s[5] <= s[6] + 1e-9);
        prop_assert!(s[6] <= s[3] + 1e-9);
        prop_assert!(s[3] <= s[8] + 1e-9);
        prop_assert!(s[8] <= s[9] + 1e-9);
        prop_assert!(s[9] <= s[1] + 1e-9);
        // median column equals p50 column.
        prop_assert_eq!(s[3], s[7]);
    }

    #[test]
    fn hampel_output_stays_within_input_range(xs in finite_series(), half in 1usize..5) {
        let filtered = hampel_filter(&xs, half, 3.0);
        prop_assert_eq!(filtered.len(), xs.len());
        let (lo, hi) = (stats::min(&xs), stats::max(&xs));
        for &v in &filtered {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn median_smooth_is_idempotent_on_constants(c in -1e3..1e3f64, n in 1usize..50, half in 1usize..4) {
        let xs = vec![c; n];
        prop_assert_eq!(median_smooth(&xs, half), xs);
    }

    #[test]
    fn minmax_scaled_training_rows_are_in_unit_interval(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1e6..1e6f64, 4),
            1..40,
        )
    ) {
        let mut rows = rows;
        MinMaxScaler::fit_transform(&mut rows);
        for row in &rows {
            for &v in row {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "value {v}");
            }
        }
    }

    #[test]
    fn standard_scaled_training_rows_have_zero_mean(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1e3..1e3f64, 3),
            2..40,
        )
    ) {
        let mut rows = rows;
        StandardScaler::fit_transform(&mut rows);
        for j in 0..3 {
            let mean: f64 = rows.iter().map(|r| r[j]).sum::<f64>() / rows.len() as f64;
            prop_assert!(mean.abs() < 1e-6, "column {j} mean {mean}");
        }
    }
}

/// Random synthetic segments: speeds and headings drawn per step.
fn arbitrary_segment() -> impl Strategy<Value = Segment> {
    (
        proptest::collection::vec((0.0..50.0f64, 0.0..360.0f64), 2..60),
        1u32..100,
    )
        .prop_map(|(steps, user)| {
            let mut points = Vec::with_capacity(steps.len() + 1);
            let (mut lat, mut lon) = (39.9, 116.3);
            points.push(TrajectoryPoint::new(lat, lon, Timestamp::from_seconds(0)));
            for (i, (speed, heading)) in steps.iter().enumerate() {
                let (nlat, nlon) = destination(lat, lon, *heading, speed * 2.0);
                lat = nlat;
                lon = nlon;
                points.push(TrajectoryPoint::new(
                    lat,
                    lon,
                    Timestamp::from_seconds((i as i64 + 1) * 2),
                ));
            }
            Segment::new(user, TransportMode::Bus, 0, points)
        })
}

proptest! {
    #[test]
    fn point_features_are_always_finite_and_sized(seg in arbitrary_segment()) {
        let pf = PointFeatures::compute(&seg);
        prop_assert_eq!(pf.len(), seg.len());
        prop_assert!(pf.all_finite());
        // Speeds are non-negative and bounded by construction (≤ 50 m/s
        // plus great-circle rounding).
        for &v in &pf.speed {
            prop_assert!((0.0..51.0).contains(&v), "speed {v}");
        }
        for &b in &pf.bearing {
            prop_assert!((0.0..360.0).contains(&b), "bearing {b}");
        }
    }

    #[test]
    fn feature_vector_is_70_dimensional_and_finite(seg in arbitrary_segment()) {
        let f = segment_features(&seg);
        prop_assert_eq!(f.len(), FEATURES_PER_SEGMENT);
        prop_assert!(f.iter().all(|v| v.is_finite()));
    }
}
