//! The feature pipeline: steps 1–3, 6 and 7 of the paper's framework,
//! wired into one configurable object that turns raw trajectories (or
//! pre-cut segments) into a normalised [`Dataset`] ready for step 8.

use serde::{Deserialize, Serialize};
use traj_features::noise::NoiseConfig;
use traj_features::normalize::{MinMaxScaler, StandardScaler};
use traj_features::point_features::PointFeatures;
use traj_features::trajectory_features::{feature_names, features_from_point_features};
use traj_geo::segmentation::{segment_all, SegmentationConfig};
use traj_geo::{LabelScheme, RawTrajectory, Segment};
use traj_ml::Dataset;

/// Which trajectory-feature set step 3 emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FeatureSet {
    /// The paper's 70 features (10 statistics × 7 point features).
    #[default]
    Paper70,
    /// The 70 plus ten spatiotemporal extensions
    /// ([`traj_features::extended`]) — the paper's §5 future work.
    Extended80,
    /// The classic 11 features of Zheng et al. (UbiComp 2008) — the
    /// prior-art baseline ([`traj_features::zheng`]).
    Zheng11,
}

/// Step-7 normalisation choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Normalization {
    /// Min–Max to `[0, 1]` (the paper's choice).
    #[default]
    MinMax,
    /// z-score standardisation (ablation).
    ZScore,
    /// No normalisation (ablation; tree models are scale-invariant).
    None,
}

/// Configuration of a [`Pipeline`].
///
/// Construct via [`PipelineConfig::paper`] (the paper's defaults) or the
/// fluent [`PipelineConfig::builder`]; the struct is `#[non_exhaustive]`
/// so new pipeline steps can be added without breaking downstream
/// construction sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct PipelineConfig {
    /// Step 1: segmentation parameters.
    pub segmentation: SegmentationConfig,
    /// Label grouping of the produced dataset.
    pub scheme: LabelScheme,
    /// Step 6: optional noise handling (the paper's comparison
    /// experiments disable it, and so does [`PipelineConfig::paper`]).
    pub noise: NoiseConfig,
    /// Step 7: normalisation.
    pub normalization: Normalization,
    /// Step 5: restrict to these features, by name (`None` keeps all 70).
    pub selected_features: Option<Vec<String>>,
    /// Step 3: the paper's 70 features, the extended 80, or the classic
    /// Zheng 11.
    #[serde(default)]
    pub feature_set: FeatureSet,
}

impl PipelineConfig {
    /// The paper's configuration for a label scheme: 10-point minimum
    /// segments, no noise removal, Min–Max normalisation, all features.
    pub fn paper(scheme: LabelScheme) -> Self {
        PipelineConfig {
            segmentation: SegmentationConfig::paper(),
            scheme,
            noise: NoiseConfig::disabled(),
            normalization: Normalization::MinMax,
            selected_features: None,
            feature_set: FeatureSet::Paper70,
        }
    }

    /// Starts a fluent [`PipelineConfigBuilder`] from the paper's
    /// defaults for `scheme`.
    ///
    /// ```
    /// use trajlib::pipeline::{FeatureSet, Normalization, PipelineConfig};
    /// use traj_geo::LabelScheme;
    ///
    /// let config = PipelineConfig::builder(LabelScheme::Dabiri)
    ///     .feature_set(FeatureSet::Extended80)
    ///     .normalization(Normalization::ZScore)
    ///     .select_features(["speed_p90", "straightness"])
    ///     .build();
    /// assert_eq!(config.feature_set, FeatureSet::Extended80);
    /// ```
    pub fn builder(scheme: LabelScheme) -> PipelineConfigBuilder {
        PipelineConfigBuilder {
            config: PipelineConfig::paper(scheme),
        }
    }

    /// Switches step 3 to the extended 80-feature set.
    #[deprecated(note = "use PipelineConfig::builder(scheme).feature_set(...)")]
    pub fn with_feature_set(mut self, feature_set: FeatureSet) -> Self {
        self.feature_set = feature_set;
        self
    }

    /// Restricts the pipeline to the named features (step 5).
    #[deprecated(note = "use PipelineConfig::builder(scheme).select_features(...)")]
    pub fn with_selected_features(mut self, names: Vec<String>) -> Self {
        self.selected_features = Some(names);
        self
    }

    /// Enables the optional noise handling (step 6).
    #[deprecated(note = "use PipelineConfig::builder(scheme).noise(...)")]
    pub fn with_noise(mut self, noise: NoiseConfig) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the normalisation (step 7).
    #[deprecated(note = "use PipelineConfig::builder(scheme).normalization(...)")]
    pub fn with_normalization(mut self, normalization: Normalization) -> Self {
        self.normalization = normalization;
        self
    }
}

/// Fluent builder for [`PipelineConfig`], started by
/// [`PipelineConfig::builder`]. Every setter overrides one field of the
/// paper's defaults; [`PipelineConfigBuilder::build`] finishes.
#[derive(Debug, Clone)]
pub struct PipelineConfigBuilder {
    config: PipelineConfig,
}

impl PipelineConfigBuilder {
    /// Step 1: segmentation parameters.
    pub fn segmentation(mut self, segmentation: SegmentationConfig) -> Self {
        self.config.segmentation = segmentation;
        self
    }

    /// Step 3: which trajectory-feature set to emit.
    pub fn feature_set(mut self, feature_set: FeatureSet) -> Self {
        self.config.feature_set = feature_set;
        self
    }

    /// Step 6: noise handling.
    pub fn noise(mut self, noise: NoiseConfig) -> Self {
        self.config.noise = noise;
        self
    }

    /// Step 7: normalisation.
    pub fn normalization(mut self, normalization: Normalization) -> Self {
        self.config.normalization = normalization;
        self
    }

    /// Step 5: keep only these features, by name.
    pub fn select_features<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.config.selected_features = Some(names.into_iter().map(Into::into).collect());
        self
    }

    /// Clears a previous [`select_features`](Self::select_features),
    /// keeping the full feature set.
    pub fn all_features(mut self) -> Self {
        self.config.selected_features = None;
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> PipelineConfig {
        self.config
    }
}

/// The feature pipeline (steps 1–3, 6, 7).
///
/// Note on leakage: mirroring the paper, normalisation statistics are fit
/// on the *whole* table before cross-validation (its step 7 precedes step
/// 8). Min–Max scaling is monotone per feature, so tree-based models —
/// every headline result — are unaffected; margin/gradient models see a
/// negligible range leak.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Creates a pipeline.
    pub fn new(config: PipelineConfig) -> Self {
        Pipeline { config }
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Steps 1 → 7 from raw labeled trajectories.
    pub fn dataset_from_raw(&self, trajectories: &[RawTrajectory]) -> Dataset {
        let segments = segment_all(trajectories, &self.config.segmentation);
        self.dataset_from_segments(&segments)
    }

    /// Steps 2 → 7 from pre-cut segments (step 1 already applied — e.g.
    /// by the synthetic generator, which emits labeled segments
    /// directly). Segments shorter than the segmentation minimum or with
    /// modes outside the scheme are dropped.
    pub fn dataset_from_segments(&self, segments: &[Segment]) -> Dataset {
        let mut all_names = match self.config.feature_set {
            FeatureSet::Zheng11 => traj_features::zheng::zheng_feature_names(),
            _ => feature_names(),
        };
        if self.config.feature_set == FeatureSet::Extended80 {
            all_names.extend(traj_features::extended::extended_feature_names());
        }
        // Steps 2–3 + 6 are independent per segment: one pool task each,
        // results kept in input order (dropped segments yield `None`), so
        // the dataset is identical to the old sequential loop.
        let extracted: Vec<Option<(Vec<f64>, usize, u32)>> =
            traj_runtime::parallel_map(segments, |_, seg| {
                // Admission counts only points that survive the shared
                // timestamp policy, so batch and streaming agree on which
                // segments exist at all.
                let kept = traj_geo::monotonic_len(&seg.points);
                if kept < self.config.segmentation.min_points {
                    return None;
                }
                let class = self.config.scheme.class_of(seg.mode)?;
                let sanitized;
                let seg = if kept < seg.len() {
                    let (points, _) = traj_geo::sanitize_monotonic(&seg.points);
                    sanitized = Segment::new(seg.user, seg.mode, seg.day, points.into_owned());
                    &sanitized
                } else {
                    seg
                };
                // Step 6 (optional): clean positions, then series.
                let cleaned;
                let seg_ref = if self.config.noise.is_active() {
                    cleaned = self.config.noise.clean_segment(seg);
                    if cleaned.len() < self.config.segmentation.min_points {
                        return None;
                    }
                    &cleaned
                } else {
                    seg
                };
                // Steps 2–3.
                let mut pf = PointFeatures::compute(seg_ref);
                self.config.noise.clean_point_features(&mut pf);
                let mut row = match self.config.feature_set {
                    FeatureSet::Zheng11 => traj_features::zheng::zheng_features(seg_ref, &pf),
                    _ => features_from_point_features(&pf),
                };
                if self.config.feature_set == FeatureSet::Extended80 {
                    row.extend(traj_features::extended::extended_features(seg_ref, &pf));
                }
                Some((row, class, seg.user))
            });

        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(extracted.len());
        let mut labels = Vec::with_capacity(extracted.len());
        let mut groups = Vec::with_capacity(extracted.len());
        for (row, class, user) in extracted.into_iter().flatten() {
            rows.push(row);
            labels.push(class);
            groups.push(user);
        }

        // Step 5 (optional): project onto the selected features.
        let names: Vec<String> = match &self.config.selected_features {
            None => all_names,
            Some(wanted) => {
                let indices: Vec<usize> = wanted
                    .iter()
                    .map(|w| {
                        all_names
                            .iter()
                            .position(|n| n == w)
                            .unwrap_or_else(|| panic!("unknown feature name: {w}"))
                    })
                    .collect();
                rows = rows
                    .iter()
                    .map(|r| indices.iter().map(|&i| r[i]).collect())
                    .collect();
                wanted.clone()
            }
        };

        // Step 7.
        match self.config.normalization {
            Normalization::MinMax => {
                if !rows.is_empty() {
                    MinMaxScaler::fit_transform(&mut rows);
                }
            }
            Normalization::ZScore => {
                if !rows.is_empty() {
                    StandardScaler::fit_transform(&mut rows);
                }
            }
            Normalization::None => {}
        }

        Dataset::from_rows(&rows, labels, self.config.scheme.n_classes(), groups, names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_geolife::{SynthConfig, SynthDataset};

    fn small_segments() -> Vec<Segment> {
        SynthDataset::generate(&SynthConfig::small(21)).segments
    }

    #[test]
    fn paper_pipeline_produces_70_normalised_features() {
        let segments = small_segments();
        let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Raw));
        let ds = pipeline.dataset_from_segments(&segments);
        assert_eq!(ds.n_features(), 70);
        assert_eq!(ds.len(), segments.len());
        for i in 0..ds.len() {
            for &v in ds.row(i) {
                assert!((0.0..=1.0).contains(&v), "minmax range: {v}");
            }
        }
        assert_eq!(ds.n_classes, 11);
    }

    #[test]
    fn scheme_filters_and_relabels() {
        let segments = small_segments();
        let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Dabiri));
        let ds = pipeline.dataset_from_segments(&segments);
        assert!(ds.len() <= segments.len());
        assert_eq!(ds.n_classes, 5);
        assert!(ds.y.iter().all(|&c| c < 5));
    }

    #[test]
    fn feature_selection_projects_named_columns() {
        let segments = small_segments();
        let config = PipelineConfig::builder(LabelScheme::Raw)
            .select_features(["speed_p90", "speed_mean"])
            .build();
        let ds = Pipeline::new(config).dataset_from_segments(&segments);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.feature_names, vec!["speed_p90", "speed_mean"]);
    }

    #[test]
    #[should_panic(expected = "unknown feature name")]
    fn unknown_feature_name_panics() {
        let segments = small_segments();
        let config = PipelineConfig::builder(LabelScheme::Raw)
            .select_features(["bogus"])
            .build();
        let _ = Pipeline::new(config).dataset_from_segments(&segments);
    }

    #[test]
    fn normalization_variants() {
        let segments = small_segments();
        let raw = Pipeline::new(
            PipelineConfig::builder(LabelScheme::Raw)
                .normalization(Normalization::None)
                .build(),
        )
        .dataset_from_segments(&segments);
        // Unnormalised speeds exceed 1 m/s somewhere.
        let any_large = (0..raw.len()).any(|i| raw.row(i).iter().any(|&v| v > 1.5));
        assert!(any_large);

        let z = Pipeline::new(
            PipelineConfig::builder(LabelScheme::Raw)
                .normalization(Normalization::ZScore)
                .build(),
        )
        .dataset_from_segments(&segments);
        // z-scored columns have mean ≈ 0.
        let mean0: f64 = (0..z.len()).map(|i| z.value(i, 0)).sum::<f64>() / z.len() as f64;
        assert!(mean0.abs() < 1e-9, "{mean0}");
    }

    #[test]
    fn noise_step_changes_features() {
        let segments = small_segments();
        let clean =
            Pipeline::new(PipelineConfig::paper(LabelScheme::Raw)).dataset_from_segments(&segments);
        let filtered = Pipeline::new(
            PipelineConfig::builder(LabelScheme::Raw)
                .noise(NoiseConfig::enabled())
                .build(),
        )
        .dataset_from_segments(&segments);
        assert_eq!(clean.len(), filtered.len());
        // Normalised values differ somewhere once outliers are removed.
        let differs = (0..clean.len()).any(|i| clean.row(i) != filtered.row(i));
        assert!(differs);
    }

    #[test]
    fn from_raw_runs_segmentation_first() {
        let synth = SynthDataset::generate(&SynthConfig::small(22));
        let raws = synth.to_raw_trajectories(2);
        let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Raw));
        let from_raw = pipeline.dataset_from_raw(&raws);
        assert_eq!(from_raw.len(), synth.segments.len());
        assert_eq!(from_raw.n_features(), 70);
    }

    #[test]
    fn extended_feature_set_appends_ten_columns() {
        let segments = small_segments();
        let config = PipelineConfig::builder(LabelScheme::Raw)
            .feature_set(FeatureSet::Extended80)
            .build();
        let ds = Pipeline::new(config).dataset_from_segments(&segments);
        assert_eq!(ds.n_features(), 80);
        assert!(ds.feature_index("straightness").is_some());
        assert!(ds.feature_index("start_hour_sin").is_some());
        assert!(ds.feature_index("speed_p90").is_some());
        // Extended columns are normalised along with the base ones.
        for i in 0..ds.len() {
            assert!(ds.row(i).iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn zheng_feature_set_produces_eleven_columns() {
        let segments = small_segments();
        let config = PipelineConfig::builder(LabelScheme::Dabiri)
            .feature_set(FeatureSet::Zheng11)
            .build();
        let ds = Pipeline::new(config).dataset_from_segments(&segments);
        assert_eq!(ds.n_features(), 11);
        assert!(ds.feature_index("zheng_heading_change_rate").is_some());
        assert!(ds.feature_index("speed_p90").is_none());
        // Still a usable classification table.
        let mut tree = traj_ml::tree::DecisionTree::new(traj_ml::tree::TreeConfig::default());
        traj_ml::Classifier::fit(&mut tree, &ds);
        let acc = traj_ml::accuracy(&ds.y, &traj_ml::Classifier::predict(&tree, &ds));
        assert!(acc > 0.9, "training accuracy {acc}");
    }

    #[test]
    fn extended_selection_by_name_works() {
        let segments = small_segments();
        let config = PipelineConfig::builder(LabelScheme::Raw)
            .feature_set(FeatureSet::Extended80)
            .select_features(["straightness", "speed_p90"])
            .build();
        let ds = Pipeline::new(config).dataset_from_segments(&segments);
        assert_eq!(ds.n_features(), 2);
    }

    #[test]
    fn empty_input_yields_empty_dataset() {
        let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Raw));
        let ds = pipeline.dataset_from_segments(&[]);
        assert!(ds.is_empty());
    }

    #[test]
    fn short_segments_are_dropped() {
        let mut segments = small_segments();
        let seg = segments[0].clone();
        let mut short = seg.clone();
        short.points.truncate(5);
        segments.push(short);
        let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Raw));
        let ds = pipeline.dataset_from_segments(&segments);
        assert_eq!(ds.len(), segments.len() - 1);
    }
}
