//! # trajlib
//!
//! The transportation-mode prediction framework of Etemad, Soares Júnior
//! and Matwin, *"On Feature Selection and Evaluation of Transportation
//! Mode Prediction Strategies"* (EDBT 2019), reproduced in Rust.
//!
//! The paper's eight-step framework (its Figure 1) maps onto this
//! workspace as:
//!
//! | Step | Paper | Here |
//! |------|-------|------|
//! | 1 | Segmentation by user/day/mode, ≥ 10 points | [`traj_geo::segmentation`] |
//! | 2 | Point features (speed, acceleration, jerk, bearing, …) | [`traj_features::point_features`] |
//! | 3 | 70 trajectory features (10 stats × 7 point features) | [`traj_features::trajectory_features`] |
//! | 4 | Wrapper + RF-importance feature selection | [`traj_select`] |
//! | 5 | Top-20 subset | [`traj_select::SelectionCurve::prefix`] |
//! | 6 | Optional noise handling | [`traj_features::noise`] |
//! | 7 | Min–Max normalisation | [`traj_features::normalize`] |
//! | 8 | Classification + evaluation | [`traj_ml`] |
//!
//! [`Pipeline`] wires steps 1–3 and 6–7 into one configurable object;
//! the [`experiments`] module packages the paper's four experiments
//! (classifier selection, feature selection, comparisons with published
//! baselines, and the random-vs-user cross-validation study) as library
//! functions the `traj-bench` binaries and the examples call.
//!
//! ## Quickstart
//!
//! ```
//! use trajlib::prelude::*;
//!
//! // Synthesize a small GeoLife-like dataset (the real data cannot ship
//! // with the repository; see DESIGN.md for the substitution).
//! let synth = SynthDataset::generate(&SynthConfig::small(7));
//!
//! // Steps 1–3 + 7: extract the 70-feature table, Min–Max normalised.
//! let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Dabiri));
//! let dataset = pipeline.dataset_from_segments(&synth.segments);
//! assert_eq!(dataset.n_features(), 70);
//!
//! // Step 8: random forest under random 3-fold cross-validation. Folds
//! // (and the forest's trees) train in parallel on the shared
//! // `traj-runtime` pool; results are identical for any thread count.
//! let factory = |seed: u64| ClassifierKind::RandomForest.build(seed);
//! let scores = cross_validate(&factory, &dataset, &KFold::new(3, 1), 0).unwrap();
//! assert!(traj_ml::cv::mean_accuracy(&scores) > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod experiments;
pub mod pipeline;
pub mod report;

pub use pipeline::{FeatureSet, Normalization, Pipeline, PipelineConfig, PipelineConfigBuilder};

// Re-export the component crates under their role names.
pub use traj_features as features;
pub use traj_geo as geo;
pub use traj_geolife as geolife;
pub use traj_ml as ml;
pub use traj_runtime as runtime;
pub use traj_select as select;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use crate::experiments;
    pub use crate::pipeline::{
        FeatureSet, Normalization, Pipeline, PipelineConfig, PipelineConfigBuilder,
    };
    pub use traj_features::{extract_features, FeatureTable, MinMaxScaler, NoiseConfig};
    pub use traj_geo::segmentation::{segment_by_user_day_mode, SegmentationConfig};
    pub use traj_geo::{
        LabelScheme, LabeledPoint, RawTrajectory, Segment, Timestamp, TrajectoryPoint,
        TransportMode,
    };
    pub use traj_geolife::{DatasetStats, SynthConfig, SynthDataset};
    pub use traj_ml::cv::{
        cross_validate, cross_validate_prebinned, Fold, Folds, GroupKFold, GroupShuffleSplit,
        KFold, SplitError, Splitter, StratifiedKFold,
    };
    pub use traj_ml::{
        accuracy, f1_weighted, Alternative, BinnedDataset, Classifier, ClassifierKind, Dataset,
        RandomForest, SplitAlgo,
    };
    pub use traj_select::{forward_select, incremental_curve, rf_importance_ranking};
}
