//! Per-class analysis: which transportation modes get confused?
//!
//! Not a numbered figure in the paper, but the analysis behind two of its
//! modelling decisions: [Dabiri & Heaslip] merge car+taxi into *driving*
//! and train+subway into *train* because their kinematics are nearly
//! indistinguishable, and the paper adopts those merges for its §4.1/§4.3
//! protocols. This experiment quantifies that on the Endo label set
//! (everything unmerged) under user-oriented evaluation: the confusion
//! matrix concentrates exactly on the car↔taxi and train↔subway pairs.

use crate::experiments::DataConfig;
use crate::pipeline::{Pipeline, PipelineConfig};
use serde::{Deserialize, Serialize};
use traj_geo::LabelScheme;
use traj_ml::cv::{GroupShuffleSplit, Splitter};
use traj_ml::forest::{ForestConfig, RandomForest};
use traj_ml::metrics::ClassificationReport;

/// Configuration of the confusion analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfusionConfig {
    /// Synthetic cohort.
    pub data: DataConfig,
    /// Experiment seed.
    pub seed: u64,
    /// Forest size.
    pub n_estimators: usize,
    /// Label scheme to analyse (Endo keeps the confusable pairs apart).
    pub scheme: LabelScheme,
}

impl Default for ConfusionConfig {
    fn default() -> Self {
        ConfusionConfig {
            data: DataConfig::full(),
            seed: 0,
            n_estimators: 50,
            scheme: LabelScheme::Endo,
        }
    }
}

/// Outcome of the confusion analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfusionResult {
    /// Class names, indexing the matrix and the per-class vectors.
    pub class_names: Vec<String>,
    /// Confusion matrix over the held-out users: `matrix[truth][pred]`.
    pub matrix: Vec<Vec<usize>>,
    /// Per-class recall.
    pub recall: Vec<f64>,
    /// Per-class precision.
    pub precision: Vec<f64>,
    /// Per-class F1.
    pub f1: Vec<f64>,
    /// Overall held-out accuracy.
    pub accuracy: f64,
    /// For every class, the most common *wrong* prediction and the
    /// fraction of that class's samples it absorbs (`None` when the
    /// class has no errors or no samples).
    pub top_confusions: Vec<Option<(String, f64)>>,
}

impl ConfusionResult {
    /// Fraction of class `a`'s samples predicted as class `b` (by name).
    pub fn confusion_rate(&self, a: &str, b: &str) -> f64 {
        let ia = self.class_names.iter().position(|n| n == a);
        let ib = self.class_names.iter().position(|n| n == b);
        let (Some(ia), Some(ib)) = (ia, ib) else {
            return 0.0;
        };
        let total: usize = self.matrix[ia].iter().sum();
        if total == 0 {
            0.0
        } else {
            self.matrix[ia][ib] as f64 / total as f64
        }
    }
}

/// Runs the analysis: trains on 80 % of users, evaluates on the held-out
/// 20 % (user-disjoint), and aggregates the confusion matrix.
pub fn run_confusion_analysis(config: &ConfusionConfig) -> ConfusionResult {
    let synth = config.data.generate();
    let pipeline = Pipeline::new(PipelineConfig::paper(config.scheme));
    let dataset = pipeline.dataset_from_segments(&synth.segments);

    let splitter = GroupShuffleSplit {
        n_splits: 1,
        test_fraction: 0.2,
        seed: config.seed,
    };
    let fold = splitter
        .split(&dataset)
        .expect("generated cohort has enough users for a group split")
        .next()
        .expect("one split requested");
    let train = dataset.subset(&fold.train);
    let test = dataset.subset(&fold.test);

    let mut forest = RandomForest::new(ForestConfig {
        n_estimators: config.n_estimators,
        seed: config.seed,
        ..ForestConfig::default()
    });
    forest.fit(&train);
    let pred = forest.predict(&test);

    let n_classes = dataset.n_classes;
    let matrix = traj_ml::metrics::confusion_matrix(&test.y, &pred, n_classes);
    let report = ClassificationReport::compute(&test.y, &pred, n_classes);
    let class_names: Vec<String> = config
        .scheme
        .class_names()
        .into_iter()
        .map(str::to_owned)
        .collect();

    let top_confusions = (0..n_classes)
        .map(|t| {
            let total: usize = matrix[t].iter().sum();
            if total == 0 {
                return None;
            }
            let wrong = (0..n_classes)
                .filter(|&p| p != t)
                .max_by_key(|&p| matrix[t][p])?;
            if matrix[t][wrong] == 0 {
                return None;
            }
            Some((
                class_names[wrong].clone(),
                matrix[t][wrong] as f64 / total as f64,
            ))
        })
        .collect();

    ConfusionResult {
        class_names,
        matrix,
        recall: report.recall,
        precision: report.precision,
        f1: report.f1,
        accuracy: report.accuracy,
        top_confusions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ConfusionConfig {
        ConfusionConfig {
            data: DataConfig {
                n_users: 12,
                segments_per_user: (14, 20),
                seed: 42,
                heterogeneity: 1.0,
            },
            seed: 1,
            n_estimators: 25,
            scheme: LabelScheme::Endo,
        }
    }

    #[test]
    fn analysis_runs_and_is_consistent() {
        let r = run_confusion_analysis(&tiny_config());
        assert_eq!(r.class_names.len(), 7);
        assert_eq!(r.matrix.len(), 7);
        assert!((0.0..=1.0).contains(&r.accuracy));
        // Matrix totals match recall denominators.
        for (t, row) in r.matrix.iter().enumerate() {
            let total: usize = row.iter().sum();
            if total > 0 {
                let recall_check = row[t] as f64 / total as f64;
                assert!((r.recall[t] - recall_check).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn car_and_taxi_confuse_each_other() {
        // The generator gives car and taxi nearly identical kinematics;
        // the held-out confusion must reflect that (the Dabiri-merge
        // rationale). Taxi is only ~4 % of segments, so the cohort must
        // be large enough for taxis to reach the 20 % holdout.
        let r = run_confusion_analysis(&ConfusionConfig {
            data: DataConfig {
                n_users: 25,
                segments_per_user: (20, 30),
                seed: 42,
                heterogeneity: 1.0,
            },
            seed: 1,
            n_estimators: 25,
            scheme: LabelScheme::Endo,
        });
        let car_as_taxi = r.confusion_rate("car", "taxi");
        let taxi_as_car = r.confusion_rate("taxi", "car");
        assert!(
            car_as_taxi + taxi_as_car > 0.1,
            "driving modes should confuse: car→taxi {car_as_taxi}, taxi→car {taxi_as_car}"
        );
        // Walk, by contrast, is rarely confused with driving.
        assert!(r.confusion_rate("walk", "car") < 0.1);
        assert!(r.confusion_rate("walk", "taxi") < 0.1);
    }

    #[test]
    fn confusion_rate_handles_unknown_names() {
        let r = run_confusion_analysis(&tiny_config());
        assert_eq!(r.confusion_rate("walk", "hovercraft"), 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_confusion_analysis(&tiny_config());
        let b = run_confusion_analysis(&tiny_config());
        assert_eq!(a, b);
    }
}
