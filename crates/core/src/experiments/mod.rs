//! The paper's experiments as library functions.
//!
//! | Module | Paper artefact |
//! |--------|----------------|
//! | [`classifier_selection`] | §4.1 / Figure 2 — six classifiers under random CV, Wilcoxon tests against the best |
//! | [`feature_selection`] | §4.2 / Figure 3 — wrapper and RF-importance selection curves |
//! | [`comparison`] | §4.3 — accuracy vs the published [Endo] (67.9 %) and [Dabiri] (84.8 %) baselines with one-sample Wilcoxon tests |
//! | [`cv_comparison`] | §4.4 / Figure 4 — random vs user-oriented cross-validation per classifier |
//! | [`confusion`] | per-class confusion analysis — the rationale behind the Dabiri label merges |
//! | [`evaluation_bias`] | §5 future work: estimate − ground-truth bias of four evaluation strategies |
//!
//! Every experiment consumes a [`DataConfig`] describing the synthetic
//! GeoLife cohort, so binaries run at full scale while tests run small.

pub mod classifier_selection;
pub mod comparison;
pub mod confusion;
pub mod cv_comparison;
pub mod evaluation_bias;
pub mod feature_selection;

pub use classifier_selection::{run_classifier_selection, ClassifierSelectionConfig};
pub use comparison::{run_dabiri_comparison, run_endo_comparison, ComparisonConfig};
pub use confusion::{run_confusion_analysis, ConfusionConfig};
pub use cv_comparison::{run_cv_comparison, CvComparisonConfig};
pub use evaluation_bias::{run_evaluation_bias, EvaluationBiasConfig};
pub use feature_selection::{run_feature_selection, FeatureSelectionConfig, SelectionMethod};

use serde::{Deserialize, Serialize};
use traj_geolife::{SynthConfig, SynthDataset};

/// Size and seed of the synthetic GeoLife cohort an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataConfig {
    /// Number of users.
    pub n_users: usize,
    /// Labeled segments per user (inclusive range).
    pub segments_per_user: (usize, usize),
    /// Generator seed.
    pub seed: u64,
    /// Between-user heterogeneity (see
    /// [`traj_geolife::synth::UserProfile::sample`]).
    pub heterogeneity: f64,
}

impl DataConfig {
    /// Experiment scale: a cohort comparable to GeoLife's 69 labeled
    /// users.
    pub fn full() -> Self {
        DataConfig {
            n_users: 69,
            segments_per_user: (30, 60),
            seed: 42,
            heterogeneity: 1.0,
        }
    }

    /// Reduced scale for tests and examples.
    pub fn small() -> Self {
        DataConfig {
            n_users: 10,
            segments_per_user: (10, 16),
            seed: 42,
            heterogeneity: 1.0,
        }
    }

    /// Generates the cohort.
    pub fn generate(&self) -> SynthDataset {
        SynthDataset::generate(&SynthConfig {
            n_users: self.n_users,
            segments_per_user: self.segments_per_user,
            seed: self.seed,
            modes: None,
            heterogeneity: self.heterogeneity,
            max_points_per_segment: 300,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_configs_generate() {
        let d = DataConfig::small().generate();
        assert_eq!(d.users.len(), 10);
        assert!(!d.segments.is_empty());
    }

    #[test]
    fn full_config_matches_geolife_cohort() {
        let c = DataConfig::full();
        assert_eq!(c.n_users, 69);
    }
}
