//! Experiment 4 (§4.4, Figure 4): the effect of the cross-validation
//! type.
//!
//! "We use the same classifiers and same features to calculate the
//! cross-validation accuracy. Only the type of cross-validation is
//! different in this experiment, one is random, and another is
//! user-oriented cross-validation."
//!
//! For every classifier the experiment reports accuracy and weighted
//! F-score under both schemes; the paper's finding — random CV is
//! optimistic on both measures — reproduces because the synthetic users
//! are self-similar (see `traj-geolife`'s user model).

use crate::experiments::comparison::top_k_features;
use crate::experiments::DataConfig;
use crate::pipeline::{Pipeline, PipelineConfig};
use serde::{Deserialize, Serialize};
use traj_geo::LabelScheme;
use traj_ml::cv::{cross_validate, GroupKFold, KFold};
use traj_ml::ClassifierKind;

/// Configuration of the cross-validation comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CvComparisonConfig {
    /// Synthetic cohort.
    pub data: DataConfig,
    /// Fold count shared by both schemes.
    pub folds: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Classifiers to evaluate; defaults to the paper's six.
    pub classifiers: Vec<ClassifierKind>,
    /// Label scheme (the paper's figure uses its standard task; we
    /// default to the Endo seven-class set, the harder protocol where
    /// the user effect is strongest).
    pub scheme: LabelScheme,
    /// Restrict to the top-k importance features, as the paper's "same
    /// features" are its step-5 subset (`None` keeps all 70).
    pub top_k: Option<usize>,
}

impl Default for CvComparisonConfig {
    fn default() -> Self {
        CvComparisonConfig {
            data: DataConfig::full(),
            folds: 5,
            seed: 0,
            classifiers: ClassifierKind::PAPER_SIX.to_vec(),
            scheme: LabelScheme::Endo,
            top_k: Some(20),
        }
    }
}

/// Per-classifier outcome: both schemes, both measures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CvComparisonRow {
    /// The classifier.
    pub kind: ClassifierKind,
    /// Mean accuracy under random K-fold CV.
    pub random_accuracy: f64,
    /// Mean weighted F1 under random K-fold CV.
    pub random_f1: f64,
    /// Mean accuracy under user-oriented (group) K-fold CV.
    pub user_accuracy: f64,
    /// Mean weighted F1 under user-oriented CV.
    pub user_f1: f64,
}

impl CvComparisonRow {
    /// The optimism of random CV on accuracy (positive = optimistic).
    pub fn accuracy_gap(&self) -> f64 {
        self.random_accuracy - self.user_accuracy
    }
}

/// Outcome of the experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CvComparisonResult {
    /// One row per classifier, in the requested order.
    pub rows: Vec<CvComparisonRow>,
    /// Mean accuracy gap over classifiers.
    pub mean_gap: f64,
}

/// Runs the experiment.
pub fn run_cv_comparison(config: &CvComparisonConfig) -> CvComparisonResult {
    let synth = config.data.generate();
    let pipeline = Pipeline::new(PipelineConfig::paper(config.scheme));
    let full = pipeline.dataset_from_segments(&synth.segments);
    let dataset = match config.top_k {
        Some(k) => {
            let selected = top_k_features(&full, k, config.seed);
            full.select_features(&selected)
        }
        None => full,
    };

    let random = KFold::new(config.folds, config.seed);
    let grouped = GroupKFold {
        n_splits: config.folds,
    };

    let rows: Vec<CvComparisonRow> = config
        .classifiers
        .iter()
        .map(|&kind| {
            let factory = move |seed: u64| kind.build(seed);
            let r = cross_validate(&factory, &dataset, &random, config.seed)
                .expect("experiment fold counts fit the generated cohort");
            let g = cross_validate(&factory, &dataset, &grouped, config.seed)
                .expect("experiment fold counts fit the generated cohort");
            CvComparisonRow {
                kind,
                random_accuracy: traj_ml::cv::mean_accuracy(&r),
                random_f1: traj_ml::cv::mean_f1_weighted(&r),
                user_accuracy: traj_ml::cv::mean_accuracy(&g),
                user_f1: traj_ml::cv::mean_f1_weighted(&g),
            }
        })
        .collect();

    let mean_gap = if rows.is_empty() {
        0.0
    } else {
        rows.iter().map(|r| r.accuracy_gap()).sum::<f64>() / rows.len() as f64
    };

    CvComparisonResult { rows, mean_gap }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> CvComparisonConfig {
        CvComparisonConfig {
            data: DataConfig::small(),
            folds: 3,
            seed: 1,
            classifiers: vec![ClassifierKind::RandomForest, ClassifierKind::DecisionTree],
            scheme: LabelScheme::Endo,
            top_k: Some(10),
        }
    }

    #[test]
    fn produces_one_row_per_classifier() {
        let result = run_cv_comparison(&tiny_config());
        assert_eq!(result.rows.len(), 2);
        for row in &result.rows {
            assert!((0.0..=1.0).contains(&row.random_accuracy));
            assert!((0.0..=1.0).contains(&row.user_accuracy));
            assert!((0.0..=1.0).contains(&row.random_f1));
            assert!((0.0..=1.0).contains(&row.user_f1));
        }
    }

    #[test]
    fn random_cv_is_optimistic_for_the_forest() {
        // The paper's headline claim; with heterogeneous users the forest
        // must score higher under random CV.
        let result = run_cv_comparison(&tiny_config());
        let rf = result
            .rows
            .iter()
            .find(|r| r.kind == ClassifierKind::RandomForest)
            .unwrap();
        assert!(
            rf.accuracy_gap() > 0.0,
            "random {} vs user {}",
            rf.random_accuracy,
            rf.user_accuracy
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_cv_comparison(&tiny_config());
        let b = run_cv_comparison(&tiny_config());
        assert_eq!(a, b);
    }

    #[test]
    fn all_features_variant_runs() {
        let mut config = tiny_config();
        config.top_k = None;
        config.classifiers = vec![ClassifierKind::DecisionTree];
        let result = run_cv_comparison(&config);
        assert_eq!(result.rows.len(), 1);
    }
}
