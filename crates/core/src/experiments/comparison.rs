//! Experiment 3 (§4.3): comparison with the published deep-learning
//! baselines.
//!
//! The paper never re-runs [Endo et al. 2016] or [Dabiri & Heaslip 2018];
//! it compares its measured accuracies against their *published* numbers
//! with one-sample Wilcoxon signed-rank tests:
//!
//! * **vs Endo** — Endo label set, user-disjoint 80/20 split, top-20
//!   features, RF with 50 trees; measured 69.5 % vs published 67.9 %,
//!   p = 0.0431.
//! * **vs Dabiri** — Dabiri label set, random five-fold CV, top-20
//!   features, RF with 50 trees; measured 88.5 % vs published 84.8 %,
//!   p = 0.0796.
//!
//! We follow the same protocol; the published constants are recorded in
//! [`ENDO_PUBLISHED_ACCURACY`] and [`DABIRI_PUBLISHED_ACCURACY`].

use crate::experiments::DataConfig;
use crate::pipeline::{Pipeline, PipelineConfig};
use serde::{Deserialize, Serialize};
use traj_geo::LabelScheme;
use traj_ml::cv::{cross_validate, GroupShuffleSplit, KFold, Splitter};
use traj_ml::forest::{ForestConfig, RandomForest};
use traj_ml::stats_tests::{wilcoxon_one_sample, Alternative, WilcoxonResult};
use traj_ml::{Classifier, Dataset};

/// Mean accuracy published by Endo et al. (2016) under user-disjoint
/// evaluation, as cited in the paper's §4.3.
pub const ENDO_PUBLISHED_ACCURACY: f64 = 0.679;
/// Accuracy published by Dabiri & Heaslip (2018) under random CV, as
/// cited in the paper's §4.3.
pub const DABIRI_PUBLISHED_ACCURACY: f64 = 0.848;

/// Configuration of a baseline comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonConfig {
    /// Synthetic cohort.
    pub data: DataConfig,
    /// Number of evaluation splits (repeated user-disjoint splits for
    /// Endo; `n_splits`-fold random CV for Dabiri). More splits give the
    /// one-sample Wilcoxon test more power; the paper used enough folds
    /// to reach p < 0.05 against Endo.
    pub n_splits: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Forest size (the paper's §4.3 uses 50 estimators).
    pub n_estimators: usize,
    /// Number of top-importance features to select (the paper's step 5:
    /// 20).
    pub top_k: usize,
}

impl Default for ComparisonConfig {
    fn default() -> Self {
        ComparisonConfig {
            data: DataConfig::full(),
            n_splits: 10,
            seed: 0,
            n_estimators: 50,
            top_k: 20,
        }
    }
}

/// Outcome of a baseline comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonResult {
    /// Protocol name (`"endo"` or `"dabiri"`).
    pub protocol: String,
    /// Accuracy per split.
    pub split_accuracies: Vec<f64>,
    /// Mean accuracy.
    pub mean_accuracy: f64,
    /// Mean weighted F1.
    pub mean_f1_weighted: f64,
    /// The published baseline accuracy compared against.
    pub published_baseline: f64,
    /// One-sample Wilcoxon signed-rank test of the split accuracies
    /// against the baseline, alternative *greater*.
    pub wilcoxon: WilcoxonResult,
    /// Names of the selected top-k features.
    pub selected_features: Vec<String>,
}

/// §4.3 first comparison: user-disjoint 80/20 splits on the Endo label
/// set.
pub fn run_endo_comparison(config: &ComparisonConfig) -> ComparisonResult {
    let splitter = GroupShuffleSplit {
        n_splits: config.n_splits,
        test_fraction: 0.2,
        seed: config.seed,
    };
    run_comparison(
        config,
        LabelScheme::Endo,
        &splitter,
        "endo",
        ENDO_PUBLISHED_ACCURACY,
    )
}

/// §4.3 second comparison: random five-fold CV on the Dabiri label set.
pub fn run_dabiri_comparison(config: &ComparisonConfig) -> ComparisonResult {
    let splitter = KFold::new(config.n_splits, config.seed);
    run_comparison(
        config,
        LabelScheme::Dabiri,
        &splitter,
        "dabiri",
        DABIRI_PUBLISHED_ACCURACY,
    )
}

fn run_comparison(
    config: &ComparisonConfig,
    scheme: LabelScheme,
    splitter: &dyn Splitter,
    protocol: &str,
    baseline: f64,
) -> ComparisonResult {
    let synth = config.data.generate();
    let pipeline = Pipeline::new(PipelineConfig::paper(scheme));
    let full = pipeline.dataset_from_segments(&synth.segments);

    // Step 4+5: top-k features by RF importance.
    let selected = top_k_features(&full, config.top_k, config.seed);
    let dataset = full.select_features(&selected);
    let selected_features: Vec<String> = selected
        .iter()
        .map(|&i| full.feature_names[i].clone())
        .collect();

    let estimators = config.n_estimators;
    let factory = move |seed: u64| -> Box<dyn Classifier> {
        Box::new(RandomForest::new(ForestConfig {
            n_estimators: estimators,
            seed,
            ..ForestConfig::default()
        }))
    };
    let scores = cross_validate(&factory, &dataset, splitter, config.seed)
        .expect("experiment fold counts fit the generated cohort");
    let split_accuracies: Vec<f64> = scores.iter().map(|s| s.accuracy).collect();
    let mean_accuracy = traj_ml::cv::mean_accuracy(&scores);
    let mean_f1_weighted = traj_ml::cv::mean_f1_weighted(&scores);

    let wilcoxon = wilcoxon_one_sample(&split_accuracies, baseline, Alternative::Greater);

    ComparisonResult {
        protocol: protocol.to_owned(),
        split_accuracies,
        mean_accuracy,
        mean_f1_weighted,
        published_baseline: baseline,
        wilcoxon,
        selected_features,
    }
}

/// The paper's step-5 subset: top `k` features by random-forest impurity
/// importance.
pub fn top_k_features(dataset: &Dataset, k: usize, seed: u64) -> Vec<usize> {
    traj_select::rf_importance_ranking(dataset, 50, seed)
        .into_iter()
        .take(k)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ComparisonConfig {
        ComparisonConfig {
            data: DataConfig::small(),
            n_splits: 4,
            seed: 1,
            n_estimators: 10,
            top_k: 10,
        }
    }

    #[test]
    fn endo_comparison_runs() {
        let r = run_endo_comparison(&tiny_config());
        assert_eq!(r.protocol, "endo");
        assert_eq!(r.split_accuracies.len(), 4);
        assert_eq!(r.published_baseline, ENDO_PUBLISHED_ACCURACY);
        assert_eq!(r.selected_features.len(), 10);
        assert!((0.0..=1.0).contains(&r.mean_accuracy));
        assert!((0.0..=1.0).contains(&r.wilcoxon.p_value));
    }

    #[test]
    fn dabiri_comparison_runs() {
        let r = run_dabiri_comparison(&tiny_config());
        assert_eq!(r.protocol, "dabiri");
        assert_eq!(r.published_baseline, DABIRI_PUBLISHED_ACCURACY);
        assert_eq!(r.split_accuracies.len(), 4);
    }

    #[test]
    fn dabiri_random_cv_scores_above_endo_user_split() {
        // Random CV on the 5-class task is the easier protocol; its mean
        // accuracy should exceed the user-split 7-class protocol — the
        // same asymmetry the paper's two comparisons show (88.5 vs 69.5).
        let config = tiny_config();
        let endo = run_endo_comparison(&config);
        let dabiri = run_dabiri_comparison(&config);
        assert!(
            dabiri.mean_accuracy > endo.mean_accuracy,
            "dabiri {} vs endo {}",
            dabiri.mean_accuracy,
            endo.mean_accuracy
        );
    }

    #[test]
    fn selected_features_include_a_speed_statistic() {
        let r = run_dabiri_comparison(&tiny_config());
        assert!(
            r.selected_features.iter().any(|n| n.starts_with("speed")),
            "{:?}",
            r.selected_features
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_endo_comparison(&tiny_config());
        let b = run_endo_comparison(&tiny_config());
        assert_eq!(a, b);
    }
}
