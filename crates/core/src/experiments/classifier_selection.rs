//! Experiment 1 (§4.1, Figure 2): which classifier is best?
//!
//! Six classifiers are trained under random cross-validation on the
//! [Dabiri] label set ({walk, bike, bus, driving, train}, no noise
//! removal, all 70 features) and compared by mean accuracy; Wilcoxon
//! signed-rank tests over the fold accuracies compare the best classifier
//! against every other, reproducing the paper's finding that the random
//! forest leads, XGBoost is statistically indistinguishable from it, and
//! the SVM trails.

use crate::experiments::DataConfig;
use crate::pipeline::{Pipeline, PipelineConfig};
use serde::{Deserialize, Serialize};
use traj_geo::LabelScheme;
use traj_ml::cv::{cross_validate, KFold};
use traj_ml::stats_tests::{
    friedman_test, nemenyi_critical_difference, wilcoxon_signed_rank, Alternative, FriedmanResult,
    WilcoxonResult,
};
use traj_ml::ClassifierKind;

/// Configuration of the classifier-selection experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifierSelectionConfig {
    /// Synthetic cohort.
    pub data: DataConfig,
    /// Random-CV fold count (10 gives the Wilcoxon tests reasonable
    /// power; the paper's figure aggregates per-fold accuracies).
    pub folds: usize,
    /// Experiment seed (CV shuffling and per-fold model seeds).
    pub seed: u64,
    /// Classifiers to compare; defaults to the paper's six.
    pub classifiers: Vec<ClassifierKind>,
}

impl Default for ClassifierSelectionConfig {
    fn default() -> Self {
        ClassifierSelectionConfig {
            data: DataConfig::full(),
            folds: 10,
            seed: 0,
            classifiers: ClassifierKind::PAPER_SIX.to_vec(),
        }
    }
}

/// Per-classifier outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifierScore {
    /// The classifier.
    pub kind: ClassifierKind,
    /// Accuracy per fold.
    pub fold_accuracies: Vec<f64>,
    /// Mean accuracy over folds (Figure 2's bar).
    pub mean_accuracy: f64,
    /// Mean weighted F1 over folds.
    pub mean_f1_weighted: f64,
    /// Two-sided Wilcoxon signed-rank test of the best classifier's fold
    /// accuracies against this classifier's (absent for the best itself,
    /// or when every fold ties).
    pub wilcoxon_vs_best: Option<WilcoxonResult>,
}

/// Outcome of the experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifierSelectionResult {
    /// Per-classifier scores, sorted by descending mean accuracy.
    pub scores: Vec<ClassifierScore>,
    /// The winner.
    pub best: ClassifierKind,
    /// Dataset size the experiment ran on.
    pub n_samples: usize,
    /// Friedman omnibus test over the fold-accuracy blocks — do the
    /// classifiers differ at all? (Demšar's recommended companion to the
    /// pairwise Wilcoxon tests; absent with fewer than two classifiers.)
    pub friedman: Option<FriedmanResult>,
    /// Nemenyi critical difference at α = 0.05 for the mean ranks in
    /// `friedman` (two classifiers differ when their mean ranks differ by
    /// more than this).
    pub nemenyi_cd: Option<f64>,
}

/// Runs the experiment.
pub fn run_classifier_selection(config: &ClassifierSelectionConfig) -> ClassifierSelectionResult {
    assert!(
        !config.classifiers.is_empty(),
        "need at least one classifier"
    );
    let synth = config.data.generate();
    let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Dabiri));
    let dataset = pipeline.dataset_from_segments(&synth.segments);
    let splitter = KFold::new(config.folds, config.seed);

    let mut raw: Vec<(ClassifierKind, Vec<f64>, f64)> = config
        .classifiers
        .iter()
        .map(|&kind| {
            let factory = move |seed: u64| kind.build(seed);
            let scores = cross_validate(&factory, &dataset, &splitter, config.seed)
                .expect("experiment fold counts fit the generated cohort");
            let accs: Vec<f64> = scores.iter().map(|s| s.accuracy).collect();
            let f1 = traj_ml::cv::mean_f1_weighted(&scores);
            (kind, accs, f1)
        })
        .collect();

    raw.sort_by(|a, b| {
        let ma = mean(&a.1);
        let mb = mean(&b.1);
        mb.partial_cmp(&ma).expect("finite accuracies")
    });

    let best_kind = raw[0].0;
    let best_accs = raw[0].1.clone();

    // Omnibus test across all classifiers (fold accuracies as blocks).
    let (friedman, nemenyi_cd) = if raw.len() >= 2 && raw.len() <= 10 {
        let measurements: Vec<Vec<f64>> = raw.iter().map(|(_, accs, _)| accs.clone()).collect();
        let fr = friedman_test(&measurements);
        let cd = nemenyi_critical_difference(raw.len(), config.folds);
        (Some(fr), Some(cd))
    } else {
        (None, None)
    };
    let scores = raw
        .into_iter()
        .map(|(kind, accs, f1)| {
            // Skip the test for the best itself, and when every fold ties
            // (the signed-rank test is undefined on all-zero differences).
            let identical = best_accs.iter().zip(&accs).all(|(a, b)| a == b);
            let wilcoxon_vs_best = (kind != best_kind && !identical)
                .then(|| wilcoxon_signed_rank(&best_accs, &accs, Alternative::TwoSided));
            ClassifierScore {
                kind,
                mean_accuracy: mean(&accs),
                mean_f1_weighted: f1,
                fold_accuracies: accs,
                wilcoxon_vs_best,
            }
        })
        .collect();

    ClassifierSelectionResult {
        scores,
        best: best_kind,
        n_samples: dataset.len(),
        friedman,
        nemenyi_cd,
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ClassifierSelectionConfig {
        ClassifierSelectionConfig {
            data: DataConfig::small(),
            folds: 3,
            seed: 1,
            classifiers: vec![
                ClassifierKind::RandomForest,
                ClassifierKind::DecisionTree,
                ClassifierKind::Svm,
            ],
        }
    }

    #[test]
    fn runs_and_orders_by_accuracy() {
        let result = run_classifier_selection(&tiny_config());
        assert_eq!(result.scores.len(), 3);
        assert!(result
            .scores
            .windows(2)
            .all(|w| w[0].mean_accuracy >= w[1].mean_accuracy));
        assert_eq!(result.best, result.scores[0].kind);
        assert!(result.scores[0].wilcoxon_vs_best.is_none());
        assert!(result.n_samples > 50);
        for s in &result.scores {
            assert_eq!(s.fold_accuracies.len(), 3);
            assert!((0.0..=1.0).contains(&s.mean_accuracy));
        }
    }

    #[test]
    fn tree_ensemble_beats_linear_svm() {
        let result = run_classifier_selection(&tiny_config());
        let acc = |k: ClassifierKind| {
            result
                .scores
                .iter()
                .find(|s| s.kind == k)
                .map(|s| s.mean_accuracy)
                .unwrap()
        };
        assert!(
            acc(ClassifierKind::RandomForest) > acc(ClassifierKind::Svm),
            "rf {} vs svm {}",
            acc(ClassifierKind::RandomForest),
            acc(ClassifierKind::Svm)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_classifier_selection(&tiny_config());
        let b = run_classifier_selection(&tiny_config());
        assert_eq!(a, b);
    }

    #[test]
    fn friedman_omnibus_accompanies_the_comparison() {
        let result = run_classifier_selection(&tiny_config());
        let fr = result.friedman.expect("three classifiers → omnibus runs");
        assert_eq!(fr.df, 2);
        assert!((0.0..=1.0).contains(&fr.p_value));
        assert_eq!(fr.mean_ranks.len(), 3);
        let cd = result.nemenyi_cd.expect("CD available");
        assert!(cd > 0.0);
        // RF vs SVM is a big gap; it should exceed the CD on ranks.
        // (mean_ranks are ordered like result.scores.)
        let spread = fr
            .mean_ranks
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
            - fr.mean_ranks.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one classifier")]
    fn empty_roster_panics() {
        let mut config = tiny_config();
        config.classifiers.clear();
        let _ = run_classifier_selection(&config);
    }
}
