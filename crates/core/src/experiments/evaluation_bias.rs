//! Evaluation-strategy bias — extending §4.4 with ground truth.
//!
//! The paper shows random CV scores *higher* than user-oriented CV and
//! argues the random numbers are optimistic, but on real data the true
//! generalisation accuracy is unobservable, so "optimistic" remains an
//! inference. The synthetic substrate removes that limit: we can draw a
//! **fresh cohort of users** from the same population, measure the
//! deployed model's true accuracy on them, and report each evaluation
//! strategy's *bias* (estimate − truth).
//!
//! §5 names this the future work ("deeply investigate the effects of
//! cross-validation and other strategies like holdout"); this experiment
//! runs it:
//!
//! * random K-fold CV (the field's convention),
//! * user-oriented (group) K-fold CV (the paper's recommendation),
//! * a single random 80/20 holdout,
//! * a single user-disjoint 80/20 holdout.

use crate::experiments::DataConfig;
use crate::pipeline::{Pipeline, PipelineConfig};
use serde::{Deserialize, Serialize};
use traj_geo::LabelScheme;
use traj_ml::cv::{
    cross_validate, mean_accuracy, train_test_split, GroupKFold, GroupShuffleSplit, KFold, Splitter,
};
use traj_ml::forest::{ForestConfig, RandomForest};
use traj_ml::{Classifier, Dataset};

/// Configuration of the evaluation-bias experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvaluationBiasConfig {
    /// The development cohort every strategy estimates from.
    pub data: DataConfig,
    /// Users in the fresh ground-truth cohort (drawn with a different
    /// seed ⇒ disjoint user traits).
    pub fresh_users: usize,
    /// Folds of the CV strategies.
    pub folds: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Forest size.
    pub n_estimators: usize,
}

impl Default for EvaluationBiasConfig {
    fn default() -> Self {
        EvaluationBiasConfig {
            data: DataConfig::full(),
            fresh_users: 30,
            folds: 5,
            seed: 0,
            n_estimators: 50,
        }
    }
}

/// One strategy's estimate and its bias.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyEstimate {
    /// Strategy name.
    pub strategy: String,
    /// The accuracy the strategy reports.
    pub estimate: f64,
    /// `estimate − true_accuracy` (positive = optimistic).
    pub bias: f64,
}

/// Outcome of the experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationBiasResult {
    /// True accuracy: the model trained on the full development cohort,
    /// evaluated on the fresh cohort of unseen users.
    pub true_accuracy: f64,
    /// Each strategy's estimate and bias.
    pub estimates: Vec<StrategyEstimate>,
}

/// Runs the experiment.
pub fn run_evaluation_bias(config: &EvaluationBiasConfig) -> EvaluationBiasResult {
    let pipeline = Pipeline::new(PipelineConfig::paper(LabelScheme::Endo));

    // Development cohort.
    let dev_cohort = config.data.generate();
    let dev = pipeline.dataset_from_segments(&dev_cohort.segments);

    // Fresh cohort: same population, different users (different seed).
    let fresh_cohort = DataConfig {
        n_users: config.fresh_users,
        seed: config.data.seed.wrapping_add(0x5EED_F00D),
        ..config.data
    }
    .generate();
    let fresh = pipeline.dataset_from_segments(&fresh_cohort.segments);

    // Ground truth: train on all development data, test on fresh users.
    let estimators = config.n_estimators;
    let factory = move |seed: u64| -> Box<dyn Classifier> {
        Box::new(RandomForest::new(ForestConfig {
            n_estimators: estimators,
            seed,
            ..ForestConfig::default()
        }))
    };
    let mut deployed = factory(config.seed);
    deployed.fit(&dev);
    let true_accuracy = traj_ml::metrics::accuracy(&fresh.y, &deployed.predict(&fresh));

    let mut estimates = Vec::new();
    let mut push = |name: &str, estimate: f64| {
        estimates.push(StrategyEstimate {
            strategy: name.to_owned(),
            estimate,
            bias: estimate - true_accuracy,
        });
    };

    // Strategy 1: random K-fold CV.
    let scores = cross_validate(
        &factory,
        &dev,
        &KFold::new(config.folds, config.seed),
        config.seed,
    )
    .expect("experiment fold counts fit the generated cohort");
    push("random k-fold CV", mean_accuracy(&scores));

    // Strategy 2: user-oriented (group) K-fold CV.
    let scores = cross_validate(
        &factory,
        &dev,
        &GroupKFold {
            n_splits: config.folds,
        },
        config.seed,
    )
    .expect("experiment fold counts fit the generated cohort");
    push("user-oriented k-fold CV", mean_accuracy(&scores));

    // Strategy 3: one random 80/20 holdout.
    let (train_idx, test_idx) = train_test_split(&dev, 0.2, config.seed);
    push(
        "random 80/20 holdout",
        holdout_accuracy(&factory, &dev, &train_idx, &test_idx, config.seed),
    );

    // Strategy 4: one user-disjoint 80/20 holdout.
    let fold = GroupShuffleSplit {
        n_splits: 1,
        test_fraction: 0.2,
        seed: config.seed,
    }
    .split(&dev)
    .expect("generated cohort has enough users for a group split")
    .next()
    .expect("one split requested");
    push(
        "user-disjoint 80/20 holdout",
        holdout_accuracy(&factory, &dev, &fold.train, &fold.test, config.seed),
    );

    EvaluationBiasResult {
        true_accuracy,
        estimates,
    }
}

fn holdout_accuracy(
    factory: &dyn Fn(u64) -> Box<dyn Classifier>,
    data: &Dataset,
    train_idx: &[usize],
    test_idx: &[usize],
    seed: u64,
) -> f64 {
    let train = data.subset(train_idx);
    let test = data.subset(test_idx);
    let mut model = factory(seed);
    model.fit(&train);
    traj_ml::metrics::accuracy(&test.y, &model.predict(&test))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> EvaluationBiasConfig {
        EvaluationBiasConfig {
            data: DataConfig {
                n_users: 12,
                segments_per_user: (12, 18),
                seed: 42,
                heterogeneity: 1.0,
            },
            fresh_users: 8,
            folds: 3,
            seed: 1,
            n_estimators: 20,
        }
    }

    #[test]
    fn produces_all_four_strategies() {
        let r = run_evaluation_bias(&tiny_config());
        assert_eq!(r.estimates.len(), 4);
        assert!((0.0..=1.0).contains(&r.true_accuracy));
        for e in &r.estimates {
            assert!((0.0..=1.0).contains(&e.estimate), "{e:?}");
            assert!((e.bias - (e.estimate - r.true_accuracy)).abs() < 1e-12);
        }
    }

    #[test]
    fn random_cv_is_more_optimistic_than_user_cv() {
        // The §4.4 claim in bias terms: the random estimate exceeds the
        // user-oriented estimate (both measured against the same truth).
        let r = run_evaluation_bias(&tiny_config());
        let bias_of = |name: &str| {
            r.estimates
                .iter()
                .find(|e| e.strategy.starts_with(name))
                .map(|e| e.bias)
                .unwrap()
        };
        assert!(
            bias_of("random k-fold") > bias_of("user-oriented"),
            "{:?}",
            r.estimates
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_evaluation_bias(&tiny_config());
        let b = run_evaluation_bias(&tiny_config());
        assert_eq!(a, b);
    }
}
