//! Experiment 2 (§4.2, Figure 3): which features matter?
//!
//! Two selection engines are run under the paper's protocol — the [Endo]
//! label set, user-oriented cross-validation, random-forest evaluator:
//!
//! * **Importance** (Fig. 3a): rank all 70 features by RF impurity
//!   importance, append them in rank order, cross-validating after each
//!   append.
//! * **Wrapper** (Fig. 3b): sequential forward search maximising CV
//!   accuracy.
//! * **Mutual information**: the filter baseline (selection-method
//!   ablation, not in the paper's figures).
//!
//! The paper's findings this reproduces: the curve plateaus around 20
//! features, and a high speed percentile (`speed_p90`) ranks first under
//! both methods.

use crate::experiments::DataConfig;
use crate::pipeline::{Pipeline, PipelineConfig};
use serde::{Deserialize, Serialize};
use traj_geo::LabelScheme;
use traj_ml::cv::GroupKFold;
use traj_ml::forest::{ForestConfig, RandomForest};
use traj_ml::Classifier;
use traj_select::wrapper::ForwardSelectionConfig;
use traj_select::SelectionCurve;

/// The selection engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionMethod {
    /// RF-importance ranking with incremental appending (Fig. 3a).
    Importance,
    /// Sequential forward wrapper search (Fig. 3b).
    Wrapper,
    /// Mutual-information filter ranking with incremental appending.
    MutualInfo,
}

/// Configuration of the feature-selection experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureSelectionConfig {
    /// Synthetic cohort.
    pub data: DataConfig,
    /// Selection engine.
    pub method: SelectionMethod,
    /// User-oriented CV folds.
    pub folds: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Trees of the evaluating random forest. Selection is quadratic in
    /// evaluations, so this is deliberately smaller than the final
    /// model's 50.
    pub forest_estimators: usize,
    /// How many features the curve explores (the paper plots all 70; the
    /// wrapper is quadratic, so budget what you need).
    pub max_features: usize,
    /// Restrict the search to these feature names (`None` = all 70).
    pub candidate_features: Option<Vec<String>>,
}

impl Default for FeatureSelectionConfig {
    fn default() -> Self {
        FeatureSelectionConfig {
            data: DataConfig::full(),
            method: SelectionMethod::Importance,
            folds: 5,
            seed: 0,
            forest_estimators: 20,
            max_features: 70,
            candidate_features: None,
        }
    }
}

/// Outcome of the experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureSelectionResult {
    /// Method that produced the curve.
    pub method: SelectionMethod,
    /// The selection curve (accuracy after each appended feature).
    pub curve: SelectionCurve,
    /// Names of the top-20 subset (or fewer when the curve is shorter) —
    /// the paper's step-5 output.
    pub top20: Vec<String>,
    /// The first-ranked feature (the paper: `speed_p90`).
    pub best_feature: String,
}

/// Runs the experiment.
pub fn run_feature_selection(config: &FeatureSelectionConfig) -> FeatureSelectionResult {
    let synth = config.data.generate();
    let pipe_config = match &config.candidate_features {
        Some(names) => PipelineConfig::builder(LabelScheme::Endo)
            .select_features(names.iter().cloned())
            .build(),
        None => PipelineConfig::paper(LabelScheme::Endo),
    };
    let dataset = Pipeline::new(pipe_config).dataset_from_segments(&synth.segments);

    let splitter = GroupKFold {
        n_splits: config.folds,
    };
    let estimators = config.forest_estimators;
    let factory = move |seed: u64| -> Box<dyn Classifier> {
        Box::new(RandomForest::new(ForestConfig {
            n_estimators: estimators,
            seed,
            ..ForestConfig::default()
        }))
    };

    let curve = match config.method {
        SelectionMethod::Wrapper => traj_select::forward_select(
            &dataset,
            &factory,
            &splitter,
            &ForwardSelectionConfig {
                max_features: config.max_features,
                seed: config.seed,
                patience: None,
            },
        )
        .expect("experiment fold counts fit the generated cohort"),
        SelectionMethod::Importance => {
            let ranked = traj_select::rf_importance_ranking(
                &dataset,
                config.forest_estimators.max(50),
                config.seed,
            );
            let order: Vec<usize> = ranked
                .iter()
                .take(config.max_features)
                .map(|r| r.0)
                .collect();
            traj_select::incremental_curve(&dataset, &order, &factory, &splitter, config.seed)
                .expect("experiment fold counts fit the generated cohort")
        }
        SelectionMethod::MutualInfo => {
            let ranked = traj_select::mi_ranking(&dataset, 10);
            let order: Vec<usize> = ranked
                .iter()
                .take(config.max_features)
                .map(|r| r.0)
                .collect();
            traj_select::incremental_curve(&dataset, &order, &factory, &splitter, config.seed)
                .expect("experiment fold counts fit the generated cohort")
        }
    };

    let top20: Vec<String> = curve
        .steps
        .iter()
        .take(20)
        .map(|s| s.feature_name.clone())
        .collect();
    let best_feature = curve
        .steps
        .first()
        .map(|s| s.feature_name.clone())
        .unwrap_or_default();

    FeatureSelectionResult {
        method: config.method,
        curve,
        top20,
        best_feature,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(method: SelectionMethod) -> FeatureSelectionConfig {
        FeatureSelectionConfig {
            data: DataConfig::small(),
            method,
            folds: 3,
            seed: 1,
            forest_estimators: 5,
            max_features: 4,
            candidate_features: Some(vec![
                "speed_p90".into(),
                "speed_mean".into(),
                "bearing_std".into(),
                "jerk_p10".into(),
                "distance_median".into(),
                "bearing_rate_p75".into(),
            ]),
        }
    }

    #[test]
    fn importance_curve_runs() {
        let result = run_feature_selection(&tiny_config(SelectionMethod::Importance));
        assert_eq!(result.curve.steps.len(), 4);
        assert!(!result.best_feature.is_empty());
        assert!(result.top20.len() <= 20);
        for s in &result.curve.steps {
            assert!((0.0..=1.0).contains(&s.accuracy));
        }
    }

    #[test]
    fn wrapper_curve_runs() {
        let mut config = tiny_config(SelectionMethod::Wrapper);
        config.max_features = 2;
        let result = run_feature_selection(&config);
        assert_eq!(result.curve.steps.len(), 2);
        assert_eq!(result.method, SelectionMethod::Wrapper);
    }

    #[test]
    fn mutual_info_curve_runs() {
        let result = run_feature_selection(&tiny_config(SelectionMethod::MutualInfo));
        assert_eq!(result.curve.steps.len(), 4);
    }

    #[test]
    fn speed_features_dominate_the_tiny_candidate_set() {
        // Among the six candidates, a speed statistic should rank first —
        // the paper's core §5 claim in miniature.
        let result = run_feature_selection(&tiny_config(SelectionMethod::Importance));
        assert!(
            result.best_feature.starts_with("speed"),
            "best = {}",
            result.best_feature
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_feature_selection(&tiny_config(SelectionMethod::Importance));
        let b = run_feature_selection(&tiny_config(SelectionMethod::Importance));
        assert_eq!(a, b);
    }
}
