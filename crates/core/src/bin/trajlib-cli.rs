//! `trajlib-cli` — the framework as a command-line tool.
//!
//! ```text
//! trajlib-cli synth   --users 8 --seed 42 --out ./cohort        # GeoLife-layout export
//! trajlib-cli extract --geolife ./cohort --scheme dabiri --out features.csv [--extended]
//! trajlib-cli train   --csv features.csv --model rf --out model.json [--seed 7]
//! trajlib-cli predict --csv features.csv --model-file model.json
//! trajlib-cli cv      --csv features.csv --model rf --folds 5 [--grouped]
//! trajlib-cli train-artifact --out rf.json [--geolife DIR | --users 8] --model rf [--top-k 20]
//! trajlib-cli serve   --artifacts DIR [--addr 127.0.0.1:8080] [--workers N]
//! trajlib-cli cluster --shards 127.0.0.1:8080,127.0.0.1:8081 [--addr 127.0.0.1:8090]
//! ```
//!
//! `extract` consumes either a real GeoLife download or the output of
//! `synth`; `train`/`predict`/`cv` work on the CSV feature tables, so the
//! three stages can run on different machines.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;
use traj_cluster::{ClusterConfig, ClusterRouter, HttpBackend};
use traj_serve::artifact::{ModelArtifact, TrainSpec};
use traj_serve::batch::SchedulerPolicy;
use traj_serve::featurize::ServeFeatureSet;
use traj_serve::registry::ModelRegistry;
use traj_serve::server::{serve, DurabilityConfig, ServerConfig};
use trajlib::geolife::loader::LoaderOptions;
use trajlib::ml::metrics::ClassificationReport;
use trajlib::ml::ErasedModel;
use trajlib::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `trajlib-cli help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("missing subcommand".to_owned());
    };
    let opts = parse_options(&args[1..])?;
    match command.as_str() {
        "synth" => cmd_synth(&opts),
        "extract" => cmd_extract(&opts),
        "train" => cmd_train(&opts),
        "predict" => cmd_predict(&opts),
        "cv" => cmd_cv(&opts),
        "train-artifact" => cmd_train_artifact(&opts),
        "serve" => cmd_serve(&opts),
        "cluster" => cmd_cluster(&opts),
        "help" | "--help" | "-h" => {
            println!(
                "trajlib-cli — transportation-mode prediction (Etemad et al., 2019)\n\n\
                 subcommands:\n\
                 \x20 synth   --users N [--seed S] --out DIR\n\
                 \x20 extract --geolife DIR [--scheme raw|dabiri|endo] [--extended] --out FILE.csv\n\
                 \x20 train   --csv FILE --model rf|xgb|tree|ada|svm|mlp|knn [--seed S] --out MODEL.json\n\
                 \x20 predict --csv FILE --model-file MODEL.json\n\
                 \x20 cv      --csv FILE --model KIND [--folds K] [--grouped] [--seed S]\n\
                 \x20 train-artifact --out FILE.json [--geolife DIR | --users N [--synth-seed S]]\n\
                 \x20         [--name NAME] [--version V] [--model KIND] [--scheme raw|dabiri|endo]\n\
                 \x20         [--top-k K] [--extended] [--seed S]\n\
                 \x20 serve   (--artifacts DIR | --artifact FILE.json) [--addr HOST:PORT]\n\
                 \x20         [--workers N] [--idle-timeout-s SECS]\n\
                 \x20         [--scheduler adaptive|fixed] [--slo-ms MS]\n\
                 \x20         [--queue-cap N] [--batch-max N] [--batch-delay-ms MS]\n\
                 \x20         [--ingest-gap-s SECS] [--ingest-min-points N] [--ingest-exact-cap N]\n\
                 \x20         [--ingest-max-sessions N] [--ingest-idle-s SECS]\n\
                 \x20         [--wal-dir DIR] [--wal-fsync always|interval|onclose]\n\
                 \x20         [--wal-fsync-ms MS] [--wal-segment-bytes N] [--snapshot-interval-s SECS]\n\
                 \x20 cluster --shards HOST:PORT,HOST:PORT[,...] [--addr HOST:PORT]\n\
                 \x20         [--vnodes N] [--retries N] [--backoff-ms MS]\n\
                 \x20         [--mirror-every K] [--health-interval-ms MS]"
            );
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

type Options = HashMap<String, String>;

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = HashMap::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let Some(key) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument {arg:?}"));
        };
        // Boolean flags take no value.
        if matches!(key, "extended" | "grouped") {
            opts.insert(key.to_owned(), "true".to_owned());
            continue;
        }
        let value = iter
            .next()
            .ok_or_else(|| format!("--{key} requires a value"))?;
        opts.insert(key.to_owned(), value.clone());
    }
    Ok(opts)
}

fn required<'a>(opts: &'a Options, key: &str) -> Result<&'a str, String> {
    opts.get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required option --{key}"))
}

fn parsed<T: std::str::FromStr>(opts: &Options, key: &str, default: T) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid --{key} value {v:?}")),
    }
}

fn scheme_of(opts: &Options) -> Result<LabelScheme, String> {
    match opts.get("scheme").map(String::as_str) {
        None | Some("dabiri") => Ok(LabelScheme::Dabiri),
        Some("endo") => Ok(LabelScheme::Endo),
        Some("raw") => Ok(LabelScheme::Raw),
        Some(other) => Err(format!("unknown scheme {other:?}; use raw|dabiri|endo")),
    }
}

fn cmd_synth(opts: &Options) -> Result<(), String> {
    let users: usize = parsed(opts, "users", 8)?;
    let seed: u64 = parsed(opts, "seed", 42)?;
    let out = PathBuf::from(required(opts, "out")?);
    let synth = SynthDataset::generate(&SynthConfig {
        n_users: users,
        segments_per_user: (10, 20),
        seed,
        ..SynthConfig::default()
    });
    trajlib::geolife::write_geolife_layout(&synth.to_raw_trajectories(2), &out)
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "wrote {} users / {} segments in GeoLife layout under {}",
        users,
        synth.segments.len(),
        out.display()
    );
    Ok(())
}

fn cmd_extract(opts: &Options) -> Result<(), String> {
    let dir = PathBuf::from(required(opts, "geolife")?);
    let out = PathBuf::from(required(opts, "out")?);
    let scheme = scheme_of(opts)?;
    let trajectories = trajlib::geolife::load_geolife_directory(&dir, &LoaderOptions::default())
        .map_err(|e| format!("loading {}: {e}", dir.display()))?;
    let mut builder = PipelineConfig::builder(scheme);
    if opts.contains_key("extended") {
        builder = builder.feature_set(FeatureSet::Extended80);
    }
    let config = builder.build();
    let dataset = Pipeline::new(config).dataset_from_raw(&trajectories);
    std::fs::write(&out, dataset.to_csv())
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "extracted {} samples × {} features ({} users) → {}",
        dataset.len(),
        dataset.n_features(),
        dataset.distinct_groups().len(),
        out.display()
    );
    Ok(())
}

fn load_csv(path: &Path) -> Result<Dataset, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    Dataset::from_csv(&text)
}

fn cmd_train(opts: &Options) -> Result<(), String> {
    let dataset = load_csv(Path::new(required(opts, "csv")?))?;
    let seed: u64 = parsed(opts, "seed", 0)?;
    let out = PathBuf::from(required(opts, "out")?);
    let mut model = ErasedModel::from_cli_name(required(opts, "model")?, seed)?;
    model.fit(&dataset);
    let train_acc = accuracy(&dataset.y, &model.predict(&dataset));
    let json = serde_json::to_string(&model).map_err(|e| e.to_string())?;
    std::fs::write(&out, json).map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "trained on {} samples (training accuracy {:.3}) → {}",
        dataset.len(),
        train_acc,
        out.display()
    );
    Ok(())
}

fn cmd_predict(opts: &Options) -> Result<(), String> {
    let dataset = load_csv(Path::new(required(opts, "csv")?))?;
    let model_path = Path::new(required(opts, "model-file")?);
    let json = std::fs::read_to_string(model_path)
        .map_err(|e| format!("reading {}: {e}", model_path.display()))?;
    let model: ErasedModel = serde_json::from_str(&json).map_err(|e| e.to_string())?;
    let pred = model.predict(&dataset);
    let report = ClassificationReport::compute(&dataset.y, &pred, dataset.n_classes);
    println!(
        "accuracy {:.4}  macro-F1 {:.4}  weighted-F1 {:.4}  ({} samples)",
        report.accuracy,
        report.f1_macro(),
        report.f1_weighted(),
        dataset.len()
    );
    Ok(())
}

fn cmd_cv(opts: &Options) -> Result<(), String> {
    let dataset = load_csv(Path::new(required(opts, "csv")?))?;
    let folds: usize = parsed(opts, "folds", 5)?;
    let seed: u64 = parsed(opts, "seed", 0)?;
    let kind = required(opts, "model")?.to_owned();
    // Validate the model kind once, eagerly.
    ErasedModel::from_cli_name(&kind, 0)?;
    let factory = move |s: u64| -> Box<dyn Classifier> {
        Box::new(ErasedModel::from_cli_name(&kind, s).expect("kind validated above"))
    };

    let scores = if opts.contains_key("grouped") {
        cross_validate(&factory, &dataset, &GroupKFold { n_splits: folds }, seed)
    } else {
        cross_validate(&factory, &dataset, &KFold::new(folds, seed), seed)
    }
    .map_err(|e| format!("cross-validation: {e}"))?;
    for (i, s) in scores.iter().enumerate() {
        println!(
            "fold {i}: accuracy {:.4}  weighted-F1 {:.4}",
            s.accuracy, s.f1_weighted
        );
    }
    println!(
        "mean accuracy {:.4}  mean weighted-F1 {:.4}",
        trajlib::ml::cv::mean_accuracy(&scores),
        trajlib::ml::cv::mean_f1_weighted(&scores)
    );
    Ok(())
}

/// Collects labeled segments either from a GeoLife-layout directory
/// (paper segmentation) or from the synthetic generator.
fn load_segments(opts: &Options) -> Result<Vec<Segment>, String> {
    if let Some(dir) = opts.get("geolife") {
        let dir = PathBuf::from(dir);
        let trajectories =
            trajlib::geolife::load_geolife_directory(&dir, &LoaderOptions::default())
                .map_err(|e| format!("loading {}: {e}", dir.display()))?;
        Ok(trajlib::geo::segmentation::segment_all(
            &trajectories,
            &SegmentationConfig::paper(),
        ))
    } else {
        let users: usize = parsed(opts, "users", 8)?;
        let synth_seed: u64 = parsed(opts, "synth-seed", 42)?;
        Ok(SynthDataset::generate(&SynthConfig {
            n_users: users,
            seed: synth_seed,
            ..SynthConfig::default()
        })
        .segments)
    }
}

fn cmd_train_artifact(opts: &Options) -> Result<(), String> {
    let out = PathBuf::from(required(opts, "out")?);
    let model_name = opts.get("model").map(String::as_str).unwrap_or("rf");
    let kind = ErasedModel::from_cli_name(model_name, 0)?.kind();

    let mut spec = TrainSpec::paper_default(
        opts.get("name")
            .cloned()
            .unwrap_or_else(|| model_name.to_owned()),
    );
    spec.version = parsed(opts, "version", 1)?;
    spec.scheme = scheme_of(opts)?;
    spec.kind = kind;
    spec.seed = parsed(opts, "seed", 0)?;
    if opts.contains_key("extended") {
        spec.feature_set = ServeFeatureSet::Extended80;
    }
    spec.top_k = match opts.get("top-k") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("invalid --top-k value {v:?}"))?,
        ),
    };

    let segments = load_segments(opts)?;
    let artifact = ModelArtifact::train(&spec, &segments)?;
    let train_acc = artifact.training_accuracy(&segments);
    artifact.save(&out)?;
    println!(
        "trained artifact {}@v{} ({:?}, {} features, {} segments, training accuracy {:.3}) -> {}",
        artifact.name,
        artifact.version,
        spec.kind,
        artifact.feature_names.len(),
        segments.len(),
        train_acc,
        out.display()
    );
    Ok(())
}

fn cmd_serve(opts: &Options) -> Result<(), String> {
    let mut registry = ModelRegistry::new();
    match (opts.get("artifacts"), opts.get("artifact")) {
        (Some(dir), _) => {
            let n = registry.load_dir(Path::new(dir))?;
            if n == 0 {
                return Err(format!("no *.json artifacts found under {dir}"));
            }
        }
        (None, Some(file)) => registry.load_file(Path::new(file))?,
        (None, None) => return Err("serve needs --artifacts DIR or --artifact FILE".to_owned()),
    }

    let mut config = ServerConfig::default();
    config.workers = parsed(opts, "workers", config.workers)?;
    // Idle/slow-client deadline of the connection reactor. Soak runs
    // that park idle keep-alive connections (loadgen --idle) need this
    // above their duration, or the reaper closes the herd mid-run.
    config.read_timeout = Duration::from_secs(parsed(
        opts,
        "idle-timeout-s",
        config.read_timeout.as_secs(),
    )?);
    // Scheduler: adaptive (deadline-aware, the default) or the fixed
    // size-or-delay baseline. Passing --batch-delay-ms implies fixed,
    // since only the fixed policy has a delay knob.
    let max_batch = parsed(opts, "batch-max", config.batch.policy.max_batch())?;
    let has_delay = opts.contains_key("batch-delay-ms");
    let fixed = match opts.get("scheduler").map(String::as_str) {
        Some("fixed") => true,
        Some("adaptive") if has_delay => {
            return Err("--batch-delay-ms only applies to --scheduler fixed".to_owned())
        }
        Some("adaptive") => false,
        None => has_delay,
        Some(other) => return Err(format!("unknown --scheduler {other:?}; use fixed|adaptive")),
    };
    config.batch.policy = if fixed {
        SchedulerPolicy::Fixed {
            max_batch,
            max_delay: Duration::from_millis(parsed(opts, "batch-delay-ms", 2)?),
        }
    } else {
        SchedulerPolicy::Adaptive { max_batch }
    };
    config.batch.slo =
        Duration::from_millis(parsed(opts, "slo-ms", config.batch.slo.as_millis() as u64)?);
    config.batch.queue_cap = parsed(opts, "queue-cap", config.batch.queue_cap)?;
    let (scheduler_name, slo_ms, queue_cap) = (
        config.batch.policy.as_str(),
        config.batch.slo.as_millis(),
        config.batch.queue_cap,
    );
    config.stream.max_gap_s = parsed(opts, "ingest-gap-s", config.stream.max_gap_s)?;
    config.stream.min_points = parsed(opts, "ingest-min-points", config.stream.min_points)?;
    config.stream.exact_cap = parsed(opts, "ingest-exact-cap", config.stream.exact_cap)?;
    config.stream.max_sessions = parsed(opts, "ingest-max-sessions", config.stream.max_sessions)?;
    config.stream.idle_timeout_s = parsed(opts, "ingest-idle-s", config.stream.idle_timeout_s)?;

    if let Some(dir) = opts.get("wal-dir") {
        let mut durability = DurabilityConfig::new(dir);
        let fsync_ms: u64 = parsed(opts, "wal-fsync-ms", 50)?;
        if let Some(name) = opts.get("wal-fsync") {
            durability.fsync =
                traj_serve::server::FsyncPolicy::parse(name, Duration::from_millis(fsync_ms))
                    .ok_or_else(|| {
                        format!("unknown --wal-fsync {name:?}; use always|interval|onclose")
                    })?;
        } else if opts.contains_key("wal-fsync-ms") {
            durability.fsync =
                traj_serve::server::FsyncPolicy::Interval(Duration::from_millis(fsync_ms));
        }
        durability.segment_bytes = parsed(opts, "wal-segment-bytes", durability.segment_bytes)?;
        durability.snapshot_interval = Duration::from_secs(parsed(
            opts,
            "snapshot-interval-s",
            durability.snapshot_interval.as_secs(),
        )?);
        config.durability = Some(durability);
    } else if opts
        .keys()
        .any(|k| k.starts_with("wal-") || k == "snapshot-interval-s")
    {
        return Err(
            "--wal-fsync/--wal-fsync-ms/--wal-segment-bytes/--snapshot-interval-s \
                    require --wal-dir"
                .to_owned(),
        );
    }

    let addr = opts
        .get("addr")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:8080");
    let names = registry.names();
    let durability_line = config.durability.as_ref().map(|d| {
        format!(
            "durable ingest: {} (fsync {}, {} MiB segments, snapshot every {}s)",
            d.dir.display(),
            d.fsync.as_str(),
            d.segment_bytes / (1024 * 1024),
            d.snapshot_interval.as_secs()
        )
    });
    let handle = serve(addr, registry, config)?;
    println!(
        "serving {} model(s) [{}] on http://{} ({} scheduler, slo {}ms, queue cap {})",
        names.len(),
        names.join(", "),
        handle.addr(),
        scheduler_name,
        slo_ms,
        queue_cap,
    );
    if let Some(line) = durability_line {
        println!("{line}");
    }
    println!(
        "endpoints: POST /predict  POST /predict_batch  POST /ingest  GET /healthz  GET /metrics"
    );
    // Block forever; Ctrl-C tears the process down.
    loop {
        std::thread::park();
    }
}

fn cmd_cluster(opts: &Options) -> Result<(), String> {
    let shards: Vec<SocketAddr> = required(opts, "shards")?
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse()
                .map_err(|_| format!("invalid shard address {s:?}"))
        })
        .collect::<Result<_, String>>()?;
    if shards.is_empty() {
        return Err("--shards needs at least one HOST:PORT".to_owned());
    }

    let mut config = ClusterConfig::default();
    config.vnodes = parsed(opts, "vnodes", config.vnodes)?;
    config.retries = parsed(opts, "retries", config.retries)?;
    config.backoff = Duration::from_millis(parsed(
        opts,
        "backoff-ms",
        config.backoff.as_millis() as u64,
    )?);
    config.mirror_every = parsed(opts, "mirror-every", config.mirror_every)?;
    config.health_interval = Duration::from_millis(parsed(
        opts,
        "health-interval-ms",
        config.health_interval.as_millis() as u64,
    )?);
    let read_timeout = config.read_timeout;

    // Shard ids follow list order, so re-launching with the same list
    // reproduces the same ring assignment.
    let router = ClusterRouter::new(config);
    for (id, addr) in shards.iter().enumerate() {
        router
            .add_shard(id as u32, Box::new(HttpBackend::new(*addr, read_timeout)))
            .map_err(|e| format!("adding shard {id} ({addr}): {e}"))?;
    }
    let _health = router.start_health_checks();

    let addr = opts
        .get("addr")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:8090");
    let front = router.serve_http(addr)?;
    println!(
        "routing {} shard(s) [{}] on http://{}",
        shards.len(),
        shards
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        front.addr()
    );
    println!(
        "endpoints: POST /predict  POST /predict_batch  POST /ingest  GET /healthz  GET /readyz\n\
         \x20          GET /metrics  POST /admin/rollout/{{stage,promote,rollback}}  \
         GET /admin/rollout/status"
    );
    // Block forever; Ctrl-C tears the process down.
    loop {
        std::thread::park();
    }
}
