//! Minimal SVG line charts — enough to regenerate the paper's figures as
//! images without a plotting dependency.
//!
//! The experiment binaries write these next to their JSON results:
//! `fig3a_importance.svg` is this reproduction's Figure 3(a), etc. The
//! renderer draws axes with tick labels, one polyline per series, and a
//! legend; styling is deliberately plain.

use std::fmt::Write as _;

/// One polyline.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` pairs, drawn in order.
    pub points: Vec<(f64, f64)>,
}

/// A line chart.
#[derive(Debug, Clone, PartialEq)]
pub struct LineChart {
    /// Title above the plot area.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series, drawn in palette order.
    pub series: Vec<Series>,
    /// Optional fixed y-range; `None` auto-scales with 5 % padding.
    pub y_range: Option<(f64, f64)>,
}

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 440.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 160.0;
const MARGIN_T: f64 = 50.0;
const MARGIN_B: f64 = 60.0;
const PALETTE: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b",
];

impl LineChart {
    /// Creates an auto-scaled chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> LineChart {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            y_range: None,
        }
    }

    /// Adds a series.
    pub fn push_series(&mut self, label: impl Into<String>, points: Vec<(f64, f64)>) {
        self.series.push(Series {
            label: label.into(),
            points,
        });
    }

    /// Renders the chart as a standalone SVG document.
    ///
    /// # Panics
    /// Panics when no series holds any point.
    pub fn render_svg(&self) -> String {
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .collect();
        assert!(!all.is_empty(), "chart with no data points");

        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &all {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
        if let Some((lo, hi)) = self.y_range {
            y_min = lo;
            y_max = hi;
        } else {
            let pad = ((y_max - y_min) * 0.05).max(1e-9);
            y_min -= pad;
            y_max += pad;
        }
        if (x_max - x_min).abs() < 1e-12 {
            x_max = x_min + 1.0;
        }

        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let sx = |x: f64| MARGIN_L + (x - x_min) / (x_max - x_min) * plot_w;
        let sy = |y: f64| MARGIN_T + (1.0 - (y - y_min) / (y_max - y_min)) * plot_h;

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif" font-size="12">"#
        );
        let _ = write!(
            svg,
            r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="24" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            escape(&self.title)
        );

        // Axes + ticks.
        let _ = write!(
            svg,
            r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#333"/>"##
        );
        for i in 0..=5 {
            let fx = x_min + (x_max - x_min) * i as f64 / 5.0;
            let px = sx(fx);
            let _ = write!(
                svg,
                r##"<line x1="{px:.1}" y1="{}" x2="{px:.1}" y2="{}" stroke="#ccc"/>"##,
                MARGIN_T,
                MARGIN_T + plot_h
            );
            let _ = write!(
                svg,
                r#"<text x="{px:.1}" y="{}" text-anchor="middle">{}</text>"#,
                MARGIN_T + plot_h + 18.0,
                format_tick(fx)
            );
            let fy = y_min + (y_max - y_min) * i as f64 / 5.0;
            let py = sy(fy);
            let _ = write!(
                svg,
                r##"<line x1="{MARGIN_L}" y1="{py:.1}" x2="{}" y2="{py:.1}" stroke="#ccc"/>"##,
                MARGIN_L + plot_w
            );
            let _ = write!(
                svg,
                r#"<text x="{}" y="{:.1}" text-anchor="end">{}</text>"#,
                MARGIN_L - 8.0,
                py + 4.0,
                format_tick(fy)
            );
        }
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            HEIGHT - 14.0,
            escape(&self.x_label)
        );
        let _ = write!(
            svg,
            r#"<text x="18" y="{}" text-anchor="middle" transform="rotate(-90 18 {})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            escape(&self.y_label)
        );

        // Series + legend.
        for (k, series) in self.series.iter().enumerate() {
            let color = PALETTE[k % PALETTE.len()];
            if !series.points.is_empty() {
                let path: Vec<String> = series
                    .points
                    .iter()
                    .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
                    .collect();
                let _ = write!(
                    svg,
                    r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
                    path.join(" ")
                );
                for &(x, y) in &series.points {
                    let _ = write!(
                        svg,
                        r#"<circle cx="{:.1}" cy="{:.1}" r="2.5" fill="{color}"/>"#,
                        sx(x),
                        sy(y)
                    );
                }
            }
            let ly = MARGIN_T + 16.0 + k as f64 * 20.0;
            let lx = MARGIN_L + plot_w + 12.0;
            let _ = write!(
                svg,
                r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/>"#,
                lx + 22.0
            );
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}">{}</text>"#,
                lx + 28.0,
                ly + 4.0,
                escape(&series.label)
            );
        }
        svg.push_str("</svg>");
        svg
    }

    /// Renders and writes the SVG under `path`, creating parent
    /// directories.
    pub fn save_svg(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.render_svg())
    }
}

/// A grouped bar chart: one group per category, one bar per series
/// within each group. Used for the Figure 2 / Figure 4 reproductions.
#[derive(Debug, Clone, PartialEq)]
pub struct BarChart {
    /// Title above the plot area.
    pub title: String,
    /// Y-axis label.
    pub y_label: String,
    /// Category (x-axis group) labels.
    pub categories: Vec<String>,
    /// `(series label, one value per category)`.
    pub series: Vec<(String, Vec<f64>)>,
    /// Fixed y-range; bars are drawn from its lower bound.
    pub y_range: (f64, f64),
}

impl BarChart {
    /// Creates a chart with a `[0, 1]` y-range (accuracy-style).
    pub fn new(title: impl Into<String>, y_label: impl Into<String>) -> BarChart {
        BarChart {
            title: title.into(),
            y_label: y_label.into(),
            categories: Vec::new(),
            series: Vec::new(),
            y_range: (0.0, 1.0),
        }
    }

    /// Renders the chart as a standalone SVG document.
    ///
    /// # Panics
    /// Panics with no categories or series, or when a series' length
    /// differs from the category count.
    pub fn render_svg(&self) -> String {
        assert!(!self.categories.is_empty(), "bar chart with no categories");
        assert!(!self.series.is_empty(), "bar chart with no series");
        for (label, values) in &self.series {
            assert_eq!(
                values.len(),
                self.categories.len(),
                "series {label:?} length mismatch"
            );
        }
        let (y_min, y_max) = self.y_range;
        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let sy = |y: f64| MARGIN_T + (1.0 - (y - y_min) / (y_max - y_min)) * plot_h;

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif" font-size="12">"#
        );
        let _ = write!(
            svg,
            r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="24" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            escape(&self.title)
        );
        let _ = write!(
            svg,
            r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#333"/>"##
        );
        for i in 0..=5 {
            let fy = y_min + (y_max - y_min) * i as f64 / 5.0;
            let py = sy(fy);
            let _ = write!(
                svg,
                r##"<line x1="{MARGIN_L}" y1="{py:.1}" x2="{}" y2="{py:.1}" stroke="#ccc"/>"##,
                MARGIN_L + plot_w
            );
            let _ = write!(
                svg,
                r#"<text x="{}" y="{:.1}" text-anchor="end">{}</text>"#,
                MARGIN_L - 8.0,
                py + 4.0,
                format_tick(fy)
            );
        }
        let _ = write!(
            svg,
            r#"<text x="18" y="{}" text-anchor="middle" transform="rotate(-90 18 {})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            escape(&self.y_label)
        );

        let group_w = plot_w / self.categories.len() as f64;
        let bar_w = (group_w * 0.8) / self.series.len() as f64;
        for (c, category) in self.categories.iter().enumerate() {
            let group_x = MARGIN_L + c as f64 * group_w;
            for (k, (_, values)) in self.series.iter().enumerate() {
                let v = values[c].clamp(y_min, y_max);
                let x = group_x + group_w * 0.1 + k as f64 * bar_w;
                let top = sy(v);
                let _ = write!(
                    svg,
                    r#"<rect x="{x:.1}" y="{top:.1}" width="{bar_w:.1}" height="{:.1}" fill="{}"/>"#,
                    (MARGIN_T + plot_h - top).max(0.0),
                    PALETTE[k % PALETTE.len()]
                );
            }
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{}" text-anchor="middle" font-size="10">{}</text>"#,
                group_x + group_w / 2.0,
                MARGIN_T + plot_h + 16.0,
                escape(category)
            );
        }
        for (k, (label, _)) in self.series.iter().enumerate() {
            let ly = MARGIN_T + 16.0 + k as f64 * 20.0;
            let lx = MARGIN_L + plot_w + 12.0;
            let _ = write!(
                svg,
                r#"<rect x="{lx}" y="{}" width="14" height="14" fill="{}"/>"#,
                ly - 10.0,
                PALETTE[k % PALETTE.len()]
            );
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}">{}</text>"#,
                lx + 20.0,
                ly + 2.0,
                escape(label)
            );
        }
        svg.push_str("</svg>");
        svg
    }

    /// Renders and writes the SVG under `path`, creating parent
    /// directories.
    pub fn save_svg(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.render_svg())
    }
}

fn format_tick(v: f64) -> String {
    if v.abs() >= 100.0 || (v.fract() == 0.0 && v.abs() < 1e6) {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chart() -> LineChart {
        let mut chart = LineChart::new("Accuracy vs features", "k", "accuracy");
        chart.push_series("importance", vec![(1.0, 0.6), (2.0, 0.7), (3.0, 0.75)]);
        chart.push_series("wrapper", vec![(1.0, 0.62), (2.0, 0.74), (3.0, 0.78)]);
        chart
    }

    #[test]
    fn renders_wellformed_svg() {
        let svg = sample_chart().render_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("importance"));
        assert!(svg.contains("wrapper"));
        assert!(svg.contains("Accuracy vs features"));
        // 6 points drawn as circles.
        assert_eq!(svg.matches("<circle").count(), 6);
    }

    #[test]
    fn escapes_markup_in_labels() {
        let mut chart = LineChart::new("a < b & c", "x", "y");
        chart.push_series("s<1>", vec![(0.0, 0.0)]);
        let svg = chart.render_svg();
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(svg.contains("s&lt;1&gt;"));
        assert!(!svg.contains("a < b"));
    }

    #[test]
    fn fixed_y_range_is_respected() {
        let mut chart = sample_chart();
        chart.y_range = Some((0.0, 1.0));
        let svg = chart.render_svg();
        // Y ticks include 0 and 1.
        assert!(svg.contains(">0.00<") || svg.contains(">0<"));
        assert!(svg.contains(">1.00<") || svg.contains(">1<"));
    }

    #[test]
    fn degenerate_x_span_is_handled() {
        let mut chart = LineChart::new("t", "x", "y");
        chart.push_series("point", vec![(5.0, 0.5)]);
        let svg = chart.render_svg();
        assert!(svg.contains("<circle"));
    }

    #[test]
    #[should_panic(expected = "no data points")]
    fn empty_chart_panics() {
        let chart = LineChart::new("t", "x", "y");
        let _ = chart.render_svg();
    }

    #[test]
    fn bar_chart_renders_groups_and_legend() {
        let mut chart = BarChart::new("Fig 2", "accuracy");
        chart.categories = vec!["RF".into(), "SVM".into()];
        chart.series = vec![
            ("random CV".into(), vec![0.9, 0.6]),
            ("user CV".into(), vec![0.8, 0.55]),
        ];
        let svg = chart.render_svg();
        // 4 bars + 2 legend swatches + frame + background = rects.
        assert!(svg.matches("<rect").count() >= 7);
        assert!(svg.contains("RF") && svg.contains("SVM"));
        assert!(svg.contains("random CV"));
        assert!(svg.ends_with("</svg>"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bar_chart_rejects_ragged_series() {
        let mut chart = BarChart::new("t", "y");
        chart.categories = vec!["a".into(), "b".into()];
        chart.series = vec![("s".into(), vec![0.5])];
        let _ = chart.render_svg();
    }

    #[test]
    fn save_svg_writes_file() {
        let dir = std::env::temp_dir().join(format!("trajlib_chart_{}", std::process::id()));
        let path = dir.join("nested/chart.svg");
        sample_chart().save_svg(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("<svg"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
