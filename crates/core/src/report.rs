//! Result rendering: markdown tables for the experiment binaries and JSON
//! persistence for EXPERIMENTS.md provenance.

use serde::Serialize;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple fixed-column markdown table builder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkdownTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MarkdownTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        MarkdownTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the cell count differs from the header count.
    pub fn push_row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "cell/header count mismatch"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as GitHub-flavoured markdown with aligned
    /// columns.
    pub fn render(&self) -> String {
        let n = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            out.push('|');
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, " {:<width$} |", cell, width = widths[i]);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        out.push('|');
        for w in widths.iter().take(n) {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Serialises `value` as pretty JSON under `path`, creating parent
/// directories as needed.
pub fn save_json<T: Serialize>(path: &Path, value: &T) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

/// Formats a proportion as a percent string with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats a p-value compactly.
pub fn pvalue(p: f64) -> String {
    if p < 0.0001 {
        "<0.0001".to_string()
    } else {
        format!("{p:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = MarkdownTable::new(vec!["classifier", "accuracy"]);
        t.push_row(vec!["Random Forest", "90.40%"]);
        t.push_row(vec!["SVM", "70.00%"]);
        let s = t.render();
        assert!(s.starts_with("| classifier"));
        assert!(s.contains("| Random Forest | 90.40%"));
        assert!(s.contains("|---"));
        assert_eq!(s.lines().count(), 4);
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "cell/header count mismatch")]
    fn wrong_cell_count_panics() {
        let mut t = MarkdownTable::new(vec!["a", "b"]);
        t.push_row(vec!["only one"]);
    }

    #[test]
    fn save_json_round_trips() {
        let dir = std::env::temp_dir().join(format!("trajlib_report_{}", std::process::id()));
        let path = dir.join("nested/result.json");
        save_json(&path, &vec![1, 2, 3]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: Vec<i32> = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed, vec![1, 2, 3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.904), "90.40%");
        assert_eq!(pvalue(0.0431), "0.0431");
        assert_eq!(pvalue(1e-9), "<0.0001");
    }
}
