//! End-to-end tests of the `trajlib-cli` binary: synth → extract →
//! train → predict → cv as a real user would run them.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_trajlib-cli"))
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("trajlib_cli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_workflow_succeeds() {
    let dir = workdir("flow");
    let cohort = dir.join("cohort");
    let csv = dir.join("features.csv");
    let model = dir.join("model.json");

    let synth = cli()
        .args(["synth", "--users", "5", "--seed", "3", "--out"])
        .arg(&cohort)
        .output()
        .expect("run synth");
    assert!(
        synth.status.success(),
        "{}",
        String::from_utf8_lossy(&synth.stderr)
    );
    assert!(cohort.join("Data/000/labels.txt").is_file());

    let extract = cli()
        .args(["extract", "--geolife"])
        .arg(&cohort)
        .args(["--scheme", "dabiri", "--out"])
        .arg(&csv)
        .output()
        .expect("run extract");
    assert!(
        extract.status.success(),
        "{}",
        String::from_utf8_lossy(&extract.stderr)
    );
    let header = std::fs::read_to_string(&csv).unwrap();
    assert!(header.starts_with("distance_min,"));
    assert!(header.lines().next().unwrap().ends_with("label,group"));

    let train = cli()
        .args(["train", "--csv"])
        .arg(&csv)
        .args(["--model", "tree", "--out"])
        .arg(&model)
        .output()
        .expect("run train");
    assert!(
        train.status.success(),
        "{}",
        String::from_utf8_lossy(&train.stderr)
    );
    assert!(model.is_file());

    let predict = cli()
        .args(["predict", "--csv"])
        .arg(&csv)
        .arg("--model-file")
        .arg(&model)
        .output()
        .expect("run predict");
    assert!(predict.status.success());
    let text = String::from_utf8_lossy(&predict.stdout);
    assert!(text.contains("accuracy 1.0000"), "tree memorises: {text}");

    let cv = cli()
        .args(["cv", "--csv"])
        .arg(&csv)
        .args(["--model", "tree", "--folds", "3"])
        .output()
        .expect("run cv");
    assert!(
        cv.status.success(),
        "{}",
        String::from_utf8_lossy(&cv.stderr)
    );
    assert!(String::from_utf8_lossy(&cv.stdout).contains("mean accuracy"));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn errors_are_reported_not_panicked() {
    // Unknown subcommand.
    let out = cli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));

    // Missing required option.
    let out = cli().arg("synth").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));

    // Unknown model kind.
    let dir = workdir("err");
    let csv = dir.join("f.csv");
    std::fs::write(&csv, "a,label,group\n1.0,0,0\n2.0,1,0\n").unwrap();
    let out = cli()
        .args(["train", "--csv"])
        .arg(&csv)
        .args(["--model", "quantum", "--out"])
        .arg(dir.join("m.json"))
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown model"));

    // Nonexistent input file.
    let out = cli()
        .args([
            "predict",
            "--csv",
            "/nonexistent.csv",
            "--model-file",
            "/nonexistent.json",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn help_lists_subcommands() {
    let out = cli().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for sub in ["synth", "extract", "train", "predict", "cv"] {
        assert!(text.contains(sub), "help missing {sub}");
    }
}
