//! The trajectory simulator.

use crate::synth::profile::ModeProfile;
use crate::synth::user::UserProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use traj_geo::geodesy::destination;
use traj_geo::{
    LabeledPoint, RawTrajectory, Segment, Timestamp, TrajectoryPoint, TransportMode, UserId,
};

/// Configuration of the synthetic GeoLife generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Number of users (GeoLife has 69 labeled ones).
    pub n_users: usize,
    /// Range of labeled segments per user (inclusive bounds).
    pub segments_per_user: (usize, usize),
    /// Master seed; everything derives deterministically from it.
    pub seed: u64,
    /// Restrict generation to these modes (`None` = all eleven, weighted
    /// by the paper's GeoLife distribution).
    pub modes: Option<Vec<TransportMode>>,
    /// Between-user heterogeneity in `[0, 1]`; see
    /// [`UserProfile::sample`]. The §4.4 CV-gap result needs `> 0`.
    pub heterogeneity: f64,
    /// Cap on points per segment (limits runtime; ≥ 30).
    pub max_points_per_segment: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            n_users: 69,
            segments_per_user: (30, 70),
            seed: 42,
            modes: None,
            heterogeneity: 1.0,
            max_points_per_segment: 400,
        }
    }
}

impl SynthConfig {
    /// A small configuration for tests and examples (a few users, short
    /// segments).
    pub fn small(seed: u64) -> Self {
        SynthConfig {
            n_users: 8,
            segments_per_user: (8, 14),
            seed,
            modes: None,
            heterogeneity: 1.0,
            max_points_per_segment: 120,
        }
    }
}

/// A generated dataset: labeled segments plus the user roster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthDataset {
    /// Labeled sub-trajectories, the classification samples.
    pub segments: Vec<Segment>,
    /// The synthetic users, indexed by id.
    pub users: Vec<UserProfile>,
    /// The configuration that produced the dataset.
    pub config: SynthConfig,
}

impl SynthDataset {
    /// Generates a dataset. Deterministic in `config.seed`.
    pub fn generate(config: &SynthConfig) -> SynthDataset {
        assert!(config.n_users > 0, "need at least one user");
        assert!(
            config.segments_per_user.0 >= 1
                && config.segments_per_user.0 <= config.segments_per_user.1,
            "invalid segments_per_user range"
        );
        assert!(
            config.max_points_per_segment >= 30,
            "segments need ≥ 30 points"
        );

        let allowed: Vec<TransportMode> = config
            .modes
            .clone()
            .unwrap_or_else(|| TransportMode::ALL.to_vec());
        assert!(!allowed.is_empty(), "mode set must be non-empty");

        let mut master = StdRng::seed_from_u64(config.seed);
        let mut segments = Vec::new();
        let mut users = Vec::with_capacity(config.n_users);

        for uid in 0..config.n_users as UserId {
            let user = UserProfile::sample(uid, config.heterogeneity, &mut master);
            let mut rng = StdRng::seed_from_u64(config.seed ^ (0xA5A5_0000 + uid as u64) << 1);
            let n_segments = rng.gen_range(config.segments_per_user.0..=config.segments_per_user.1);

            // Cumulative mode weights for this user.
            let weights: Vec<f64> = allowed
                .iter()
                .map(|&m| m.geolife_fraction() * user.mode_preference[m.index()])
                .collect();
            let total_w: f64 = weights.iter().sum();

            for seg_idx in 0..n_segments {
                let mode = {
                    let mut pick = rng.gen_range(0.0..total_w);
                    let mut chosen = allowed[allowed.len() - 1];
                    for (m, w) in allowed.iter().zip(&weights) {
                        if pick < *w {
                            chosen = *m;
                            break;
                        }
                        pick -= w;
                    }
                    chosen
                };
                // One labeled segment per day keeps the paper's
                // user+day+mode grouping trivially consistent.
                let day = seg_idx as i64;
                segments.push(simulate_segment(&user, mode, day, config, &mut rng));
            }
            users.push(user);
        }
        SynthDataset {
            segments,
            users,
            config: config.clone(),
        }
    }

    /// Rebuilds per-user raw trajectories from the segments, adding
    /// annotation slop: the first and last `label_slop` points of every
    /// segment are left unlabeled, mimicking GeoLife's after-the-fact
    /// human annotation (§4's "human error").
    pub fn to_raw_trajectories(&self, label_slop: usize) -> Vec<RawTrajectory> {
        let mut by_user: std::collections::BTreeMap<UserId, Vec<&Segment>> =
            std::collections::BTreeMap::new();
        for seg in &self.segments {
            by_user.entry(seg.user).or_default().push(seg);
        }
        by_user
            .into_iter()
            .map(|(uid, mut segs)| {
                segs.sort_by_key(|s| s.start_time());
                let mut points = Vec::new();
                for seg in segs {
                    let n = seg.points.len();
                    for (i, &p) in seg.points.iter().enumerate() {
                        let labeled = i >= label_slop && i + label_slop < n;
                        points.push(if labeled {
                            LabeledPoint::labeled(p, seg.mode)
                        } else {
                            LabeledPoint::unlabeled(p)
                        });
                    }
                }
                RawTrajectory::new(uid, points)
            })
            .collect()
    }
}

/// Simulates one labeled segment of `mode` for `user` on day `day`.
fn simulate_segment(
    user: &UserProfile,
    mode: TransportMode,
    day: i64,
    config: &SynthConfig,
    rng: &mut StdRng,
) -> Segment {
    let profile = ModeProfile::of(mode);
    let dt = user.sampling_interval_s;
    let duration = rng.gen_range(profile.segment_duration_s.0..profile.segment_duration_s.1);
    let n_points = ((duration / dt) as usize).clamp(30, config.max_points_per_segment);

    // Start position: within ~5 km of home; start time: daytime.
    let (mut lat, mut lon) = destination(
        user.home.0,
        user.home.1,
        rng.gen_range(0.0..360.0),
        rng.gen_range(0.0..5_000.0),
    );
    let start_s = day * 86_400 + rng.gen_range(6 * 3600..20 * 3600) as i64;
    let mut t = start_s as f64;

    // The user's personal cruise speed for this mode: global pace ×
    // per-mode pace. Between-segment spread is kept small relative to the
    // between-user spread — a user's trips are self-similar, which is the
    // auto-correlation random CV exploits.
    let personal_cruise = profile.cruise_speed_ms * user.pace * user.mode_pace[mode.index()];
    let target = normal(rng, personal_cruise, 0.5 * profile.cruise_sd_between)
        .max(0.3 * personal_cruise)
        .min(profile.max_speed_ms);
    let mut v = target * rng.gen_range(0.3..0.9);
    let mut heading = rng.gen_range(0.0..360.0);

    // Stop scheduling (exponential inter-stop times scaled by the user's
    // stop affinity).
    let stop_mean = profile.stop_interval_s.map(|s| s / user.stop_affinity);
    let mut next_stop_in = stop_mean.map(|m| exponential(rng, m)).unwrap_or(f64::MAX);
    let mut stop_remaining = 0.0f64;

    // GPS error = slow systematic drift (OU, ~minutes) + random error
    // (AR(1), ~15 s correlation). Real receiver error is temporally
    // correlated — white noise at metres per fix would inflate apparent
    // speeds far beyond what GeoLife devices show.
    let (mut drift_e, mut drift_n) = (0.0f64, 0.0f64);
    let (mut rand_e, mut rand_n) = (0.0f64, 0.0f64);
    let rho = (-dt / 15.0f64).exp();
    let innovation_sd = user.gps_noise_m * (1.0 - rho * rho).sqrt();

    let mut points = Vec::with_capacity(n_points);
    for _ in 0..n_points {
        if stop_remaining > 0.0 {
            stop_remaining -= dt;
            v *= 0.4; // decelerate sharply toward the stop
        } else {
            next_stop_in -= dt;
            if next_stop_in <= 0.0 {
                if let Some(mean) = stop_mean {
                    stop_remaining = rng.gen_range(
                        profile.stop_duration_s.0
                            ..=profile
                                .stop_duration_s
                                .1
                                .max(profile.stop_duration_s.0 + 1e-9),
                    );
                    next_stop_in = exponential(rng, mean) + stop_remaining;
                }
            }
            // Mean-reverting speed with within-segment fluctuation.
            v += profile.accel_response * (target - v) * dt
                + normal(rng, 0.0, profile.speed_sd_within * dt.sqrt());
            v = v.clamp(0.0, profile.max_speed_ms);
        }
        heading += normal(rng, 0.0, profile.heading_volatility_deg * dt.sqrt());
        heading = heading.rem_euclid(360.0);

        // True motion.
        let (nlat, nlon) = destination(lat, lon, heading, v * dt);
        lat = nlat.clamp(-89.9, 89.9);
        lon = nlon;

        // GPS observation: correlated random error + drift (+ rare
        // outlier spike).
        drift_e += -0.02 * drift_e * dt + normal(rng, 0.0, 0.3 * dt.sqrt());
        drift_n += -0.02 * drift_n * dt + normal(rng, 0.0, 0.3 * dt.sqrt());
        rand_e = rand_e * rho + normal(rng, 0.0, innovation_sd);
        rand_n = rand_n * rho + normal(rng, 0.0, innovation_sd);
        let mut err_e = drift_e + rand_e;
        let mut err_n = drift_n + rand_n;
        if rng.gen::<f64>() < user.outlier_rate {
            let spike = rng.gen_range(30.0..200.0);
            let dir = rng.gen_range(0.0..std::f64::consts::TAU);
            err_e += spike * dir.cos();
            err_n += spike * dir.sin();
        }
        let obs_lat = (lat + err_n / 111_320.0).clamp(-90.0, 90.0);
        let obs_lon = lon + err_e / (111_320.0 * lat.to_radians().cos().max(0.01));

        points.push(TrajectoryPoint::new(
            obs_lat,
            obs_lon,
            Timestamp::from_seconds_f64(t),
        ));

        // Clock advance, with occasional signal loss (the clock jumps and
        // the vehicle keeps moving).
        t += dt;
        if rng.gen::<f64>() < user.signal_loss_rate {
            let gap = rng.gen_range(20.0..180.0);
            let (glat, glon) = destination(lat, lon, heading, v * gap);
            lat = glat.clamp(-89.9, 89.9);
            lon = glon;
            t += gap;
        }
    }
    Segment::new(user.id, mode, day, points)
}

/// Box–Muller normal sample.
fn normal(rng: &mut StdRng, mean: f64, sd: f64) -> f64 {
    if sd <= 0.0 {
        return mean;
    }
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    mean + sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Exponential sample with the given mean.
fn exponential(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = SynthConfig::small(7);
        let a = SynthDataset::generate(&config);
        let b = SynthDataset::generate(&config);
        assert_eq!(a.segments.len(), b.segments.len());
        assert_eq!(a.segments[0].points, b.segments[0].points);
        let mut c2 = config;
        c2.seed = 8;
        let c = SynthDataset::generate(&c2);
        assert_ne!(a.segments[0].points, c.segments[0].points);
    }

    #[test]
    fn respects_user_and_segment_counts() {
        let config = SynthConfig {
            n_users: 5,
            segments_per_user: (4, 6),
            ..SynthConfig::small(1)
        };
        let d = SynthDataset::generate(&config);
        assert_eq!(d.users.len(), 5);
        for uid in 0..5u32 {
            let n = d.segments.iter().filter(|s| s.user == uid).count();
            assert!((4..=6).contains(&n), "user {uid} has {n} segments");
        }
    }

    #[test]
    fn segments_are_valid_trajectories() {
        let d = SynthDataset::generate(&SynthConfig::small(2));
        for seg in &d.segments {
            assert!(seg.len() >= 30);
            assert!(
                seg.points.iter().all(|p| p.is_valid()),
                "invalid coordinates"
            );
            assert!(
                seg.points.windows(2).all(|w| w[0].t < w[1].t),
                "time must increase"
            );
            assert!(seg.points.iter().all(|p| p.t.day_index() == seg.day));
        }
    }

    #[test]
    fn mode_restriction_is_honoured() {
        let config = SynthConfig {
            modes: Some(vec![TransportMode::Walk, TransportMode::Bus]),
            ..SynthConfig::small(3)
        };
        let d = SynthDataset::generate(&config);
        assert!(d
            .segments
            .iter()
            .all(|s| matches!(s.mode, TransportMode::Walk | TransportMode::Bus)));
        // Both modes appear.
        assert!(d.segments.iter().any(|s| s.mode == TransportMode::Walk));
        assert!(d.segments.iter().any(|s| s.mode == TransportMode::Bus));
    }

    #[test]
    fn kinematics_separate_slow_and_fast_modes() {
        let config = SynthConfig {
            n_users: 6,
            segments_per_user: (10, 15),
            modes: Some(vec![TransportMode::Walk, TransportMode::Train]),
            ..SynthConfig::small(4)
        };
        let d = SynthDataset::generate(&config);
        let mean_speed = |m: TransportMode| {
            let (mut sum, mut n) = (0.0, 0);
            for s in d.segments.iter().filter(|s| s.mode == m) {
                sum += s.mean_speed_ms();
                n += 1;
            }
            sum / n as f64
        };
        let walk = mean_speed(TransportMode::Walk);
        let train = mean_speed(TransportMode::Train);
        assert!(walk < 3.0, "walk speed {walk}");
        assert!(train > 8.0, "train speed {train}");
    }

    #[test]
    fn walk_speeds_are_plausible() {
        let config = SynthConfig {
            n_users: 4,
            modes: Some(vec![TransportMode::Walk]),
            ..SynthConfig::small(5)
        };
        let d = SynthDataset::generate(&config);
        // Outlier spikes legitimately inflate a few short segments (the
        // noise the paper's percentile features are robust to), so check
        // the typical segment, not the worst case.
        let mut speeds: Vec<f64> = d.segments.iter().map(|s| s.mean_speed_ms()).collect();
        speeds.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = speeds[speeds.len() / 2];
        assert!(median < 2.5, "median walking speed {median} m/s");
        let p90 = speeds[speeds.len() * 9 / 10];
        assert!(p90 < 5.0, "90th-percentile walking speed {p90} m/s");
    }

    #[test]
    fn heterogeneous_users_have_different_paces() {
        let d = SynthDataset::generate(&SynthConfig::small(6));
        let paces: Vec<f64> = d.users.iter().map(|u| u.pace).collect();
        let spread = paces.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - paces.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.1, "pace spread {spread}");
    }

    #[test]
    fn raw_trajectory_round_trip_through_segmentation() {
        use traj_geo::segmentation::{segment_by_user_day_mode, SegmentationConfig};
        let d = SynthDataset::generate(&SynthConfig {
            n_users: 3,
            segments_per_user: (5, 8),
            ..SynthConfig::small(7)
        });
        let raws = d.to_raw_trajectories(2);
        assert_eq!(raws.len(), 3);
        let mut recovered = 0usize;
        for raw in &raws {
            assert!(raw.validate().is_ok(), "{:?}", raw.validate());
            recovered += segment_by_user_day_mode(raw, &SegmentationConfig::paper()).len();
        }
        // Label slop trims ends but every generated segment (≥ 30 points,
        // slop 2×2) survives the 10-point minimum.
        assert_eq!(recovered, d.segments.len());
    }

    #[test]
    fn label_slop_unlabels_boundaries() {
        let d = SynthDataset::generate(&SynthConfig {
            n_users: 1,
            segments_per_user: (1, 1),
            ..SynthConfig::small(8)
        });
        let raws = d.to_raw_trajectories(3);
        let pts = &raws[0].points;
        assert!(pts[0].mode.is_none());
        assert!(pts[2].mode.is_none());
        assert!(pts[3].mode.is_some());
        assert!(pts[pts.len() - 1].mode.is_none());
    }

    #[test]
    fn full_default_scale_generates_plausibly() {
        // The experiment-scale config, kept cheap by capping users here.
        let config = SynthConfig {
            n_users: 10,
            ..SynthConfig::default()
        };
        let d = SynthDataset::generate(&config);
        assert!(d.segments.len() >= 10 * 30);
        // Walk should dominate, matching the paper's distribution.
        let walk = d
            .segments
            .iter()
            .filter(|s| s.mode == TransportMode::Walk)
            .count();
        assert!(
            walk as f64 / d.segments.len() as f64 > 0.15,
            "walk fraction too low"
        );
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn zero_users_panics() {
        let _ = SynthDataset::generate(&SynthConfig {
            n_users: 0,
            ..SynthConfig::small(1)
        });
    }
}
