//! Kinematic profiles of the eleven GeoLife transportation modes.
//!
//! Cruise speeds follow published urban-mobility figures (Beijing traffic
//! for the motorised modes): walking ~5 km/h, cycling ~15 km/h, buses
//! ~23 km/h with frequent stops, urban driving ~40 km/h with traffic
//! lights, subway ~47 km/h between stations, intercity rail ~80 km/h,
//! cruise aircraft ~600 km/h. The *between-segment* spread and the
//! per-user pace multiplier make neighbouring modes overlap — exactly the
//! difficulty structure of the real data, where the paper's best model
//! stays below 91 % accuracy.

use serde::{Deserialize, Serialize};
use traj_geo::TransportMode;

/// The kinematic envelope of one transportation mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModeProfile {
    /// Population mean cruise speed, m/s.
    pub cruise_speed_ms: f64,
    /// Between-segment standard deviation of the target cruise speed, m/s.
    pub cruise_sd_between: f64,
    /// Within-segment speed fluctuation (per √s), m/s.
    pub speed_sd_within: f64,
    /// Hard ceiling on instantaneous speed, m/s.
    pub max_speed_ms: f64,
    /// Responsiveness toward the target speed, 1/s (higher = snappier).
    pub accel_response: f64,
    /// Mean seconds between scheduled stops; `None` = the mode does not
    /// stop (airplane) or stops negligibly.
    pub stop_interval_s: Option<f64>,
    /// Stop duration range, seconds.
    pub stop_duration_s: (f64, f64),
    /// Heading random-walk standard deviation, degrees per √s.
    pub heading_volatility_deg: f64,
    /// Segment wall-clock duration range, seconds.
    pub segment_duration_s: (f64, f64),
}

impl ModeProfile {
    /// The calibrated profile of a mode.
    pub fn of(mode: TransportMode) -> ModeProfile {
        use TransportMode::*;
        match mode {
            Walk => ModeProfile {
                cruise_speed_ms: 1.4,
                cruise_sd_between: 0.25,
                speed_sd_within: 0.35,
                max_speed_ms: 3.0,
                accel_response: 0.8,
                stop_interval_s: Some(180.0),
                stop_duration_s: (5.0, 45.0),
                heading_volatility_deg: 25.0,
                segment_duration_s: (240.0, 1_800.0),
            },
            Run => ModeProfile {
                cruise_speed_ms: 2.9,
                cruise_sd_between: 0.4,
                speed_sd_within: 0.4,
                max_speed_ms: 6.0,
                accel_response: 0.8,
                stop_interval_s: Some(400.0),
                stop_duration_s: (5.0, 30.0),
                heading_volatility_deg: 15.0,
                segment_duration_s: (300.0, 1_800.0),
            },
            Bike => ModeProfile {
                cruise_speed_ms: 4.3,
                cruise_sd_between: 0.7,
                speed_sd_within: 0.6,
                max_speed_ms: 10.0,
                accel_response: 0.6,
                stop_interval_s: Some(150.0),
                stop_duration_s: (5.0, 40.0),
                heading_volatility_deg: 12.0,
                segment_duration_s: (240.0, 2_400.0),
            },
            Bus => ModeProfile {
                cruise_speed_ms: 6.5,
                cruise_sd_between: 1.2,
                speed_sd_within: 1.2,
                max_speed_ms: 17.0,
                accel_response: 0.35,
                stop_interval_s: Some(55.0),
                stop_duration_s: (10.0, 35.0),
                heading_volatility_deg: 7.0,
                segment_duration_s: (300.0, 2_700.0),
            },
            Car => ModeProfile {
                cruise_speed_ms: 11.5,
                cruise_sd_between: 2.5,
                speed_sd_within: 1.8,
                max_speed_ms: 33.0,
                accel_response: 0.45,
                stop_interval_s: Some(90.0),
                stop_duration_s: (5.0, 45.0),
                heading_volatility_deg: 8.0,
                segment_duration_s: (300.0, 3_600.0),
            },
            Taxi => ModeProfile {
                cruise_speed_ms: 10.5,
                cruise_sd_between: 2.5,
                speed_sd_within: 1.8,
                max_speed_ms: 33.0,
                accel_response: 0.45,
                stop_interval_s: Some(80.0),
                stop_duration_s: (5.0, 50.0),
                heading_volatility_deg: 8.0,
                segment_duration_s: (240.0, 2_400.0),
            },
            Motorcycle => ModeProfile {
                cruise_speed_ms: 9.5,
                cruise_sd_between: 2.0,
                speed_sd_within: 1.6,
                max_speed_ms: 28.0,
                accel_response: 0.6,
                stop_interval_s: Some(100.0),
                stop_duration_s: (5.0, 40.0),
                heading_volatility_deg: 9.0,
                segment_duration_s: (240.0, 1_800.0),
            },
            Boat => ModeProfile {
                cruise_speed_ms: 6.0,
                cruise_sd_between: 1.5,
                speed_sd_within: 0.5,
                max_speed_ms: 15.0,
                accel_response: 0.1,
                stop_interval_s: None,
                stop_duration_s: (0.0, 0.0),
                heading_volatility_deg: 3.0,
                segment_duration_s: (600.0, 3_600.0),
            },
            Subway => ModeProfile {
                cruise_speed_ms: 13.0,
                cruise_sd_between: 1.5,
                speed_sd_within: 1.5,
                max_speed_ms: 22.0,
                accel_response: 0.25,
                stop_interval_s: Some(110.0),
                stop_duration_s: (20.0, 45.0),
                heading_volatility_deg: 1.5,
                segment_duration_s: (420.0, 2_400.0),
            },
            Train => ModeProfile {
                cruise_speed_ms: 22.0,
                cruise_sd_between: 4.0,
                speed_sd_within: 1.2,
                max_speed_ms: 45.0,
                accel_response: 0.08,
                stop_interval_s: Some(420.0),
                stop_duration_s: (45.0, 120.0),
                heading_volatility_deg: 0.8,
                segment_duration_s: (900.0, 5_400.0),
            },
            Airplane => ModeProfile {
                cruise_speed_ms: 170.0,
                cruise_sd_between: 25.0,
                speed_sd_within: 3.0,
                max_speed_ms: 260.0,
                accel_response: 0.05,
                stop_interval_s: None,
                stop_duration_s: (0.0, 0.0),
                heading_volatility_deg: 0.3,
                segment_duration_s: (1_800.0, 7_200.0),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_mode_has_a_profile() {
        for &m in &TransportMode::ALL {
            let p = ModeProfile::of(m);
            assert!(p.cruise_speed_ms > 0.0, "{m}");
            assert!(p.max_speed_ms > p.cruise_speed_ms, "{m}");
            assert!(p.segment_duration_s.0 < p.segment_duration_s.1, "{m}");
            assert!(p.heading_volatility_deg >= 0.0, "{m}");
        }
    }

    #[test]
    fn speed_ordering_matches_reality() {
        let v = |m| ModeProfile::of(m).cruise_speed_ms;
        use TransportMode::*;
        assert!(v(Walk) < v(Run));
        assert!(v(Run) < v(Bike));
        assert!(v(Bike) < v(Bus));
        assert!(v(Bus) < v(Car));
        assert!(v(Car) < v(Subway));
        assert!(v(Subway) < v(Train));
        assert!(v(Train) < v(Airplane));
    }

    #[test]
    fn driving_modes_are_nearly_identical() {
        // The Dabiri scheme merges car and taxi because their kinematics
        // match; the profiles must make that merge sensible.
        let car = ModeProfile::of(TransportMode::Car);
        let taxi = ModeProfile::of(TransportMode::Taxi);
        assert!((car.cruise_speed_ms - taxi.cruise_speed_ms).abs() < 2.0);
        assert_eq!(car.max_speed_ms, taxi.max_speed_ms);
    }

    #[test]
    fn rail_modes_run_straight() {
        for m in [
            TransportMode::Subway,
            TransportMode::Train,
            TransportMode::Airplane,
        ] {
            assert!(
                ModeProfile::of(m).heading_volatility_deg < 2.0,
                "{m} should be straight"
            );
        }
        assert!(ModeProfile::of(TransportMode::Walk).heading_volatility_deg > 10.0);
    }

    #[test]
    fn buses_stop_often_trains_rarely() {
        let bus = ModeProfile::of(TransportMode::Bus).stop_interval_s.unwrap();
        let train = ModeProfile::of(TransportMode::Train)
            .stop_interval_s
            .unwrap();
        assert!(bus < train / 4.0);
        assert!(ModeProfile::of(TransportMode::Airplane)
            .stop_interval_s
            .is_none());
    }
}
