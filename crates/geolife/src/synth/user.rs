//! Per-user idiosyncrasies.
//!
//! Real GeoLife users differ systematically: their devices log at
//! different rates with different error levels, their walking/driving
//! pace differs, their cities impose different stop patterns, and their
//! mode mix differs (commuters ride the subway daily, cyclists bike). The
//! paper's §4.4 result — random cross-validation is optimistic — exists
//! *because* of this between-user structure, so the generator draws these
//! traits once per user and holds them fixed across all of the user's
//! segments.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use traj_geo::{TransportMode, UserId};

/// The fixed traits of one synthetic user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// User id (also the cross-validation group key).
    pub id: UserId,
    /// Multiplier on every mode's cruise speed (a brisk walker drives
    /// faster too — urban pace correlates across modes).
    pub pace: f64,
    /// Standard deviation of the device's random GPS error, metres.
    pub gps_noise_m: f64,
    /// Device logging interval, seconds.
    pub sampling_interval_s: f64,
    /// Multiplier on stop frequency (dense-city users stop more).
    pub stop_affinity: f64,
    /// Probability of an outlier GPS spike per fix.
    pub outlier_rate: f64,
    /// Probability of a signal-loss gap starting at any fix.
    pub signal_loss_rate: f64,
    /// Per-mode preference multipliers over the global GeoLife mode
    /// distribution, indexed by [`TransportMode::index`].
    pub mode_preference: Vec<f64>,
    /// Per-mode pace multipliers (on top of the global `pace`), indexed by
    /// [`TransportMode::index`]. A user's bus route is consistently fast
    /// or slow — this within-user consistency is what random
    /// cross-validation exploits and user-oriented cross-validation
    /// cannot.
    pub mode_pace: Vec<f64>,
    /// Home location (lat, lon) segments start near.
    pub home: (f64, f64),
}

impl UserProfile {
    /// Samples a user. `heterogeneity` in `[0, 1]` scales how much users
    /// differ: `0` makes every user identical (an ablation setting that
    /// should collapse the random-vs-user CV gap), `1` is the calibrated
    /// default.
    pub fn sample(id: UserId, heterogeneity: f64, rng: &mut StdRng) -> UserProfile {
        let h = heterogeneity.clamp(0.0, 1.0);
        // ln-pace ~ U(−0.55, 0.55) scaled by h → pace in [0.58, 1.73] at
        // h = 1.
        let pace = (rng.gen_range(-0.55..0.55) * h).exp();
        let gps_noise_m = 1.0 + rng.gen_range(0.0..4.0) * h;
        let sampling_interval_s = if h == 0.0 {
            2.0
        } else {
            *[1.0, 2.0, 3.0, 5.0]
                .get(rng.gen_range(0..4))
                .expect("four intervals")
        };
        let stop_affinity = 1.0 + rng.gen_range(-0.5..1.0) * h;
        let outlier_rate = 0.002 + rng.gen_range(0.0..0.006) * h;
        let signal_loss_rate = 0.001 + rng.gen_range(0.0..0.004) * h;
        let mode_preference = (0..TransportMode::ALL.len())
            .map(|_| (rng.gen_range(-0.8..0.8) * h).exp())
            .collect();
        let mode_pace = (0..TransportMode::ALL.len())
            .map(|_| (rng.gen_range(-0.45..0.45) * h).exp())
            .collect();
        // Users scattered around Beijing (the real dataset's center).
        let home = (
            39.9 + rng.gen_range(-0.3..0.3),
            116.4 + rng.gen_range(-0.4..0.4),
        );
        UserProfile {
            id,
            pace,
            gps_noise_m,
            sampling_interval_s,
            stop_affinity,
            outlier_rate,
            signal_loss_rate,
            mode_preference,
            mode_pace,
            home,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sampled_traits_are_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for id in 0..50 {
            let u = UserProfile::sample(id, 1.0, &mut rng);
            assert!(u.pace > 0.55 && u.pace < 1.75, "pace {}", u.pace);
            assert_eq!(u.mode_pace.len(), 11);
            assert!(u.mode_pace.iter().all(|&p| (0.6..1.6).contains(&p)));
            assert!(u.gps_noise_m >= 1.0 && u.gps_noise_m <= 5.0);
            assert!([1.0, 2.0, 3.0, 5.0].contains(&u.sampling_interval_s));
            assert!(u.stop_affinity > 0.4 && u.stop_affinity < 2.1);
            assert!(u.outlier_rate > 0.0 && u.outlier_rate < 0.01);
            assert_eq!(u.mode_preference.len(), 11);
            assert!((39.0..41.0).contains(&u.home.0));
        }
    }

    #[test]
    fn zero_heterogeneity_makes_identical_behavioural_traits() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = UserProfile::sample(1, 0.0, &mut rng);
        let b = UserProfile::sample(2, 0.0, &mut rng);
        assert_eq!(a.pace, 1.0);
        assert_eq!(b.pace, 1.0);
        assert_eq!(a.sampling_interval_s, b.sampling_interval_s);
        assert!(a.mode_preference.iter().all(|&p| p == 1.0));
        // Homes still differ (location is not a feature of the pipeline).
    }

    #[test]
    fn users_differ_at_full_heterogeneity() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = UserProfile::sample(1, 1.0, &mut rng);
        let b = UserProfile::sample(2, 1.0, &mut rng);
        assert_ne!(a.pace, b.pace);
        assert_ne!(a.mode_preference, b.mode_preference);
    }

    #[test]
    fn sampling_is_deterministic_per_rng_seed() {
        let mut r1 = StdRng::seed_from_u64(4);
        let mut r2 = StdRng::seed_from_u64(4);
        assert_eq!(
            UserProfile::sample(7, 1.0, &mut r1),
            UserProfile::sample(7, 1.0, &mut r2)
        );
    }
}
