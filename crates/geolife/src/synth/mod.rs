//! Synthetic GeoLife generator.
//!
//! Every experiment of the reproduction runs on trajectories from this
//! module (the real dataset cannot ship with the repository). The
//! generator preserves the properties the paper's experiments actually
//! exercise:
//!
//! 1. **Mode-specific kinematics** ([`profile::ModeProfile`]): cruise
//!    speeds, acceleration envelopes, stop patterns (buses and subways
//!    stop periodically, trains rarely, walks meander) and heading
//!    dynamics (rail runs straight, pedestrians turn constantly). The
//!    mode distributions *overlap* — a taxi and a car are nearly
//!    indistinguishable, a fast bus rivals a slow car — so classification
//!    is non-trivial, as on the real data.
//! 2. **Per-user idiosyncrasies** ([`user::UserProfile`]): pace
//!    multipliers, device noise levels, sampling intervals, stop
//!    affinities and mode preferences are drawn *once per user*. Segments
//!    of one user are therefore correlated — the auto-correlation that
//!    makes random cross-validation optimistic relative to user-oriented
//!    cross-validation (the paper's §4.4 finding).
//! 3. **A GPS error model**: Gaussian random error, slowly-varying
//!    systematic drift, outlier spikes and signal-loss gaps (§4's device
//!    error discussion).
//!
//! The eleven modes follow the paper's published GeoLife label
//! distribution ([`traj_geo::TransportMode::geolife_fraction`]).

pub mod generator;
pub mod profile;
pub mod user;

pub use generator::{SynthConfig, SynthDataset};
pub use profile::ModeProfile;
pub use user::UserProfile;
