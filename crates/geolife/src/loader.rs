//! Loading a real GeoLife distribution from disk.
//!
//! Expected layout (the official download):
//!
//! ```text
//! <root>/Data/<user-id>/Trajectory/*.plt
//! <root>/Data/<user-id>/labels.txt        (only for labeled users)
//! ```
//!
//! Users without a `labels.txt` are skipped by default — the paper's task
//! is supervised, so only the 69 annotated users matter.

use crate::labels::{apply_labels, parse_labels, LabelInterval};
use crate::plt::parse_plt;
use std::fs;
use std::io;
use std::path::Path;
use traj_geo::{LabeledPoint, RawTrajectory, TrajectoryPoint, UserId};

/// Options of [`load_geolife_directory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoaderOptions {
    /// Skip users that carry no `labels.txt` (default `true`).
    pub labeled_users_only: bool,
    /// Stop after this many users (`None` loads all) — useful for smoke
    /// tests against the full dataset.
    pub max_users: Option<usize>,
}

impl Default for LoaderOptions {
    fn default() -> Self {
        LoaderOptions {
            labeled_users_only: true,
            max_users: None,
        }
    }
}

/// Loads a GeoLife directory into one [`RawTrajectory`] per user (all PLT
/// files concatenated in time order, annotations applied).
pub fn load_geolife_directory(
    root: &Path,
    options: &LoaderOptions,
) -> io::Result<Vec<RawTrajectory>> {
    let data_dir = if root.join("Data").is_dir() {
        root.join("Data")
    } else {
        root.to_path_buf()
    };

    let mut user_dirs: Vec<(UserId, std::path::PathBuf)> = Vec::new();
    for entry in fs::read_dir(&data_dir)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        let name = entry.file_name();
        let Some(user_id) = name.to_str().and_then(|s| s.parse::<UserId>().ok()) else {
            continue;
        };
        user_dirs.push((user_id, entry.path()));
    }
    user_dirs.sort_by_key(|(id, _)| *id);

    let mut out = Vec::new();
    for (user_id, dir) in user_dirs {
        if let Some(max) = options.max_users {
            if out.len() >= max {
                break;
            }
        }
        let labels_path = dir.join("labels.txt");
        let intervals: Vec<LabelInterval> = if labels_path.is_file() {
            let content = fs::read_to_string(&labels_path)?;
            parse_labels(&content).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        } else if options.labeled_users_only {
            continue;
        } else {
            Vec::new()
        };

        let mut points: Vec<TrajectoryPoint> = Vec::new();
        let traj_dir = dir.join("Trajectory");
        if traj_dir.is_dir() {
            let mut plt_files: Vec<std::path::PathBuf> = fs::read_dir(&traj_dir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "plt"))
                .collect();
            plt_files.sort();
            for file in plt_files {
                let content = fs::read_to_string(&file)?;
                let pts = parse_plt(&content)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                points.extend(pts);
            }
        }
        if points.is_empty() {
            continue;
        }
        // PLT file names sort chronologically, but guard against overlap.
        points.sort_by_key(|p| p.t);
        points.dedup_by_key(|p| p.t);

        let labeled: Vec<LabeledPoint> = apply_labels(&points, &intervals);
        out.push(RawTrajectory::new(user_id, labeled));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::write_labels;
    use crate::plt::write_plt;
    use traj_geo::{Timestamp, TransportMode};

    /// Builds a miniature on-disk GeoLife distribution.
    fn build_fixture(root: &Path) {
        let base = Timestamp::from_seconds(1_200_000_000);
        for user in ["010", "011", "012"] {
            let traj_dir = root.join("Data").join(user).join("Trajectory");
            fs::create_dir_all(&traj_dir).unwrap();
            let points: Vec<TrajectoryPoint> = (0..30)
                .map(|i| TrajectoryPoint::new(39.9 + i as f64 * 1e-4, 116.3, base + i * 5_000))
                .collect();
            fs::write(traj_dir.join("20080110000000.plt"), write_plt(&points)).unwrap();
            // Users 010 and 011 are labeled; 012 is not.
            if user != "012" {
                let labels = vec![crate::labels::LabelInterval {
                    start: base,
                    end: base + 200_000,
                    mode: TransportMode::Walk,
                }];
                fs::write(
                    root.join("Data").join(user).join("labels.txt"),
                    write_labels(&labels),
                )
                .unwrap();
            }
        }
        // A non-numeric directory to ignore.
        fs::create_dir_all(root.join("Data").join("README")).unwrap();
    }

    #[test]
    fn loads_labeled_users_only_by_default() {
        let dir = std::env::temp_dir().join(format!("geolife_fixture_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        build_fixture(&dir);

        let users = load_geolife_directory(&dir, &LoaderOptions::default()).unwrap();
        assert_eq!(users.len(), 2, "user 012 has no labels.txt");
        assert_eq!(users[0].user, 10);
        assert_eq!(users[1].user, 11);
        assert_eq!(users[0].len(), 30);
        // First 41 fixes fall inside the 200 s interval (0..=200_000 ms
        // at 5 s cadence); here all 30 do.
        assert!(users[0]
            .points
            .iter()
            .all(|p| p.mode == Some(TransportMode::Walk)));

        let all = load_geolife_directory(
            &dir,
            &LoaderOptions {
                labeled_users_only: false,
                max_users: None,
            },
        )
        .unwrap();
        assert_eq!(all.len(), 3);
        assert!(all[2].points.iter().all(|p| p.mode.is_none()));

        let capped = load_geolife_directory(
            &dir,
            &LoaderOptions {
                labeled_users_only: true,
                max_users: Some(1),
            },
        )
        .unwrap();
        assert_eq!(capped.len(), 1);

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_errors() {
        let missing = Path::new("/nonexistent/geolife/root");
        assert!(load_geolife_directory(missing, &LoaderOptions::default()).is_err());
    }
}
