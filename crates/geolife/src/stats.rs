//! Dataset summaries mirroring the paper's §4 description of GeoLife
//! ("5,504,363 GPS records collected by 69 users … labeled with eleven
//! transportation modes").

use serde::{Deserialize, Serialize};
use traj_geo::{Segment, TransportMode};

/// Aggregate statistics of a segment collection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Total GPS points across all segments.
    pub n_points: usize,
    /// Total segments (classification samples).
    pub n_segments: usize,
    /// Distinct users.
    pub n_users: usize,
    /// Points per mode, indexed by [`TransportMode::index`].
    pub points_per_mode: Vec<usize>,
    /// Segments per mode, indexed by [`TransportMode::index`].
    pub segments_per_mode: Vec<usize>,
}

impl DatasetStats {
    /// Computes statistics over segments.
    pub fn compute(segments: &[Segment]) -> DatasetStats {
        let mut points_per_mode = vec![0usize; TransportMode::ALL.len()];
        let mut segments_per_mode = vec![0usize; TransportMode::ALL.len()];
        let mut users = std::collections::BTreeSet::new();
        let mut n_points = 0usize;
        for seg in segments {
            let idx = seg.mode.index();
            points_per_mode[idx] += seg.len();
            segments_per_mode[idx] += 1;
            n_points += seg.len();
            users.insert(seg.user);
        }
        DatasetStats {
            n_points,
            n_segments: segments.len(),
            n_users: users.len(),
            points_per_mode,
            segments_per_mode,
        }
    }

    /// Fraction of GPS points per mode, indexed by
    /// [`TransportMode::index`]; zeros when the collection is empty.
    pub fn point_fractions(&self) -> Vec<f64> {
        if self.n_points == 0 {
            return vec![0.0; self.points_per_mode.len()];
        }
        self.points_per_mode
            .iter()
            .map(|&c| c as f64 / self.n_points as f64)
            .collect()
    }

    /// A fixed-width table comparing measured point fractions with the
    /// paper's published GeoLife distribution.
    pub fn to_table(&self) -> String {
        let fractions = self.point_fractions();
        let mut out = String::new();
        out.push_str(&format!(
            "{} GPS points, {} segments, {} users\n",
            self.n_points, self.n_segments, self.n_users
        ));
        out.push_str(&format!(
            "{:<12} {:>10} {:>10} {:>10}\n",
            "mode", "segments", "measured%", "paper%"
        ));
        for &mode in &TransportMode::ALL {
            let i = mode.index();
            out.push_str(&format!(
                "{:<12} {:>10} {:>9.2}% {:>9.2}%\n",
                mode.name(),
                self.segments_per_mode[i],
                fractions[i] * 100.0,
                mode.geolife_fraction() * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthConfig, SynthDataset};
    use traj_geo::{Timestamp, TrajectoryPoint};

    fn seg(user: u32, mode: TransportMode, n: usize) -> Segment {
        let points = (0..n)
            .map(|i| TrajectoryPoint::new(39.9, 116.3, Timestamp::from_seconds(i as i64)))
            .collect();
        Segment::new(user, mode, 0, points)
    }

    #[test]
    fn counts_are_correct() {
        let segments = vec![
            seg(1, TransportMode::Walk, 10),
            seg(1, TransportMode::Bus, 20),
            seg(2, TransportMode::Walk, 30),
        ];
        let s = DatasetStats::compute(&segments);
        assert_eq!(s.n_points, 60);
        assert_eq!(s.n_segments, 3);
        assert_eq!(s.n_users, 2);
        assert_eq!(s.points_per_mode[TransportMode::Walk.index()], 40);
        assert_eq!(s.segments_per_mode[TransportMode::Bus.index()], 1);
        let f = s.point_fractions();
        assert!((f[TransportMode::Walk.index()] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_collection() {
        let s = DatasetStats::compute(&[]);
        assert_eq!(s.n_points, 0);
        assert!(s.point_fractions().iter().all(|&f| f == 0.0));
        assert!(s.to_table().contains("0 GPS points"));
    }

    #[test]
    fn synthetic_distribution_tracks_the_paper() {
        // With enough users the generated mode mix must resemble the
        // published fractions (preference jitter averages out).
        let d = SynthDataset::generate(&SynthConfig {
            n_users: 40,
            segments_per_user: (20, 30),
            ..SynthConfig::small(9)
        });
        let s = DatasetStats::compute(&d.segments);
        let seg_frac =
            |m: TransportMode| s.segments_per_mode[m.index()] as f64 / s.n_segments as f64;
        // Walk is the most common mode, as in the paper (29.35 %).
        assert!(
            seg_frac(TransportMode::Walk) > 0.18,
            "{}",
            seg_frac(TransportMode::Walk)
        );
        // The big four dominate.
        let big4 = seg_frac(TransportMode::Walk)
            + seg_frac(TransportMode::Bus)
            + seg_frac(TransportMode::Bike)
            + seg_frac(TransportMode::Train);
        assert!(big4 > 0.6, "{big4}");
        // Rare modes stay rare.
        assert!(seg_frac(TransportMode::Motorcycle) < 0.02);
        assert!(seg_frac(TransportMode::Run) < 0.03);
    }

    #[test]
    fn table_mentions_every_mode() {
        let d = SynthDataset::generate(&SynthConfig::small(10));
        let s = DatasetStats::compute(&d.segments);
        let table = s.to_table();
        for &m in &TransportMode::ALL {
            assert!(table.contains(m.name()), "table missing {m}");
        }
    }
}
