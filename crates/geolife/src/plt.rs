//! GeoLife PLT trajectory files.
//!
//! A PLT file holds one recording session:
//!
//! ```text
//! Geolife trajectory
//! WGS 84
//! Altitude is in Feet
//! Reserved 3
//! 0,2,255,My Track,0,0,2,8421376
//! 0
//! 39.906631,116.385564,0,492,40097.5864583333,2009-10-11,14:04:30
//! …
//! ```
//!
//! Six header lines, then one CSV row per fix: latitude, longitude, a
//! reserved `0`, altitude in feet (`-777` when invalid), days since
//! 1899-12-30 as a float, date, time.

use crate::datetime::{format_date_time, parse_date_time};
use traj_geo::{GeoError, TrajectoryPoint};

/// Number of header lines preceding the data rows.
pub const PLT_HEADER_LINES: usize = 6;

/// Offset (in days) between the PLT serial-date epoch (1899-12-30) and the
/// Unix epoch (1970-01-01).
pub const SERIAL_DATE_EPOCH_OFFSET_DAYS: f64 = 25_569.0;

/// Parses the contents of a PLT file into trajectory points.
///
/// Malformed rows are skipped (the real dataset contains a handful);
/// out-of-range coordinates produce an error because they indicate a file
/// that is not actually PLT.
pub fn parse_plt(content: &str) -> Result<Vec<TrajectoryPoint>, GeoError> {
    let mut points = Vec::new();
    for line in content.lines().skip(PLT_HEADER_LINES) {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < 7 {
            continue; // malformed row
        }
        let (Ok(lat), Ok(lon)) = (fields[0].parse::<f64>(), fields[1].parse::<f64>()) else {
            continue;
        };
        let Ok(t) = parse_date_time(fields[5], fields[6]) else {
            continue;
        };
        points.push(TrajectoryPoint::try_new(lat, lon, t)?);
    }
    Ok(points)
}

/// Serialises trajectory points back to PLT format (altitude written as
/// `-777` = unknown). Round-trips through [`parse_plt`] up to second
/// precision.
pub fn write_plt(points: &[TrajectoryPoint]) -> String {
    let mut out = String::with_capacity(64 * (points.len() + PLT_HEADER_LINES));
    out.push_str("Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\n");
    out.push_str("0,2,255,My Track,0,0,2,8421376\n0\n");
    for p in points {
        let (date, time) = format_date_time(p.t);
        let serial = p.t.seconds_f64() / 86_400.0 + SERIAL_DATE_EPOCH_OFFSET_DAYS;
        out.push_str(&format!(
            "{:.6},{:.6},0,-777,{:.10},{},{}\n",
            p.lat, p.lon, serial, date, time
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_geo::Timestamp;

    const SAMPLE: &str = "Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\n0,2,255,My Track,0,0,2,8421376\n0\n39.906631,116.385564,0,492,40097.5864583333,2009-10-11,14:04:30\n39.906705,116.385592,0,492,40097.5865162037,2009-10-11,14:04:35\n";

    #[test]
    fn parses_the_documented_example() {
        let pts = parse_plt(SAMPLE).unwrap();
        assert_eq!(pts.len(), 2);
        assert!((pts[0].lat - 39.906631).abs() < 1e-9);
        assert!((pts[0].lon - 116.385564).abs() < 1e-9);
        assert_eq!(pts[1].t - pts[0].t, 5_000, "5 s apart");
    }

    #[test]
    fn skips_malformed_rows() {
        let content = format!("{SAMPLE}not,a,row\n,,,,,,\n39.9,116.4,0,10,0,2009-10-11,14:05:00\n");
        let pts = parse_plt(&content).unwrap();
        assert_eq!(pts.len(), 3, "two good + one more; two junk rows skipped");
    }

    #[test]
    fn rejects_out_of_range_coordinates() {
        let content = "h\nh\nh\nh\nh\nh\n99.0,116.4,0,10,0,2009-10-11,14:05:00\n";
        assert!(matches!(
            parse_plt(content),
            Err(GeoError::InvalidLatitude(_))
        ));
    }

    #[test]
    fn empty_file_has_no_points() {
        assert!(parse_plt("a\nb\nc\nd\ne\nf\n").unwrap().is_empty());
        assert!(parse_plt("").unwrap().is_empty());
    }

    #[test]
    fn write_parse_round_trip() {
        let original = vec![
            TrajectoryPoint::new(
                39.906631,
                116.385564,
                Timestamp::from_seconds(1_255_269_870),
            ),
            TrajectoryPoint::new(39.907, 116.386, Timestamp::from_seconds(1_255_269_875)),
            TrajectoryPoint::new(-33.5, -70.6, Timestamp::from_seconds(1_255_270_000)),
        ];
        let serialized = write_plt(&original);
        let parsed = parse_plt(&serialized).unwrap();
        assert_eq!(parsed.len(), original.len());
        for (a, b) in parsed.iter().zip(&original) {
            assert!((a.lat - b.lat).abs() < 1e-6);
            assert!((a.lon - b.lon).abs() < 1e-6);
            assert_eq!(a.t, b.t);
        }
    }

    #[test]
    fn serial_date_matches_documented_value() {
        // 2009-10-11 14:04:30 ↦ serial ≈ 40097.586458.
        let t = crate::datetime::parse_date_time("2009-10-11", "14:04:30").unwrap();
        let serial = t.seconds_f64() / 86_400.0 + SERIAL_DATE_EPOCH_OFFSET_DAYS;
        assert!((serial - 40_097.586_458_333_3).abs() < 1e-6, "{serial}");
    }
}
