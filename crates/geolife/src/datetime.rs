//! Calendar parsing for GeoLife timestamps, with no external date crate.
//!
//! GeoLife PLT rows carry `YYYY-MM-DD,HH:MM:SS` fields; `labels.txt` uses
//! `YYYY/MM/DD HH:MM:SS`. Everything is treated as UTC (GeoLife files use
//! a single consistent timezone; the experiments only ever need
//! *consistent* day grouping, not local-time correctness).

use traj_geo::{GeoError, Timestamp};

/// Days from the civil epoch 1970-01-01 to `y-m-d` (proleptic Gregorian).
/// Howard Hinnant's `days_from_civil` algorithm.
pub fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64; // [0, 399]
    let mp = (m + 9) % 12; // Mar=0 … Feb=11
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy as u64; // [0, 146096]
    era * 146_097 + doe as i64 - 719_468
}

/// Inverse of [`days_from_civil`]: `(year, month, day)` of a day count.
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Parses a date like `2009-10-11` or `2009/10/11`.
pub fn parse_date(s: &str) -> Result<i64, GeoError> {
    let norm = s.trim().replace('/', "-");
    let mut parts = norm.split('-');
    let (y, m, d) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(y), Some(m), Some(d), None) => (y, m, d),
        _ => return Err(bad(s)),
    };
    let y: i64 = y.parse().map_err(|_| bad(s))?;
    let m: u32 = m.parse().map_err(|_| bad(s))?;
    let d: u32 = d.parse().map_err(|_| bad(s))?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return Err(bad(s));
    }
    Ok(days_from_civil(y, m, d))
}

/// Parses a time like `14:04:30` into seconds since midnight.
pub fn parse_time(s: &str) -> Result<i64, GeoError> {
    let mut parts = s.trim().split(':');
    let (h, m, sec) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(h), Some(m), Some(sec), None) => (h, m, sec),
        _ => return Err(bad(s)),
    };
    let h: i64 = h.parse().map_err(|_| bad(s))?;
    let m: i64 = m.parse().map_err(|_| bad(s))?;
    let sec: i64 = sec.parse().map_err(|_| bad(s))?;
    if !(0..24).contains(&h) || !(0..60).contains(&m) || !(0..60).contains(&sec) {
        return Err(bad(s));
    }
    Ok(h * 3600 + m * 60 + sec)
}

/// Parses a PLT-style split timestamp (`2009-10-11`, `14:04:30`).
pub fn parse_date_time(date: &str, time: &str) -> Result<Timestamp, GeoError> {
    let days = parse_date(date)?;
    let secs = parse_time(time)?;
    Ok(Timestamp::from_seconds(days * 86_400 + secs))
}

/// Parses a labels.txt-style combined timestamp (`2008/04/02 11:24:21`).
pub fn parse_label_datetime(s: &str) -> Result<Timestamp, GeoError> {
    let mut parts = s.split_whitespace();
    match (parts.next(), parts.next(), parts.next()) {
        (Some(date), Some(time), None) => parse_date_time(date, time),
        _ => Err(bad(s)),
    }
}

/// Formats a timestamp back into PLT-style `(date, time)` strings.
pub fn format_date_time(t: Timestamp) -> (String, String) {
    let (y, m, d) = civil_from_days(t.day_index());
    let ms = t.millis_of_day();
    let secs = ms / 1000;
    (
        format!("{y:04}-{m:02}-{d:02}"),
        format!(
            "{:02}:{:02}:{:02}",
            secs / 3600,
            (secs / 60) % 60,
            secs % 60
        ),
    )
}

fn bad(s: &str) -> GeoError {
    GeoError::UnknownMode(format!("unparseable date/time: {s}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(1970, 1, 2), 1);
        assert_eq!(days_from_civil(1969, 12, 31), -1);
    }

    #[test]
    fn known_dates() {
        // 2000-03-01 is day 11017.
        assert_eq!(days_from_civil(2000, 3, 1), 11_017);
        // GeoLife collection start, 2007-04-01.
        assert_eq!(days_from_civil(2007, 4, 1), 13_604);
    }

    #[test]
    fn civil_round_trip() {
        for z in [-1000, -1, 0, 1, 11_017, 13_604, 20_000] {
            let (y, m, d) = civil_from_days(z);
            assert_eq!(days_from_civil(y, m, d), z, "{y}-{m}-{d}");
        }
    }

    #[test]
    fn leap_years_handled() {
        assert_eq!(
            days_from_civil(2008, 2, 29) + 1,
            days_from_civil(2008, 3, 1)
        );
        // 1900 was not a leap year, 2000 was.
        assert_eq!(
            days_from_civil(1900, 2, 28) + 1,
            days_from_civil(1900, 3, 1)
        );
        assert_eq!(
            days_from_civil(2000, 2, 28) + 2,
            days_from_civil(2000, 3, 1)
        );
    }

    #[test]
    fn parse_date_both_separators() {
        assert_eq!(
            parse_date("2009-10-11").unwrap(),
            days_from_civil(2009, 10, 11)
        );
        assert_eq!(
            parse_date("2009/10/11").unwrap(),
            days_from_civil(2009, 10, 11)
        );
        assert!(parse_date("2009-13-01").is_err());
        assert!(parse_date("2009-00-01").is_err());
        assert!(parse_date("garbage").is_err());
        assert!(parse_date("2009-10").is_err());
    }

    #[test]
    fn parse_time_validates_fields() {
        assert_eq!(parse_time("14:04:30").unwrap(), 14 * 3600 + 4 * 60 + 30);
        assert_eq!(parse_time("00:00:00").unwrap(), 0);
        assert_eq!(parse_time("23:59:59").unwrap(), 86_399);
        assert!(parse_time("24:00:00").is_err());
        assert!(parse_time("12:60:00").is_err());
        assert!(parse_time("12:00").is_err());
    }

    #[test]
    fn parse_and_format_round_trip() {
        let t = parse_date_time("2009-10-11", "14:04:30").unwrap();
        let (date, time) = format_date_time(t);
        assert_eq!(date, "2009-10-11");
        assert_eq!(time, "14:04:30");
    }

    #[test]
    fn label_datetime_format() {
        let t = parse_label_datetime("2008/04/02 11:24:21").unwrap();
        let (date, time) = format_date_time(t);
        assert_eq!(date, "2008-04-02");
        assert_eq!(time, "11:24:21");
        assert!(parse_label_datetime("2008/04/02").is_err());
        assert!(parse_label_datetime("2008/04/02 11:24:21 extra").is_err());
    }
}
