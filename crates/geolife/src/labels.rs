//! GeoLife `labels.txt` annotation tables.
//!
//! Sixty-nine users carry a `labels.txt` next to their `Trajectory/`
//! directory:
//!
//! ```text
//! Start Time\tEnd Time\tTransportation Mode
//! 2008/04/02 11:24:21\t2008/04/02 11:50:45\ttrain
//! …
//! ```
//!
//! Annotation intervals are closed on both ends; applying them to a point
//! sequence yields the [`traj_geo::LabeledPoint`]s the segmentation step
//! consumes.

use crate::datetime::parse_label_datetime;
use traj_geo::{GeoError, LabeledPoint, Timestamp, TrajectoryPoint, TransportMode};

/// One annotation interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelInterval {
    /// Inclusive start of the annotation.
    pub start: Timestamp,
    /// Inclusive end of the annotation.
    pub end: Timestamp,
    /// Annotated mode.
    pub mode: TransportMode,
}

/// Parses the contents of a `labels.txt` file.
///
/// The header line is skipped; rows with unknown modes or unparseable
/// timestamps produce an error (the real files are clean), and inverted
/// intervals are dropped.
pub fn parse_labels(content: &str) -> Result<Vec<LabelInterval>, GeoError> {
    let mut intervals = Vec::new();
    for (i, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || (i == 0 && line.to_ascii_lowercase().contains("start time")) {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 3 {
            return Err(GeoError::UnknownMode(format!(
                "labels.txt row {i} has {} fields, expected 3",
                fields.len()
            )));
        }
        let start = parse_label_datetime(fields[0])?;
        let end = parse_label_datetime(fields[1])?;
        let mode: TransportMode = fields[2].parse()?;
        if end >= start {
            intervals.push(LabelInterval { start, end, mode });
        }
    }
    intervals.sort_by_key(|iv| iv.start);
    Ok(intervals)
}

/// Annotates points with the intervals: a point falling inside an interval
/// (inclusive) receives its mode; overlapping intervals resolve to the one
/// that starts last (the annotation closest to the point's activity).
///
/// Runs in `O(n + m)` for sorted points and intervals.
pub fn apply_labels(points: &[TrajectoryPoint], intervals: &[LabelInterval]) -> Vec<LabeledPoint> {
    let mut out = Vec::with_capacity(points.len());
    let mut cursor = 0usize;
    for &p in points {
        // Advance past intervals that ended before this point.
        while cursor < intervals.len() && intervals[cursor].end < p.t {
            cursor += 1;
        }
        // Among intervals covering p (there may be a few overlapping),
        // prefer the latest-starting one.
        let mut mode = None;
        let mut j = cursor;
        while j < intervals.len() && intervals[j].start <= p.t {
            if intervals[j].end >= p.t {
                mode = Some(intervals[j].mode);
            }
            j += 1;
        }
        out.push(LabeledPoint::new(p, mode));
    }
    out
}

/// Serialises intervals back to the `labels.txt` format.
pub fn write_labels(intervals: &[LabelInterval]) -> String {
    let mut out = String::from("Start Time\tEnd Time\tTransportation Mode\n");
    for iv in intervals {
        let (d1, t1) = crate::datetime::format_date_time(iv.start);
        let (d2, t2) = crate::datetime::format_date_time(iv.end);
        out.push_str(&format!(
            "{}\t{}\t{}\n",
            format_args!("{} {}", d1.replace('-', "/"), t1),
            format_args!("{} {}", d2.replace('-', "/"), t2),
            iv.mode
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "Start Time\tEnd Time\tTransportation Mode\n2008/04/02 11:24:21\t2008/04/02 11:50:45\ttrain\n2008/04/03 01:07:03\t2008/04/03 11:31:55\ttrain\n2008/04/03 11:32:24\t2008/04/03 11:46:14\twalk\n";

    #[test]
    fn parses_the_documented_example() {
        let ivs = parse_labels(SAMPLE).unwrap();
        assert_eq!(ivs.len(), 3);
        assert_eq!(ivs[0].mode, TransportMode::Train);
        assert_eq!(ivs[2].mode, TransportMode::Walk);
        assert!(ivs[0].start < ivs[0].end);
    }

    #[test]
    fn rejects_unknown_modes_and_bad_rows() {
        assert!(parse_labels("Start Time\tEnd Time\tTransportation Mode\n2008/04/02 11:24:21\t2008/04/02 11:50:45\thovercraft\n").is_err());
        assert!(
            parse_labels("Start Time\tEnd Time\tTransportation Mode\nonly two\tfields\n").is_err()
        );
    }

    #[test]
    fn drops_inverted_intervals() {
        let ivs = parse_labels("Start Time\tEnd Time\tTransportation Mode\n2008/04/02 12:00:00\t2008/04/02 11:00:00\twalk\n").unwrap();
        assert!(ivs.is_empty());
    }

    #[test]
    fn header_is_optional() {
        let ivs = parse_labels("2008/04/02 11:24:21\t2008/04/02 11:50:45\tbus\n").unwrap();
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].mode, TransportMode::Bus);
    }

    fn pt(s: i64) -> TrajectoryPoint {
        TrajectoryPoint::new(39.9, 116.3, Timestamp::from_seconds(s))
    }

    #[test]
    fn apply_labels_annotates_inclusively() {
        let ivs = vec![LabelInterval {
            start: Timestamp::from_seconds(100),
            end: Timestamp::from_seconds(200),
            mode: TransportMode::Bike,
        }];
        let points = vec![pt(99), pt(100), pt(150), pt(200), pt(201)];
        let labeled = apply_labels(&points, &ivs);
        assert_eq!(labeled[0].mode, None);
        assert_eq!(labeled[1].mode, Some(TransportMode::Bike));
        assert_eq!(labeled[2].mode, Some(TransportMode::Bike));
        assert_eq!(labeled[3].mode, Some(TransportMode::Bike));
        assert_eq!(labeled[4].mode, None);
    }

    #[test]
    fn overlapping_intervals_prefer_latest_start() {
        let ivs = vec![
            LabelInterval {
                start: Timestamp::from_seconds(0),
                end: Timestamp::from_seconds(300),
                mode: TransportMode::Bus,
            },
            LabelInterval {
                start: Timestamp::from_seconds(100),
                end: Timestamp::from_seconds(200),
                mode: TransportMode::Walk,
            },
        ];
        let labeled = apply_labels(&[pt(50), pt(150), pt(250)], &ivs);
        assert_eq!(labeled[0].mode, Some(TransportMode::Bus));
        assert_eq!(labeled[1].mode, Some(TransportMode::Walk));
        assert_eq!(labeled[2].mode, Some(TransportMode::Bus));
    }

    #[test]
    fn unlabeled_when_no_intervals() {
        let labeled = apply_labels(&[pt(1), pt(2)], &[]);
        assert!(labeled.iter().all(|l| l.mode.is_none()));
    }

    #[test]
    fn write_parse_round_trip() {
        let ivs = parse_labels(SAMPLE).unwrap();
        let text = write_labels(&ivs);
        let reparsed = parse_labels(&text).unwrap();
        assert_eq!(ivs, reparsed);
    }
}
