//! # traj-geolife
//!
//! GeoLife dataset support for the reproduction of Etemad et al. (EDBT
//! 2019):
//!
//! * [`plt`] / [`labels`] / [`loader`] — parsers for the real GeoLife
//!   distribution (`Data/<user>/Trajectory/*.plt` files and the
//!   `labels.txt` annotation tables), so the pipeline runs unchanged on
//!   the actual dataset when it is available.
//! * [`synth`] — a calibrated **synthetic GeoLife generator**. The real
//!   dataset (5.5 M GPS points, 69 labeled users) cannot be redistributed
//!   with this repository, so every experiment here runs on synthetic
//!   trajectories that reproduce the dataset's published structure: the
//!   paper's eleven-mode label distribution, mode-specific kinematics,
//!   per-user idiosyncrasies (pace, device noise, sampling rate) and a GPS
//!   error model (random error, systematic drift, outlier spikes, signal
//!   loss). See `DESIGN.md` for the substitution rationale.
//! * [`stats`] — dataset summaries mirroring the paper's §4 description.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datetime;
pub mod export;
pub mod labels;
pub mod loader;
pub mod plt;
pub mod stats;
pub mod synth;

pub use export::write_geolife_layout;
pub use loader::load_geolife_directory;
pub use stats::DatasetStats;
pub use synth::{SynthConfig, SynthDataset};
