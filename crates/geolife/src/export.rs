//! Writing trajectories back out in the real GeoLife on-disk layout
//! (`Data/<user>/Trajectory/*.plt` + `Data/<user>/labels.txt`).
//!
//! Lets synthetic cohorts masquerade as a GeoLife download — round-trip
//! tests, demo fixtures, and interoperability with external tooling that
//! expects the original format all use this.

use crate::labels::{write_labels, LabelInterval};
use crate::plt::write_plt;
use std::fs;
use std::io;
use std::path::Path;
use traj_geo::{RawTrajectory, Timestamp, TrajectoryPoint, TransportMode};

/// Writes one PLT file plus a `labels.txt` per user under
/// `<root>/Data/<user-id>/`. Annotation intervals are derived from the
/// maximal labeled runs of each trajectory.
pub fn write_geolife_layout(trajectories: &[RawTrajectory], root: &Path) -> io::Result<()> {
    for raw in trajectories {
        let user_dir = root.join("Data").join(format!("{:03}", raw.user));
        let traj_dir = user_dir.join("Trajectory");
        fs::create_dir_all(&traj_dir)?;

        let points: Vec<TrajectoryPoint> = raw.points.iter().map(|lp| lp.point).collect();
        let file_name = points
            .first()
            .map(|p| {
                let (date, time) = crate::datetime::format_date_time(p.t);
                format!("{}{}.plt", date.replace('-', ""), time.replace(':', ""))
            })
            .unwrap_or_else(|| "00000000000000.plt".to_owned());
        fs::write(traj_dir.join(file_name), write_plt(&points))?;
        fs::write(
            user_dir.join("labels.txt"),
            write_labels(&label_intervals(raw)),
        )?;
    }
    Ok(())
}

/// Derives one annotation interval per maximal labeled run of a
/// trajectory.
pub fn label_intervals(raw: &RawTrajectory) -> Vec<LabelInterval> {
    let mut intervals = Vec::new();
    let mut i = 0usize;
    while i < raw.points.len() {
        let Some(mode) = raw.points[i].mode else {
            i += 1;
            continue;
        };
        let start: Timestamp = raw.points[i].point.t;
        let mut j = i;
        while j + 1 < raw.points.len() && raw.points[j + 1].mode == Some(mode) {
            j += 1;
        }
        intervals.push(LabelInterval {
            start,
            end: raw.points[j].point.t,
            mode,
        });
        i = j + 1;
    }
    intervals
}

/// Counts intervals per mode — a quick sanity summary for exported
/// fixtures.
pub fn interval_mode_counts(intervals: &[LabelInterval]) -> Vec<(TransportMode, usize)> {
    let mut counts: Vec<(TransportMode, usize)> = Vec::new();
    for iv in intervals {
        match counts.iter_mut().find(|(m, _)| *m == iv.mode) {
            Some((_, c)) => *c += 1,
            None => counts.push((iv.mode, 1)),
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::{load_geolife_directory, LoaderOptions};
    use crate::synth::{SynthConfig, SynthDataset};
    use traj_geo::LabeledPoint;

    #[test]
    fn label_intervals_cover_runs() {
        let pt = |s: i64| TrajectoryPoint::new(39.9, 116.3, Timestamp::from_seconds(s));
        let raw = RawTrajectory::new(
            1,
            vec![
                LabeledPoint::labeled(pt(0), TransportMode::Walk),
                LabeledPoint::labeled(pt(5), TransportMode::Walk),
                LabeledPoint::unlabeled(pt(10)),
                LabeledPoint::labeled(pt(15), TransportMode::Bus),
                LabeledPoint::labeled(pt(20), TransportMode::Bus),
                LabeledPoint::labeled(pt(25), TransportMode::Walk),
            ],
        );
        let ivs = label_intervals(&raw);
        assert_eq!(ivs.len(), 3);
        assert_eq!(ivs[0].mode, TransportMode::Walk);
        assert_eq!(ivs[0].start, Timestamp::from_seconds(0));
        assert_eq!(ivs[0].end, Timestamp::from_seconds(5));
        assert_eq!(ivs[1].mode, TransportMode::Bus);
        assert_eq!(ivs[2].mode, TransportMode::Walk);
        assert_eq!(ivs[2].start, ivs[2].end, "singleton run");

        let counts = interval_mode_counts(&ivs);
        assert!(counts.contains(&(TransportMode::Walk, 2)));
        assert!(counts.contains(&(TransportMode::Bus, 1)));
    }

    #[test]
    fn export_then_load_recovers_users() {
        let synth = SynthDataset::generate(&SynthConfig {
            n_users: 3,
            segments_per_user: (3, 5),
            ..SynthConfig::small(55)
        });
        let raws = synth.to_raw_trajectories(0);
        let root = std::env::temp_dir().join(format!("geolife_export_{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        write_geolife_layout(&raws, &root).unwrap();

        let loaded = load_geolife_directory(&root, &LoaderOptions::default()).unwrap();
        assert_eq!(loaded.len(), 3);
        for (orig, back) in raws.iter().zip(&loaded) {
            assert_eq!(orig.user, back.user);
            assert_eq!(orig.len(), back.len());
            // Mode annotations survive the text round trip exactly.
            let orig_modes: Vec<_> = orig.points.iter().map(|p| p.mode).collect();
            let back_modes: Vec<_> = back.points.iter().map(|p| p.mode).collect();
            assert_eq!(orig_modes, back_modes);
        }
        fs::remove_dir_all(&root).unwrap();
    }
}
