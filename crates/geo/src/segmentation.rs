//! Segmentation — step 1 of the paper's framework.
//!
//! "The first step groups the trajectory points by user id, day and
//! transportation modes to create sub trajectories (segmentation). Sub
//! trajectories with less than ten trajectory points were discarded to
//! avoid generating low-quality trajectories." (§3.2)
//!
//! Besides the paper's user/day/mode grouping this module offers gap-based
//! splitting (break a segment when the inter-fix interval exceeds a
//! threshold, a common pre-processing step for signal loss) and explicit
//! split-point segmentation matching the paper's §3.1 definition.

use crate::point::TrajectoryPoint;
use crate::time::MILLIS_PER_DAY;
use crate::trajectory::{RawTrajectory, Segment};
use serde::{Deserialize, Serialize};

/// Minimum number of points a segment must contain to be retained;
/// the paper discards sub-trajectories with fewer than ten points.
pub const MIN_SEGMENT_POINTS: usize = 10;

/// Configuration of the paper's segmentation step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentationConfig {
    /// Minimum points per retained segment (paper: 10).
    pub min_points: usize,
    /// Optional maximum gap between consecutive fixes, in seconds; when a
    /// larger gap occurs the segment is split there. `None` reproduces the
    /// paper exactly (no gap splitting inside a day/mode group).
    pub max_gap_s: Option<f64>,
}

impl Default for SegmentationConfig {
    fn default() -> Self {
        SegmentationConfig {
            min_points: MIN_SEGMENT_POINTS,
            max_gap_s: None,
        }
    }
}

impl SegmentationConfig {
    /// The paper's configuration: minimum 10 points, no gap splitting.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Sets the minimum segment size.
    pub fn with_min_points(mut self, min_points: usize) -> Self {
        self.min_points = min_points;
        self
    }

    /// Enables gap splitting at `max_gap_s` seconds.
    pub fn with_max_gap_s(mut self, max_gap_s: f64) -> Self {
        self.max_gap_s = Some(max_gap_s);
        self
    }
}

/// Groups a raw trajectory's labeled points by *(day, mode)* and returns
/// the resulting segments, discarding unlabeled points and segments shorter
/// than `config.min_points`.
///
/// A new segment starts whenever the calendar day changes, the annotation
/// changes (including to/from unlabeled), or — when `config.max_gap_s` is
/// set — the time gap to the previous fix exceeds the threshold.
pub fn segment_by_user_day_mode(
    trajectory: &RawTrajectory,
    config: &SegmentationConfig,
) -> Vec<Segment> {
    let mut segments = Vec::new();
    let mut current: Vec<TrajectoryPoint> = Vec::new();
    let mut current_key: Option<(i64, crate::mode::TransportMode)> = None;

    let mut flush = |buf: &mut Vec<TrajectoryPoint>,
                     key: Option<(i64, crate::mode::TransportMode)>| {
        if let Some((day, mode)) = key {
            if buf.len() >= config.min_points {
                segments.push(Segment::new(
                    trajectory.user,
                    mode,
                    day,
                    std::mem::take(buf),
                ));
            } else {
                buf.clear();
            }
        } else {
            buf.clear();
        }
    };

    for lp in &trajectory.points {
        let key = lp.mode.map(|m| (lp.point.t.day_index(), m));
        let gap_broken = match (config.max_gap_s, current.last()) {
            (Some(max_gap), Some(prev)) => lp.point.t.seconds_since(prev.t) > max_gap,
            _ => false,
        };
        if key != current_key || gap_broken {
            flush(&mut current, current_key);
            current_key = key;
        }
        if key.is_some() {
            current.push(lp.point);
        }
    }
    flush(&mut current, current_key);
    segments
}

/// Splits a segment at explicit point indices, per the paper's §3.1
/// split-point definition: split point `k` produces `points[..=k]` and
/// `points[k+1..]`. Indices must be strictly increasing and in
/// `0..len - 1`; out-of-range or unordered indices are ignored.
pub fn split_at_points(segment: &Segment, split_indices: &[usize]) -> Vec<Segment> {
    let n = segment.points.len();
    let mut out = Vec::with_capacity(split_indices.len() + 1);
    let mut start = 0usize;
    for &k in split_indices {
        if k < start || k + 1 >= n {
            continue;
        }
        out.push(Segment::new(
            segment.user,
            segment.mode,
            segment.day,
            segment.points[start..=k].to_vec(),
        ));
        start = k + 1;
    }
    if start < n {
        out.push(Segment::new(
            segment.user,
            segment.mode,
            segment.day,
            segment.points[start..].to_vec(),
        ));
    }
    out
}

/// Splits a segment wherever the interval between consecutive fixes exceeds
/// `max_gap_s` seconds, keeping only pieces of at least `min_points` fixes.
pub fn split_on_gaps(segment: &Segment, max_gap_s: f64, min_points: usize) -> Vec<Segment> {
    let mut out = Vec::new();
    let mut piece: Vec<TrajectoryPoint> = Vec::new();
    for &p in &segment.points {
        if let Some(prev) = piece.last() {
            if p.t.seconds_since(prev.t) > max_gap_s {
                if piece.len() >= min_points {
                    out.push(Segment::new(
                        segment.user,
                        segment.mode,
                        segment.day,
                        std::mem::take(&mut piece),
                    ));
                } else {
                    piece.clear();
                }
            }
        }
        piece.push(p);
    }
    if piece.len() >= min_points {
        out.push(Segment::new(segment.user, segment.mode, segment.day, piece));
    }
    out
}

/// The workspace-wide timestamp policy: a point whose timestamp does not
/// *strictly* advance past the previously kept point is dropped.
///
/// GeoLife-style logs occasionally contain duplicate or backwards
/// timestamps (device clock adjustments, parser artefacts). A zero or
/// negative `Δt` makes every rate feature (speed, acceleration, jerk,
/// bearing rates) degenerate, so both the batch pipeline
/// (`traj_features::point_features`) and the streaming sessionizer
/// (`traj-stream`) apply this same function before computing features and
/// before counting points against admission thresholds.
///
/// Returns the kept points (borrowed when nothing was dropped) and the
/// number of dropped points.
pub fn sanitize_monotonic(
    points: &[TrajectoryPoint],
) -> (std::borrow::Cow<'_, [TrajectoryPoint]>, usize) {
    let clean_until = points
        .windows(2)
        .position(|w| w[1].t.0 <= w[0].t.0)
        .map(|i| i + 1);
    let Some(first_bad) = clean_until else {
        return (std::borrow::Cow::Borrowed(points), 0);
    };
    let mut kept: Vec<TrajectoryPoint> = points[..first_bad].to_vec();
    for &p in &points[first_bad..] {
        // `kept` is non-empty: first_bad ≥ 1.
        if p.t.0 > kept.last().expect("non-empty prefix").t.0 {
            kept.push(p);
        }
    }
    let dropped = points.len() - kept.len();
    (std::borrow::Cow::Owned(kept), dropped)
}

/// Number of points of a slice that survive [`sanitize_monotonic`] —
/// the count admission thresholds must use, without allocating.
pub fn monotonic_len(points: &[TrajectoryPoint]) -> usize {
    let mut kept = 0usize;
    let mut last: Option<i64> = None;
    for p in points {
        if last.is_none_or(|t| p.t.0 > t) {
            kept += 1;
            last = Some(p.t.0);
        }
    }
    kept
}

/// Convenience: segments every trajectory of a collection and concatenates
/// the results.
pub fn segment_all(trajectories: &[RawTrajectory], config: &SegmentationConfig) -> Vec<Segment> {
    trajectories
        .iter()
        .flat_map(|t| segment_by_user_day_mode(t, config))
        .collect()
}

/// Returns the day index spanned by a millisecond timestamp; exposed for
/// tests that build day-aligned fixtures.
pub fn day_of_millis(ms: i64) -> i64 {
    ms.div_euclid(MILLIS_PER_DAY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::TransportMode;
    use crate::point::LabeledPoint;
    use crate::time::Timestamp;

    fn fix(s: i64) -> TrajectoryPoint {
        // March points eastward so they are spatially distinct.
        TrajectoryPoint::new(39.9, 116.3 + s as f64 * 1e-5, Timestamp::from_seconds(s))
    }

    fn run_of(mode: TransportMode, start_s: i64, n: usize, step_s: i64) -> Vec<LabeledPoint> {
        (0..n)
            .map(|i| LabeledPoint::labeled(fix(start_s + i as i64 * step_s), mode))
            .collect()
    }

    #[test]
    fn groups_by_mode_change() {
        let mut pts = run_of(TransportMode::Walk, 0, 12, 5);
        pts.extend(run_of(TransportMode::Bus, 100, 15, 5));
        let traj = RawTrajectory::new(3, pts);
        let segs = segment_by_user_day_mode(&traj, &SegmentationConfig::paper());
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].mode, TransportMode::Walk);
        assert_eq!(segs[0].len(), 12);
        assert_eq!(segs[1].mode, TransportMode::Bus);
        assert_eq!(segs[1].len(), 15);
        assert!(segs.iter().all(|s| s.user == 3));
    }

    #[test]
    fn groups_by_day_change() {
        let day = 86_400;
        let mut pts = run_of(TransportMode::Walk, day - 30, 12, 5);
        // Crosses midnight at the 7th point (6 fixes before, 6 after).
        let traj = RawTrajectory::new(1, pts.clone());
        let segs = segment_by_user_day_mode(&traj, &SegmentationConfig::paper().with_min_points(2));
        assert_eq!(segs.len(), 2, "split at midnight");
        assert_eq!(segs[0].day + 1, segs[1].day);

        // Without crossing midnight there is a single segment.
        pts = run_of(TransportMode::Walk, 0, 12, 5);
        let traj = RawTrajectory::new(1, pts);
        let segs = segment_by_user_day_mode(&traj, &SegmentationConfig::paper());
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].day, 0);
    }

    #[test]
    fn discards_short_segments() {
        let mut pts = run_of(TransportMode::Walk, 0, 9, 5); // below MIN_SEGMENT_POINTS
        pts.extend(run_of(TransportMode::Bike, 100, 10, 5)); // exactly at threshold
        let traj = RawTrajectory::new(1, pts);
        let segs = segment_by_user_day_mode(&traj, &SegmentationConfig::paper());
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].mode, TransportMode::Bike);
    }

    #[test]
    fn discards_unlabeled_spans() {
        let mut pts = run_of(TransportMode::Walk, 0, 12, 5);
        pts.extend((0..20).map(|i| LabeledPoint::unlabeled(fix(200 + i * 5))));
        pts.extend(run_of(TransportMode::Bus, 400, 12, 5));
        let traj = RawTrajectory::new(1, pts);
        let segs = segment_by_user_day_mode(&traj, &SegmentationConfig::paper());
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].mode, TransportMode::Walk);
        assert_eq!(segs[1].mode, TransportMode::Bus);
    }

    #[test]
    fn unlabeled_gap_breaks_a_mode_run() {
        let mut pts = run_of(TransportMode::Walk, 0, 6, 5);
        pts.push(LabeledPoint::unlabeled(fix(31)));
        pts.extend(run_of(TransportMode::Walk, 40, 6, 5));
        let traj = RawTrajectory::new(1, pts);
        // With min_points=6 both halves survive as separate segments.
        let segs = segment_by_user_day_mode(&traj, &SegmentationConfig::paper().with_min_points(6));
        assert_eq!(segs.len(), 2);
        // With the paper's min_points=10 both halves are discarded.
        let segs = segment_by_user_day_mode(&traj, &SegmentationConfig::paper());
        assert!(segs.is_empty());
    }

    #[test]
    fn gap_splitting_breaks_on_signal_loss() {
        let mut pts = run_of(TransportMode::Bus, 0, 10, 5);
        pts.extend(run_of(TransportMode::Bus, 10_000, 10, 5)); // 10 ks gap
        let traj = RawTrajectory::new(1, pts);

        let no_gap = segment_by_user_day_mode(&traj, &SegmentationConfig::paper());
        assert_eq!(no_gap.len(), 1, "paper config keeps the run together");

        let with_gap =
            segment_by_user_day_mode(&traj, &SegmentationConfig::paper().with_max_gap_s(120.0));
        assert_eq!(with_gap.len(), 2, "gap config splits at the signal loss");
    }

    #[test]
    fn split_at_points_matches_paper_definition() {
        let seg = Segment::new(
            1,
            TransportMode::Walk,
            0,
            (0..10).map(|i| fix(i * 5)).collect(),
        );
        let parts = split_at_points(&seg, &[3, 6]);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), 4); // points[0..=3]
        assert_eq!(parts[1].len(), 3); // points[4..=6]
        assert_eq!(parts[2].len(), 3); // points[7..]
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, seg.len(), "partition covers every point");
    }

    #[test]
    fn split_at_points_ignores_bad_indices() {
        let seg = Segment::new(
            1,
            TransportMode::Walk,
            0,
            (0..5).map(|i| fix(i * 5)).collect(),
        );
        // 9 out of range, 2 after 3 unordered; only 3 is honoured.
        let parts = split_at_points(&seg, &[3, 2, 9]);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].len(), 4);
        assert_eq!(parts[1].len(), 1);
    }

    #[test]
    fn split_on_gaps_filters_short_pieces() {
        let seg = {
            let mut p: Vec<TrajectoryPoint> = (0..10).map(|i| fix(i * 5)).collect();
            p.push(fix(5_000)); // lone fix after a gap
            p.extend((0..10).map(|i| fix(20_000 + i * 5)));
            Segment::new(1, TransportMode::Car, 0, p)
        };
        let parts = split_on_gaps(&seg, 60.0, 5);
        assert_eq!(parts.len(), 2, "the lone fix is dropped");
        assert!(parts.iter().all(|p| p.len() == 10));
    }

    #[test]
    fn segment_all_concatenates_users() {
        let t1 = RawTrajectory::new(1, run_of(TransportMode::Walk, 0, 12, 5));
        let t2 = RawTrajectory::new(2, run_of(TransportMode::Bike, 0, 12, 5));
        let segs = segment_all(&[t1, t2], &SegmentationConfig::paper());
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].user, 1);
        assert_eq!(segs[1].user, 2);
    }

    #[test]
    fn empty_trajectory_produces_no_segments() {
        let traj = RawTrajectory::new(1, vec![]);
        assert!(segment_by_user_day_mode(&traj, &SegmentationConfig::paper()).is_empty());
    }

    #[test]
    fn sanitize_monotonic_borrows_clean_input() {
        let pts: Vec<TrajectoryPoint> = (0..5).map(|i| fix(i * 5)).collect();
        let (kept, dropped) = sanitize_monotonic(&pts);
        assert_eq!(dropped, 0);
        assert!(matches!(kept, std::borrow::Cow::Borrowed(_)));
        assert_eq!(kept.len(), 5);
        assert_eq!(monotonic_len(&pts), 5);
    }

    #[test]
    fn sanitize_monotonic_drops_duplicates_and_regressions() {
        // t = 0, 5, 5 (dup), 3 (backwards), 10, 10 (dup), 20
        let ts = [0, 5, 5, 3, 10, 10, 20];
        let pts: Vec<TrajectoryPoint> = ts.iter().map(|&s| fix(s)).collect();
        let (kept, dropped) = sanitize_monotonic(&pts);
        assert_eq!(dropped, 3);
        let kept_ts: Vec<i64> = kept.iter().map(|p| p.t.0 / 1000).collect();
        assert_eq!(kept_ts, vec![0, 5, 10, 20]);
        assert_eq!(monotonic_len(&pts), kept.len());
        // Kept points keep their original coordinates.
        assert_eq!(kept[1].lon, pts[1].lon);
    }

    #[test]
    fn sanitize_monotonic_degenerate_inputs() {
        assert_eq!(sanitize_monotonic(&[]).0.len(), 0);
        assert_eq!(monotonic_len(&[]), 0);
        let one = [fix(7)];
        let (kept, dropped) = sanitize_monotonic(&one);
        assert_eq!((kept.len(), dropped), (1, 0));
        // All-duplicate input keeps only the first point.
        let dups: Vec<TrajectoryPoint> = (0..4).map(|_| fix(9)).collect();
        let (kept, dropped) = sanitize_monotonic(&dups);
        assert_eq!((kept.len(), dropped), (1, 3));
    }
}
