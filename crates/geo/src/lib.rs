//! # traj-geo
//!
//! Trajectory data model, geodesy, and segmentation primitives underlying the
//! transportation-mode prediction framework of Etemad, Soares Júnior and
//! Matwin, *"On Feature Selection and Evaluation of Transportation Mode
//! Prediction Strategies"* (EDBT 2019).
//!
//! The crate provides:
//!
//! * [`TrajectoryPoint`] / [`LabeledPoint`] — a GPS fix `(latitude,
//!   longitude, timestamp)`, optionally annotated with a [`TransportMode`].
//! * [`RawTrajectory`] — the sequence of fixes recorded by one user.
//! * [`Segment`] — a sub-trajectory obtained by grouping a raw trajectory by
//!   *(user, day, transportation mode)*; the classification unit of the
//!   paper (its §3.1 "sub-trajectory").
//! * [`geodesy`] — haversine distance, initial bearing and destination-point
//!   computations on the WGS-84 mean sphere.
//! * [`segmentation`] — the paper's step 1: grouping labeled points into
//!   segments and discarding segments with fewer than
//!   [`segmentation::MIN_SEGMENT_POINTS`] points.
//! * [`simplify`] — Douglas–Peucker polyline simplification.
//! * [`walk_segmentation`] — label-free change-point segmentation via the
//!   walk/non-walk heuristic of Zheng et al. (2008).
//! * [`staypoints`] — stay-point detection (Li et al., 2008), the trip
//!   boundary primitive of semantic-trajectory pipelines.
//! * [`mode`] — the eleven GeoLife transportation modes and the label
//!   groupings used by the paper's comparison experiments
//!   ([`mode::LabelScheme`]).
//!
//! All coordinates are in decimal degrees, all timestamps in milliseconds
//! since the Unix epoch, and all derived quantities in SI units (metres,
//! seconds, metres/second).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod geodesy;
pub mod mode;
pub mod point;
pub mod segmentation;
pub mod simplify;
pub mod staypoints;
pub mod time;
pub mod trajectory;
pub mod walk_segmentation;

pub use error::GeoError;
pub use mode::{LabelScheme, TransportMode};
pub use point::{LabeledPoint, TrajectoryPoint};
pub use segmentation::{
    monotonic_len, sanitize_monotonic, segment_by_user_day_mode, SegmentationConfig,
};
pub use simplify::douglas_peucker;
pub use time::Timestamp;
pub use trajectory::{RawTrajectory, Segment, UserId};
