//! Great-circle geodesy on the WGS-84 mean sphere.
//!
//! The paper computes inter-point distance with the haversine formula and a
//! bearing between consecutive points (§3.2, step 2). We also provide the
//! inverse *destination point* computation, which the synthetic GeoLife
//! generator uses to integrate simulated motion.

use crate::point::TrajectoryPoint;

/// Mean Earth radius in metres (IUGG mean radius `R1`).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Haversine great-circle distance between two coordinates, in metres.
///
/// Accurate to ~0.5 % of true WGS-84 geodesic distance, which is far below
/// GPS noise for the inter-point distances (metres to a few hundred metres)
/// this pipeline works with.
///
/// ```
/// use traj_geo::geodesy::haversine_m;
/// // Beijing → Tianjin ≈ 113 km.
/// let d = haversine_m(39.9042, 116.4074, 39.0842, 117.2009);
/// assert!((110_000.0..118_000.0).contains(&d));
/// ```
pub fn haversine_m(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    let (phi1, phi2) = (lat1.to_radians(), lat2.to_radians());
    let dphi = (lat2 - lat1).to_radians();
    let dlambda = (lon2 - lon1).to_radians();

    let a = (dphi / 2.0).sin().powi(2) + phi1.cos() * phi2.cos() * (dlambda / 2.0).sin().powi(2);
    // Clamp guards the asin domain against floating-point drift for
    // antipodal points.
    2.0 * EARTH_RADIUS_M * a.sqrt().min(1.0).asin()
}

/// Haversine distance between two trajectory points, in metres.
pub fn point_distance_m(a: &TrajectoryPoint, b: &TrajectoryPoint) -> f64 {
    haversine_m(a.lat, a.lon, b.lat, b.lon)
}

/// Initial great-circle bearing from `(lat1, lon1)` toward `(lat2, lon2)`,
/// in degrees clockwise from true north, normalised to `[0, 360)`.
///
/// For coincident points the bearing is defined as `0.0`.
pub fn initial_bearing_deg(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    let (phi1, phi2) = (lat1.to_radians(), lat2.to_radians());
    let dlambda = (lon2 - lon1).to_radians();

    let y = dlambda.sin() * phi2.cos();
    let x = phi1.cos() * phi2.sin() - phi1.sin() * phi2.cos() * dlambda.cos();
    if y == 0.0 && x == 0.0 {
        return 0.0;
    }
    let theta = y.atan2(x).to_degrees();
    theta.rem_euclid(360.0)
}

/// Initial bearing between two trajectory points, degrees in `[0, 360)`.
pub fn point_bearing_deg(a: &TrajectoryPoint, b: &TrajectoryPoint) -> f64 {
    initial_bearing_deg(a.lat, a.lon, b.lat, b.lon)
}

/// Great-circle destination: starting at `(lat, lon)`, travel `distance_m`
/// metres along `bearing_deg` (clockwise from north). Returns the
/// destination `(lat, lon)` in degrees, longitude normalised to
/// `[-180, 180)`.
pub fn destination(lat: f64, lon: f64, bearing_deg: f64, distance_m: f64) -> (f64, f64) {
    let delta = distance_m / EARTH_RADIUS_M;
    let theta = bearing_deg.to_radians();
    let phi1 = lat.to_radians();
    let lambda1 = lon.to_radians();

    let phi2 = (phi1.sin() * delta.cos() + phi1.cos() * delta.sin() * theta.cos())
        .clamp(-1.0, 1.0)
        .asin();
    let lambda2 = lambda1
        + (theta.sin() * delta.sin() * phi1.cos()).atan2(delta.cos() - phi1.sin() * phi2.sin());

    let lon2 = (lambda2.to_degrees() + 540.0).rem_euclid(360.0) - 180.0;
    (phi2.to_degrees(), lon2)
}

/// Smallest absolute angular difference between two bearings, in degrees
/// `[0, 180]`. Used by heading-dynamics tests and the synthetic generator.
pub fn bearing_difference_deg(b1: f64, b2: f64) -> f64 {
    let d = (b2 - b1).rem_euclid(360.0);
    d.min(360.0 - d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn pt(lat: f64, lon: f64) -> TrajectoryPoint {
        TrajectoryPoint::new(lat, lon, Timestamp::from_seconds(0))
    }

    #[test]
    fn zero_distance_for_identical_points() {
        assert_eq!(haversine_m(39.9, 116.4, 39.9, 116.4), 0.0);
    }

    #[test]
    fn known_distance_beijing_to_tianjin() {
        // Beijing (39.9042, 116.4074) to Tianjin (39.0842, 117.2009):
        // roughly 113–114 km.
        let d = haversine_m(39.9042, 116.4074, 39.0842, 117.2009);
        assert!((110_000.0..118_000.0).contains(&d), "distance {d}");
    }

    #[test]
    fn one_degree_latitude_is_about_111km() {
        let d = haversine_m(0.0, 0.0, 1.0, 0.0);
        assert!((d - 111_195.0).abs() < 100.0, "distance {d}");
    }

    #[test]
    fn distance_is_symmetric() {
        let d1 = haversine_m(10.0, 20.0, -5.0, 133.0);
        let d2 = haversine_m(-5.0, 133.0, 10.0, 20.0);
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn antipodal_distance_is_half_circumference() {
        let d = haversine_m(0.0, 0.0, 0.0, 180.0);
        let half = std::f64::consts::PI * EARTH_RADIUS_M;
        assert!((d - half).abs() < 1.0, "distance {d} vs {half}");
    }

    #[test]
    fn cardinal_bearings() {
        assert!((initial_bearing_deg(0.0, 0.0, 1.0, 0.0) - 0.0).abs() < 1e-9); // north
        assert!((initial_bearing_deg(0.0, 0.0, 0.0, 1.0) - 90.0).abs() < 1e-9); // east
        assert!((initial_bearing_deg(0.0, 0.0, -1.0, 0.0) - 180.0).abs() < 1e-9); // south
        assert!((initial_bearing_deg(0.0, 0.0, 0.0, -1.0) - 270.0).abs() < 1e-9);
        // west
    }

    #[test]
    fn bearing_of_coincident_points_is_zero() {
        assert_eq!(initial_bearing_deg(45.0, 45.0, 45.0, 45.0), 0.0);
    }

    #[test]
    fn bearing_is_normalised() {
        for (lat2, lon2) in [(0.5, -0.5), (-0.3, -0.9), (0.9, 0.1), (-1.0, 1.0)] {
            let b = initial_bearing_deg(0.0, 0.0, lat2, lon2);
            assert!((0.0..360.0).contains(&b), "bearing {b}");
        }
    }

    #[test]
    fn destination_inverts_haversine_and_bearing() {
        let (lat1, lon1) = (39.98, 116.30);
        for bearing in [0.0, 37.0, 123.0, 251.0, 359.0] {
            for dist in [5.0, 250.0, 12_000.0] {
                let (lat2, lon2) = destination(lat1, lon1, bearing, dist);
                let d = haversine_m(lat1, lon1, lat2, lon2);
                assert!((d - dist).abs() < 1e-3, "round-trip distance {d} vs {dist}");
                let b = initial_bearing_deg(lat1, lon1, lat2, lon2);
                assert!(
                    bearing_difference_deg(b, bearing) < 0.01,
                    "round-trip bearing {b} vs {bearing}"
                );
            }
        }
    }

    #[test]
    fn destination_normalises_longitude_across_antimeridian() {
        let (_lat, lon) = destination(0.0, 179.9, 90.0, 50_000.0);
        assert!((-180.0..180.0).contains(&lon), "longitude {lon}");
    }

    #[test]
    fn point_helpers_match_scalar_functions() {
        let a = pt(39.9, 116.3);
        let b = pt(40.0, 116.5);
        assert_eq!(
            point_distance_m(&a, &b),
            haversine_m(39.9, 116.3, 40.0, 116.5)
        );
        assert_eq!(
            point_bearing_deg(&a, &b),
            initial_bearing_deg(39.9, 116.3, 40.0, 116.5)
        );
    }

    #[test]
    fn bearing_difference_wraps_correctly() {
        assert_eq!(bearing_difference_deg(350.0, 10.0), 20.0);
        assert_eq!(bearing_difference_deg(10.0, 350.0), 20.0);
        assert_eq!(bearing_difference_deg(0.0, 180.0), 180.0);
        assert_eq!(bearing_difference_deg(90.0, 90.0), 0.0);
    }
}
