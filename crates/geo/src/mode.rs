//! The eleven GeoLife transportation modes and the label groupings used by
//! the paper's experiments.
//!
//! GeoLife annotations use eleven modes (§4 of the paper, with the fraction
//! of GPS records per mode): taxi (4.41 %), car (9.40 %), train (10.19 %),
//! subway (5.68 %), walk (29.35 %), airplane (0.16 %), boat (0.06 %), bike
//! (17.34 %), run (0.03 %), motorcycle (0.006 %) and bus (23.33 %).
//!
//! The comparison experiments remap these raw modes:
//!
//! * **[Dabiri & Heaslip 2018]** (`LabelScheme::Dabiri`): walk, bike, bus,
//!   *driving* (car + taxi) and *train* (train + subway) — five classes.
//! * **[Endo et al. 2016]** (`LabelScheme::Endo`): the frequent raw modes
//!   kept separate — walk, bike, bus, car, taxi, subway, train.

use crate::error::GeoError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A GeoLife transportation-mode annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum TransportMode {
    Walk,
    Bike,
    Bus,
    Car,
    Taxi,
    Subway,
    Train,
    Airplane,
    Boat,
    Run,
    Motorcycle,
}

impl TransportMode {
    /// All eleven modes, in a fixed canonical order.
    pub const ALL: [TransportMode; 11] = [
        TransportMode::Walk,
        TransportMode::Bike,
        TransportMode::Bus,
        TransportMode::Car,
        TransportMode::Taxi,
        TransportMode::Subway,
        TransportMode::Train,
        TransportMode::Airplane,
        TransportMode::Boat,
        TransportMode::Run,
        TransportMode::Motorcycle,
    ];

    /// Fraction of GeoLife GPS records carrying this mode, as published in
    /// §4 of the paper. Sums to ≈ 1 over [`TransportMode::ALL`].
    pub const fn geolife_fraction(self) -> f64 {
        match self {
            TransportMode::Walk => 0.2935,
            TransportMode::Bike => 0.1734,
            TransportMode::Bus => 0.2333,
            TransportMode::Car => 0.0940,
            TransportMode::Taxi => 0.0441,
            TransportMode::Subway => 0.0568,
            TransportMode::Train => 0.1019,
            TransportMode::Airplane => 0.0016,
            TransportMode::Boat => 0.0006,
            TransportMode::Run => 0.0003,
            TransportMode::Motorcycle => 0.00006,
        }
    }

    /// The lowercase canonical name, matching GeoLife `labels.txt` strings.
    pub const fn name(self) -> &'static str {
        match self {
            TransportMode::Walk => "walk",
            TransportMode::Bike => "bike",
            TransportMode::Bus => "bus",
            TransportMode::Car => "car",
            TransportMode::Taxi => "taxi",
            TransportMode::Subway => "subway",
            TransportMode::Train => "train",
            TransportMode::Airplane => "airplane",
            TransportMode::Boat => "boat",
            TransportMode::Run => "run",
            TransportMode::Motorcycle => "motorcycle",
        }
    }

    /// Canonical dense index of this mode inside [`TransportMode::ALL`].
    pub fn index(self) -> usize {
        TransportMode::ALL
            .iter()
            .position(|&m| m == self)
            .expect("mode present in ALL")
    }
}

impl fmt::Display for TransportMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for TransportMode {
    type Err = GeoError;

    /// Parses a GeoLife `labels.txt` mode string.
    ///
    /// Parsing is case-insensitive and tolerates the aliases found in the
    /// raw dataset (`"motorcycle"`/`"motocycle"` and `"run"`/`"running"`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "walk" => Ok(TransportMode::Walk),
            "bike" => Ok(TransportMode::Bike),
            "bus" => Ok(TransportMode::Bus),
            "car" => Ok(TransportMode::Car),
            "taxi" => Ok(TransportMode::Taxi),
            "subway" => Ok(TransportMode::Subway),
            "train" => Ok(TransportMode::Train),
            "airplane" | "plane" => Ok(TransportMode::Airplane),
            "boat" => Ok(TransportMode::Boat),
            "run" | "running" => Ok(TransportMode::Run),
            "motorcycle" | "motocycle" => Ok(TransportMode::Motorcycle),
            other => Err(GeoError::UnknownMode(other.to_owned())),
        }
    }
}

/// A target-label grouping: which raw modes are kept, and how they are
/// merged into prediction classes.
///
/// The paper runs each experiment under the label scheme of the work it
/// compares against (§4.1, §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LabelScheme {
    /// All eleven raw GeoLife modes, unmerged.
    Raw,
    /// [Dabiri & Heaslip 2018]: walk, bike, bus, driving (car+taxi),
    /// train (train+subway). Five classes.
    Dabiri,
    /// [Endo et al. 2016]: walk, bike, bus, car, taxi, subway, train kept
    /// separate. Seven classes.
    Endo,
}

impl LabelScheme {
    /// Maps a raw mode to this scheme's class index, or `None` when the
    /// mode is excluded from the scheme.
    pub fn class_of(self, mode: TransportMode) -> Option<usize> {
        match self {
            LabelScheme::Raw => Some(mode.index()),
            LabelScheme::Dabiri => match mode {
                TransportMode::Walk => Some(0),
                TransportMode::Bike => Some(1),
                TransportMode::Bus => Some(2),
                TransportMode::Car | TransportMode::Taxi => Some(3),
                TransportMode::Train | TransportMode::Subway => Some(4),
                _ => None,
            },
            LabelScheme::Endo => match mode {
                TransportMode::Walk => Some(0),
                TransportMode::Bike => Some(1),
                TransportMode::Bus => Some(2),
                TransportMode::Car => Some(3),
                TransportMode::Taxi => Some(4),
                TransportMode::Subway => Some(5),
                TransportMode::Train => Some(6),
                _ => None,
            },
        }
    }

    /// Number of prediction classes under this scheme.
    pub const fn n_classes(self) -> usize {
        match self {
            LabelScheme::Raw => 11,
            LabelScheme::Dabiri => 5,
            LabelScheme::Endo => 7,
        }
    }

    /// Human-readable names of the prediction classes, indexed by
    /// [`LabelScheme::class_of`].
    pub fn class_names(self) -> Vec<&'static str> {
        match self {
            LabelScheme::Raw => TransportMode::ALL.iter().map(|m| m.name()).collect(),
            LabelScheme::Dabiri => vec!["walk", "bike", "bus", "driving", "train"],
            LabelScheme::Endo => {
                vec!["walk", "bike", "bus", "car", "taxi", "subway", "train"]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let total: f64 = TransportMode::ALL
            .iter()
            .map(|m| m.geolife_fraction())
            .sum();
        assert!((total - 1.0).abs() < 0.01, "fractions sum to {total}");
    }

    #[test]
    fn parse_round_trips_canonical_names() {
        for &m in &TransportMode::ALL {
            assert_eq!(m.name().parse::<TransportMode>().unwrap(), m);
        }
    }

    #[test]
    fn parse_is_case_insensitive_and_handles_aliases() {
        assert_eq!(
            "WALK".parse::<TransportMode>().unwrap(),
            TransportMode::Walk
        );
        assert_eq!(
            " Bus ".parse::<TransportMode>().unwrap(),
            TransportMode::Bus
        );
        assert_eq!(
            "motocycle".parse::<TransportMode>().unwrap(),
            TransportMode::Motorcycle
        );
        assert_eq!(
            "running".parse::<TransportMode>().unwrap(),
            TransportMode::Run
        );
        assert_eq!(
            "plane".parse::<TransportMode>().unwrap(),
            TransportMode::Airplane
        );
    }

    #[test]
    fn parse_rejects_unknown_modes() {
        assert!(matches!(
            "hovercraft".parse::<TransportMode>(),
            Err(GeoError::UnknownMode(_))
        ));
    }

    #[test]
    fn index_is_position_in_all() {
        for (i, &m) in TransportMode::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
    }

    #[test]
    fn dabiri_scheme_merges_driving_and_rail() {
        let s = LabelScheme::Dabiri;
        assert_eq!(
            s.class_of(TransportMode::Car),
            s.class_of(TransportMode::Taxi)
        );
        assert_eq!(
            s.class_of(TransportMode::Train),
            s.class_of(TransportMode::Subway)
        );
        assert_ne!(
            s.class_of(TransportMode::Walk),
            s.class_of(TransportMode::Bike)
        );
        assert_eq!(s.class_of(TransportMode::Airplane), None);
        assert_eq!(s.n_classes(), 5);
        assert_eq!(s.class_names().len(), 5);
    }

    #[test]
    fn endo_scheme_keeps_frequent_modes_separate() {
        let s = LabelScheme::Endo;
        let classes: Vec<_> = [
            TransportMode::Walk,
            TransportMode::Bike,
            TransportMode::Bus,
            TransportMode::Car,
            TransportMode::Taxi,
            TransportMode::Subway,
            TransportMode::Train,
        ]
        .iter()
        .map(|&m| s.class_of(m).unwrap())
        .collect();
        let mut sorted = classes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 7, "all seven classes distinct");
        assert_eq!(s.class_of(TransportMode::Boat), None);
        assert_eq!(s.n_classes(), 7);
    }

    #[test]
    fn raw_scheme_covers_every_mode() {
        let s = LabelScheme::Raw;
        for &m in &TransportMode::ALL {
            assert!(s.class_of(m).is_some());
        }
        assert_eq!(s.n_classes(), 11);
        assert_eq!(s.class_names().len(), 11);
    }

    #[test]
    fn class_indices_are_dense() {
        for scheme in [LabelScheme::Raw, LabelScheme::Dabiri, LabelScheme::Endo] {
            let mut seen = vec![false; scheme.n_classes()];
            for &m in &TransportMode::ALL {
                if let Some(c) = scheme.class_of(m) {
                    assert!(c < scheme.n_classes());
                    seen[c] = true;
                }
            }
            assert!(
                seen.iter().all(|&b| b),
                "{scheme:?} has unused class indices"
            );
        }
    }
}
