//! Raw trajectories and segments (the paper's sub-trajectories).

use crate::error::GeoError;
use crate::geodesy;
use crate::mode::TransportMode;
use crate::point::{LabeledPoint, TrajectoryPoint};
use crate::time::Timestamp;
use serde::{Deserialize, Serialize};

/// Identifier of a GeoLife user (the dataset numbers its 182 directories;
/// 69 of them carry mode labels).
pub type UserId = u32;

/// A raw trajectory: every fix recorded for one user, in capture order.
///
/// Matches the paper's §3.1 raw trajectory `τ = (l_i, …, l_n)`. Points may
/// carry optional transportation-mode annotations (GeoLife labels cover
/// only part of each recording).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawTrajectory {
    /// Owner of the trajectory.
    pub user: UserId,
    /// Fixes in capture order.
    pub points: Vec<LabeledPoint>,
}

impl RawTrajectory {
    /// Creates a raw trajectory without validation.
    pub fn new(user: UserId, points: Vec<LabeledPoint>) -> Self {
        RawTrajectory { user, points }
    }

    /// Validates the trajectory: non-empty, all coordinates legal, and
    /// strictly increasing capture times.
    pub fn validate(&self) -> Result<(), GeoError> {
        if self.points.is_empty() {
            return Err(GeoError::EmptyTrajectory);
        }
        for (i, lp) in self.points.iter().enumerate() {
            TrajectoryPoint::try_new(lp.point.lat, lp.point.lon, lp.point.t)?;
            if i > 0 && lp.point.t <= self.points[i - 1].point.t {
                return Err(GeoError::NonMonotonicTime { index: i });
            }
        }
        Ok(())
    }

    /// Number of fixes.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the trajectory holds no fixes.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Fraction of fixes carrying a mode annotation.
    pub fn labeled_fraction(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let labeled = self.points.iter().filter(|p| p.mode.is_some()).count();
        labeled as f64 / self.points.len() as f64
    }
}

/// A sub-trajectory: one user's consecutive fixes sharing a calendar day
/// and a transportation mode. The classification sample of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Owner of the segment; the grouping key of user-oriented
    /// cross-validation.
    pub user: UserId,
    /// Ground-truth transportation mode of every fix in the segment.
    pub mode: TransportMode,
    /// UTC day index (days since the Unix epoch) the segment belongs to.
    pub day: i64,
    /// Fixes in capture order.
    pub points: Vec<TrajectoryPoint>,
}

impl Segment {
    /// Creates a segment without validation.
    pub fn new(user: UserId, mode: TransportMode, day: i64, points: Vec<TrajectoryPoint>) -> Self {
        Segment {
            user,
            mode,
            day,
            points,
        }
    }

    /// Number of fixes.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the segment holds no fixes.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Wall-clock span from first to last fix, in seconds. Zero for
    /// segments with fewer than two points.
    pub fn duration_s(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(first), Some(last)) => last.t.seconds_since(first.t),
            _ => 0.0,
        }
    }

    /// Sum of haversine distances between consecutive fixes, in metres.
    pub fn path_length_m(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| geodesy::point_distance_m(&w[0], &w[1]))
            .sum()
    }

    /// Mean speed over the whole segment (path length / duration), m/s.
    /// Zero when the duration is zero.
    pub fn mean_speed_ms(&self) -> f64 {
        let dur = self.duration_s();
        if dur > 0.0 {
            self.path_length_m() / dur
        } else {
            0.0
        }
    }

    /// Capture time of the first fix.
    ///
    /// # Panics
    /// Panics when the segment is empty.
    pub fn start_time(&self) -> Timestamp {
        self.points.first().expect("non-empty segment").t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fix(lat: f64, lon: f64, s: i64) -> TrajectoryPoint {
        TrajectoryPoint::new(lat, lon, Timestamp::from_seconds(s))
    }

    fn walk(p: TrajectoryPoint) -> LabeledPoint {
        LabeledPoint::labeled(p, TransportMode::Walk)
    }

    #[test]
    fn validate_accepts_well_formed_trajectory() {
        let t = RawTrajectory::new(
            1,
            vec![walk(fix(39.9, 116.3, 0)), walk(fix(39.901, 116.3, 5))],
        );
        assert!(t.validate().is_ok());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn validate_rejects_empty() {
        let t = RawTrajectory::new(1, vec![]);
        assert_eq!(t.validate(), Err(GeoError::EmptyTrajectory));
        assert!(t.is_empty());
    }

    #[test]
    fn validate_rejects_time_regression_and_duplicates() {
        let regressed =
            RawTrajectory::new(1, vec![walk(fix(0.0, 0.0, 10)), walk(fix(0.0, 0.0, 5))]);
        assert_eq!(
            regressed.validate(),
            Err(GeoError::NonMonotonicTime { index: 1 })
        );
        let duplicate =
            RawTrajectory::new(1, vec![walk(fix(0.0, 0.0, 10)), walk(fix(0.0, 0.0, 10))]);
        assert_eq!(
            duplicate.validate(),
            Err(GeoError::NonMonotonicTime { index: 1 })
        );
    }

    #[test]
    fn validate_rejects_bad_coordinates() {
        let t = RawTrajectory::new(1, vec![walk(fix(91.0, 0.0, 0))]);
        assert_eq!(t.validate(), Err(GeoError::InvalidLatitude(91.0)));
    }

    #[test]
    fn labeled_fraction_counts_annotations() {
        let t = RawTrajectory::new(
            1,
            vec![
                walk(fix(0.0, 0.0, 0)),
                LabeledPoint::unlabeled(fix(0.0, 0.0, 1)),
                walk(fix(0.0, 0.0, 2)),
                LabeledPoint::unlabeled(fix(0.0, 0.0, 3)),
            ],
        );
        assert_eq!(t.labeled_fraction(), 0.5);
        assert_eq!(RawTrajectory::new(1, vec![]).labeled_fraction(), 0.0);
    }

    #[test]
    fn segment_duration_and_length() {
        // Two fixes 60 s apart, ~111 m apart (0.001 degrees latitude).
        let s = Segment::new(
            7,
            TransportMode::Bike,
            0,
            vec![fix(39.9, 116.3, 0), fix(39.901, 116.3, 60)],
        );
        assert_eq!(s.duration_s(), 60.0);
        let len = s.path_length_m();
        assert!((len - 111.2).abs() < 1.0, "path length {len}");
        let v = s.mean_speed_ms();
        assert!((v - len / 60.0).abs() < 1e-12);
        assert_eq!(s.start_time(), Timestamp::from_seconds(0));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn degenerate_segments_have_zero_kinematics() {
        let empty = Segment::new(1, TransportMode::Walk, 0, vec![]);
        assert_eq!(empty.duration_s(), 0.0);
        assert_eq!(empty.path_length_m(), 0.0);
        assert_eq!(empty.mean_speed_ms(), 0.0);
        assert!(empty.is_empty());

        let single = Segment::new(1, TransportMode::Walk, 0, vec![fix(0.0, 0.0, 0)]);
        assert_eq!(single.duration_s(), 0.0);
        assert_eq!(single.mean_speed_ms(), 0.0);
    }
}
