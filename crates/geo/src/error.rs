//! Error type shared by the trajectory model.

use std::fmt;

/// Errors raised while constructing or validating trajectory data.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// A latitude outside the valid range `[-90, 90]` degrees.
    InvalidLatitude(f64),
    /// A longitude outside the valid range `[-180, 180]` degrees.
    InvalidLongitude(f64),
    /// A coordinate or timestamp that is NaN or infinite.
    NonFiniteValue(&'static str),
    /// Points of a trajectory are not sorted by strictly increasing time.
    NonMonotonicTime {
        /// Index of the offending point (the one that is not later than its
        /// predecessor).
        index: usize,
    },
    /// An operation that requires a non-empty trajectory received an empty
    /// one.
    EmptyTrajectory,
    /// An unknown transportation-mode label string.
    UnknownMode(String),
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::InvalidLatitude(v) => {
                write!(f, "latitude {v} outside [-90, 90] degrees")
            }
            GeoError::InvalidLongitude(v) => {
                write!(f, "longitude {v} outside [-180, 180] degrees")
            }
            GeoError::NonFiniteValue(what) => write!(f, "non-finite {what}"),
            GeoError::NonMonotonicTime { index } => {
                write!(f, "timestamp at index {index} is not after its predecessor")
            }
            GeoError::EmptyTrajectory => write!(f, "trajectory contains no points"),
            GeoError::UnknownMode(s) => write!(f, "unknown transportation mode label: {s:?}"),
        }
    }
}

impl std::error::Error for GeoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(GeoError::InvalidLatitude(99.0).to_string().contains("99"));
        assert!(GeoError::InvalidLongitude(-200.0)
            .to_string()
            .contains("-200"));
        assert!(GeoError::NonFiniteValue("latitude")
            .to_string()
            .contains("latitude"));
        assert!(GeoError::NonMonotonicTime { index: 7 }
            .to_string()
            .contains('7'));
        assert!(GeoError::EmptyTrajectory.to_string().contains("no points"));
        assert!(GeoError::UnknownMode("hovercraft".into())
            .to_string()
            .contains("hovercraft"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<GeoError>();
    }
}
