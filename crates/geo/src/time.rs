//! Timestamps and calendar-day arithmetic.
//!
//! The paper segments raw trajectories *daily* before splitting by
//! transportation mode (§3.2, step 1). We therefore need a timestamp type
//! with cheap "which day is this?" arithmetic. Timestamps are stored as
//! milliseconds since the Unix epoch, which comfortably covers the GeoLife
//! collection period (2007–2012) at far better than GPS resolution.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// Milliseconds in one second.
pub const MILLIS_PER_SECOND: i64 = 1_000;
/// Milliseconds in one minute.
pub const MILLIS_PER_MINUTE: i64 = 60 * MILLIS_PER_SECOND;
/// Milliseconds in one hour.
pub const MILLIS_PER_HOUR: i64 = 60 * MILLIS_PER_MINUTE;
/// Milliseconds in one (UTC) day.
pub const MILLIS_PER_DAY: i64 = 24 * MILLIS_PER_HOUR;

/// A point in time, in milliseconds since the Unix epoch (UTC).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// Creates a timestamp from milliseconds since the Unix epoch.
    pub const fn from_millis(ms: i64) -> Self {
        Timestamp(ms)
    }

    /// Creates a timestamp from whole seconds since the Unix epoch.
    pub const fn from_seconds(s: i64) -> Self {
        Timestamp(s * MILLIS_PER_SECOND)
    }

    /// Creates a timestamp from fractional seconds since the Unix epoch.
    ///
    /// Sub-millisecond precision is truncated; GeoLife logs at 1–5 s
    /// intervals so nothing meaningful is lost.
    pub fn from_seconds_f64(s: f64) -> Self {
        Timestamp((s * MILLIS_PER_SECOND as f64) as i64)
    }

    /// Milliseconds since the Unix epoch.
    pub const fn millis(self) -> i64 {
        self.0
    }

    /// Seconds since the Unix epoch, as a float.
    pub fn seconds_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_SECOND as f64
    }

    /// The UTC calendar day this timestamp falls on, counted as whole days
    /// since the Unix epoch. Used as the "day" key of the paper's daily
    /// segmentation.
    pub const fn day_index(self) -> i64 {
        self.0.div_euclid(MILLIS_PER_DAY)
    }

    /// Milliseconds elapsed since UTC midnight of the timestamp's day.
    pub const fn millis_of_day(self) -> i64 {
        self.0.rem_euclid(MILLIS_PER_DAY)
    }

    /// Elapsed seconds from `earlier` to `self` (negative when `self` is
    /// before `earlier`).
    pub fn seconds_since(self, earlier: Timestamp) -> f64 {
        (self.0 - earlier.0) as f64 / MILLIS_PER_SECOND as f64
    }
}

impl Add<i64> for Timestamp {
    type Output = Timestamp;
    /// Advances the timestamp by `rhs` milliseconds.
    fn add(self, rhs: i64) -> Timestamp {
        Timestamp(self.0 + rhs)
    }
}

impl Sub for Timestamp {
    type Output = i64;
    /// Difference in milliseconds.
    fn sub(self, rhs: Timestamp) -> i64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (day, ms) = (self.day_index(), self.millis_of_day());
        let (h, rem) = (ms / MILLIS_PER_HOUR, ms % MILLIS_PER_HOUR);
        let (m, rem) = (rem / MILLIS_PER_MINUTE, rem % MILLIS_PER_MINUTE);
        let (s, ms) = (rem / MILLIS_PER_SECOND, rem % MILLIS_PER_SECOND);
        write!(f, "day{day}+{h:02}:{m:02}:{s:02}.{ms:03}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = Timestamp::from_seconds(1_234_567);
        assert_eq!(t.millis(), 1_234_567_000);
        assert_eq!(t.seconds_f64(), 1_234_567.0);
        assert_eq!(Timestamp::from_seconds_f64(1.5).millis(), 1_500);
    }

    #[test]
    fn day_index_splits_at_midnight() {
        let just_before = Timestamp::from_millis(MILLIS_PER_DAY - 1);
        let midnight = Timestamp::from_millis(MILLIS_PER_DAY);
        assert_eq!(just_before.day_index(), 0);
        assert_eq!(midnight.day_index(), 1);
        assert_eq!(midnight.millis_of_day(), 0);
    }

    #[test]
    fn day_index_handles_pre_epoch_times() {
        // div_euclid keeps days contiguous across the epoch.
        let t = Timestamp::from_millis(-1);
        assert_eq!(t.day_index(), -1);
        assert_eq!(t.millis_of_day(), MILLIS_PER_DAY - 1);
    }

    #[test]
    fn seconds_since_is_signed() {
        let a = Timestamp::from_seconds(100);
        let b = Timestamp::from_seconds(130);
        assert_eq!(b.seconds_since(a), 30.0);
        assert_eq!(a.seconds_since(b), -30.0);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Timestamp::from_millis(500);
        assert_eq!((a + 250).millis(), 750);
        assert_eq!(a + 250 - a, 250);
    }

    #[test]
    fn display_formats_time_of_day() {
        let t = Timestamp::from_millis(
            MILLIS_PER_DAY
                + 3 * MILLIS_PER_HOUR
                + 4 * MILLIS_PER_MINUTE
                + 5 * MILLIS_PER_SECOND
                + 6,
        );
        assert_eq!(t.to_string(), "day1+03:04:05.006");
    }

    #[test]
    fn ordering_follows_millis() {
        assert!(Timestamp::from_millis(1) < Timestamp::from_millis(2));
        assert_eq!(Timestamp::default(), Timestamp::from_millis(0));
    }
}
