//! Trajectory simplification (Douglas–Peucker).
//!
//! Not a step of the paper's framework, but standard trajectory-library
//! functionality: GPS logs at 1–5 s cadence are heavily oversampled on
//! straight stretches, and downstream consumers (visualisation, storage,
//! map matching) routinely simplify first. The reproduction also uses it
//! to probe feature robustness: percentile features should degrade
//! gracefully under mild simplification.

use crate::point::TrajectoryPoint;

/// Simplifies a polyline of GPS fixes with the Douglas–Peucker
/// algorithm: a fix is kept when it deviates more than `epsilon_m` metres
/// from the straight line between the retained fixes around it. The first
/// and last fixes are always kept; capture order is preserved.
pub fn douglas_peucker(points: &[TrajectoryPoint], epsilon_m: f64) -> Vec<TrajectoryPoint> {
    if points.len() <= 2 {
        return points.to_vec();
    }
    let mut keep = vec![false; points.len()];
    keep[0] = true;
    keep[points.len() - 1] = true;
    simplify_range(points, 0, points.len() - 1, epsilon_m, &mut keep);
    points
        .iter()
        .zip(&keep)
        .filter_map(|(p, &k)| k.then_some(*p))
        .collect()
}

fn simplify_range(
    points: &[TrajectoryPoint],
    first: usize,
    last: usize,
    epsilon_m: f64,
    keep: &mut [bool],
) {
    if last <= first + 1 {
        return;
    }
    let (mut max_dist, mut max_idx) = (0.0f64, first);
    for i in first + 1..last {
        let d = perpendicular_distance_m(&points[i], &points[first], &points[last]);
        if d > max_dist {
            max_dist = d;
            max_idx = i;
        }
    }
    if max_dist > epsilon_m {
        keep[max_idx] = true;
        simplify_range(points, first, max_idx, epsilon_m, keep);
        simplify_range(points, max_idx, last, epsilon_m, keep);
    }
}

/// Perpendicular distance (metres) of `p` from the segment `a`–`b`, via a
/// local equirectangular projection centred on `a`. Exact enough for the
/// sub-kilometre spans simplification operates on.
pub fn perpendicular_distance_m(
    p: &TrajectoryPoint,
    a: &TrajectoryPoint,
    b: &TrajectoryPoint,
) -> f64 {
    const M_PER_DEG: f64 = 111_320.0;
    let cos_lat = a.lat.to_radians().cos();
    let (px, py) = (
        (p.lon - a.lon) * M_PER_DEG * cos_lat,
        (p.lat - a.lat) * M_PER_DEG,
    );
    let (bx, by) = (
        (b.lon - a.lon) * M_PER_DEG * cos_lat,
        (b.lat - a.lat) * M_PER_DEG,
    );

    let len_sq = bx * bx + by * by;
    if len_sq == 0.0 {
        return (px * px + py * py).sqrt();
    }
    // Project p onto the segment, clamping to its ends.
    let t = ((px * bx + py * by) / len_sq).clamp(0.0, 1.0);
    let (dx, dy) = (px - t * bx, py - t * by);
    (dx * dx + dy * dy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn pt(lat: f64, lon: f64, s: i64) -> TrajectoryPoint {
        TrajectoryPoint::new(lat, lon, Timestamp::from_seconds(s))
    }

    #[test]
    fn straight_line_collapses_to_endpoints() {
        let points: Vec<TrajectoryPoint> = (0..20)
            .map(|i| pt(39.9 + i as f64 * 1e-4, 116.3, i))
            .collect();
        let simplified = douglas_peucker(&points, 1.0);
        assert_eq!(simplified.len(), 2);
        assert_eq!(simplified[0], points[0]);
        assert_eq!(simplified[1], points[19]);
    }

    #[test]
    fn corner_is_retained() {
        // North for 10 fixes then east for 10: the corner must survive.
        let mut points = Vec::new();
        for i in 0..10 {
            points.push(pt(39.9 + i as f64 * 1e-4, 116.3, i));
        }
        for i in 0..10 {
            points.push(pt(39.9009, 116.3 + (i + 1) as f64 * 1e-4, 10 + i));
        }
        let simplified = douglas_peucker(&points, 2.0);
        assert!(simplified.len() >= 3, "{}", simplified.len());
        // The corner fix (index 9) is among the retained ones.
        assert!(simplified.iter().any(|p| p == &points[9]));
    }

    #[test]
    fn epsilon_zero_keeps_every_deviating_point() {
        let points = vec![
            pt(0.0, 0.0, 0),
            pt(0.0005, 0.001, 1), // off the straight line
            pt(0.0, 0.002, 2),
        ];
        let simplified = douglas_peucker(&points, 0.0);
        assert_eq!(simplified.len(), 3);
    }

    #[test]
    fn huge_epsilon_keeps_only_endpoints() {
        let points: Vec<TrajectoryPoint> = (0..15)
            .map(|i| pt(39.9 + (i % 3) as f64 * 1e-4, 116.3 + i as f64 * 1e-4, i))
            .collect();
        let simplified = douglas_peucker(&points, 1e9);
        assert_eq!(simplified.len(), 2);
    }

    #[test]
    fn short_inputs_pass_through() {
        assert!(douglas_peucker(&[], 1.0).is_empty());
        let one = vec![pt(1.0, 2.0, 0)];
        assert_eq!(douglas_peucker(&one, 1.0), one);
        let two = vec![pt(1.0, 2.0, 0), pt(1.1, 2.1, 1)];
        assert_eq!(douglas_peucker(&two, 1.0), two);
    }

    #[test]
    fn time_order_is_preserved_and_small_jitter_removed() {
        // A big dog-leg at the middle plus ~5 m jitter everywhere: a 15 m
        // epsilon must drop the jitter but keep the corner.
        let points: Vec<TrajectoryPoint> = (0..30)
            .map(|i| {
                let jitter = if i % 2 == 0 { 0.0 } else { 5e-5 };
                let east = if i < 15 { 0.0 } else { (i - 15) as f64 * 2e-4 };
                pt(39.9 + i as f64 * 1e-4, 116.3 + east + jitter, i)
            })
            .collect();
        let simplified = douglas_peucker(&points, 15.0);
        assert!(simplified.windows(2).all(|w| w[0].t < w[1].t));
        assert!(simplified.len() < points.len(), "jitter removed");
        assert!(
            simplified.len() > 2,
            "the dog-leg survives: {}",
            simplified.len()
        );
    }

    #[test]
    fn perpendicular_distance_basics() {
        let a = pt(0.0, 0.0, 0);
        let b = pt(0.0, 0.001, 1); // ~111 m east
                                   // A point 0.0005° north of the midpoint: ~55.66 m off the line.
        let p = pt(0.0005, 0.0005, 0);
        let d = perpendicular_distance_m(&p, &a, &b);
        assert!((d - 55.66).abs() < 0.5, "distance {d}");
        // A point on the line has zero distance.
        let on = pt(0.0, 0.0005, 0);
        assert!(perpendicular_distance_m(&on, &a, &b) < 1e-9);
        // Degenerate segment: distance to the point a.
        let d0 = perpendicular_distance_m(&p, &a, &a);
        assert!(d0 > 55.0, "distance {d0}");
        // Beyond the segment end, distance clamps to the endpoint.
        let beyond = pt(0.0, 0.002, 0);
        let d_end = perpendicular_distance_m(&beyond, &a, &b);
        assert!((d_end - 111.32).abs() < 1.0, "distance {d_end}");
    }
}
