//! Stay-point detection (Li et al., 2008).
//!
//! A *stay point* is a region where a moving object lingers — home, the
//! office, a bus terminus. Detecting them is the other classic GeoLife
//! primitive (Li, Zheng et al., *"Mining user similarity based on
//! location history"*), and the paper's related-work thread on semantic
//! trajectories builds on exactly this notion. For mode prediction, stay
//! points double as candidate trip boundaries: trips start and end where
//! people stay.
//!
//! The algorithm: scan forward from each anchor fix; if every fix within
//! `distance_threshold_m` of the anchor spans at least
//! `duration_threshold_s`, emit the group's centroid as a stay point and
//! continue after it.

use crate::geodesy;
use crate::point::TrajectoryPoint;
use crate::time::Timestamp;
use serde::{Deserialize, Serialize};

/// Parameters of [`detect_stay_points`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StayPointConfig {
    /// Maximum distance from the anchor fix, metres (Li et al. use 200).
    pub distance_threshold_m: f64,
    /// Minimum dwell time, seconds (Li et al. use 30 min; 20 min here —
    /// GeoLife trips are urban).
    pub duration_threshold_s: f64,
}

impl Default for StayPointConfig {
    fn default() -> Self {
        StayPointConfig {
            distance_threshold_m: 200.0,
            duration_threshold_s: 20.0 * 60.0,
        }
    }
}

/// A detected stay point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StayPoint {
    /// Mean latitude of the contributing fixes.
    pub lat: f64,
    /// Mean longitude of the contributing fixes.
    pub lon: f64,
    /// Arrival time (first contributing fix).
    pub arrival: Timestamp,
    /// Departure time (last contributing fix).
    pub departure: Timestamp,
    /// Index range `[start, end)` of the contributing fixes.
    pub start_index: usize,
    /// Exclusive end index.
    pub end_index: usize,
}

impl StayPoint {
    /// Dwell duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.departure.seconds_since(self.arrival)
    }
}

/// Detects stay points in a time-ordered fix sequence.
pub fn detect_stay_points(points: &[TrajectoryPoint], config: &StayPointConfig) -> Vec<StayPoint> {
    let n = points.len();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < n {
        // Extend j while every fix stays near the anchor i.
        let mut j = i + 1;
        while j < n
            && geodesy::point_distance_m(&points[i], &points[j]) <= config.distance_threshold_m
        {
            j += 1;
        }
        // Fixes i..j are within the radius; check the dwell time.
        let dwell = points[j - 1].t.seconds_since(points[i].t);
        if j > i + 1 && dwell >= config.duration_threshold_s {
            let count = (j - i) as f64;
            let lat = points[i..j].iter().map(|p| p.lat).sum::<f64>() / count;
            let lon = points[i..j].iter().map(|p| p.lon).sum::<f64>() / count;
            out.push(StayPoint {
                lat,
                lon,
                arrival: points[i].t,
                departure: points[j - 1].t,
                start_index: i,
                end_index: j,
            });
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

/// Splits a fix sequence into trips at the detected stay points: the
/// returned pieces are the movement spans between consecutive stays,
/// dropping pieces shorter than `min_points`.
pub fn split_at_stay_points(
    points: &[TrajectoryPoint],
    stay_points: &[StayPoint],
    min_points: usize,
) -> Vec<Vec<TrajectoryPoint>> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for sp in stay_points {
        if sp.start_index > start && sp.start_index - start >= min_points {
            out.push(points[start..sp.start_index].to_vec());
        }
        start = sp.end_index;
    }
    if points.len() > start && points.len() - start >= min_points {
        out.push(points[start..].to_vec());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geodesy::destination;

    fn pt(lat: f64, lon: f64, s: i64) -> TrajectoryPoint {
        TrajectoryPoint::new(lat, lon, Timestamp::from_seconds(s))
    }

    /// A commute: move 10 min, dwell 30 min in one spot, move again.
    fn commute() -> Vec<TrajectoryPoint> {
        let mut points = Vec::new();
        let (mut lat, mut lon) = (39.9, 116.3);
        let mut t = 0i64;
        for _ in 0..60 {
            points.push(pt(lat, lon, t));
            let (nlat, nlon) = destination(lat, lon, 90.0, 50.0); // 5 m/s
            lat = nlat;
            lon = nlon;
            t += 10;
        }
        // Dwell: 30 min of small jitter (< 50 m).
        let (home_lat, home_lon) = (lat, lon);
        for k in 0..180 {
            let (jlat, jlon) = destination(
                home_lat,
                home_lon,
                (k * 37 % 360) as f64,
                (k % 5) as f64 * 8.0,
            );
            points.push(pt(jlat, jlon, t));
            t += 10;
        }
        for _ in 0..60 {
            let (nlat, nlon) = destination(lat, lon, 0.0, 50.0);
            lat = nlat;
            lon = nlon;
            points.push(pt(lat, lon, t));
            t += 10;
        }
        points
    }

    #[test]
    fn detects_the_dwell() {
        let points = commute();
        let sps = detect_stay_points(&points, &StayPointConfig::default());
        assert_eq!(sps.len(), 1, "exactly the 30-minute dwell");
        let sp = &sps[0];
        assert!(sp.duration_s() >= 20.0 * 60.0, "{}", sp.duration_s());
        assert!(
            sp.start_index >= 55 && sp.start_index <= 65,
            "{}",
            sp.start_index
        );
        // Centroid is near the dwell location.
        let d = crate::geodesy::haversine_m(sp.lat, sp.lon, points[70].lat, points[70].lon);
        assert!(d < 100.0, "centroid {d} m from a dwell fix");
    }

    #[test]
    fn continuous_motion_has_no_stay_points() {
        let mut points = Vec::new();
        let (mut lat, mut lon) = (39.9, 116.3);
        for i in 0..300 {
            points.push(pt(lat, lon, i * 10));
            let (nlat, nlon) = destination(lat, lon, 45.0, 60.0);
            lat = nlat;
            lon = nlon;
        }
        assert!(detect_stay_points(&points, &StayPointConfig::default()).is_empty());
    }

    #[test]
    fn short_pauses_are_ignored() {
        // A 5-minute pause is below the 20-minute threshold.
        let mut points = Vec::new();
        let (mut lat, mut lon) = (39.9, 116.3);
        let mut t = 0i64;
        for _ in 0..30 {
            points.push(pt(lat, lon, t));
            let (nlat, nlon) = destination(lat, lon, 90.0, 60.0);
            lat = nlat;
            lon = nlon;
            t += 10;
        }
        for _ in 0..30 {
            points.push(pt(lat, lon, t));
            t += 10;
        }
        for _ in 0..30 {
            let (nlat, nlon) = destination(lat, lon, 90.0, 60.0);
            lat = nlat;
            lon = nlon;
            points.push(pt(lat, lon, t));
            t += 10;
        }
        assert!(detect_stay_points(&points, &StayPointConfig::default()).is_empty());
        // But a permissive config finds it.
        let permissive = StayPointConfig {
            distance_threshold_m: 100.0,
            duration_threshold_s: 120.0,
        };
        assert_eq!(detect_stay_points(&points, &permissive).len(), 1);
    }

    #[test]
    fn split_at_stay_points_extracts_trips() {
        let points = commute();
        let sps = detect_stay_points(&points, &StayPointConfig::default());
        let trips = split_at_stay_points(&points, &sps, 10);
        assert_eq!(trips.len(), 2, "before and after the dwell");
        assert!(trips[0].len() >= 50);
        assert!(trips[1].len() >= 50);
        // Trips don't overlap the stay.
        let sp = &sps[0];
        assert!(trips[0].len() <= sp.start_index);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(detect_stay_points(&[], &StayPointConfig::default()).is_empty());
        assert!(detect_stay_points(&[pt(0.0, 0.0, 0)], &StayPointConfig::default()).is_empty());
        let trips = split_at_stay_points(&[], &[], 1);
        assert!(trips.is_empty());
    }
}
