//! Walk-based change-point segmentation (Zheng et al., 2008).
//!
//! The paper's segmentation (step 1) uses the ground-truth annotations —
//! §3.2 concedes "the assumption that the transportation modes are
//! available for test set segmentation is invalid since we are going to
//! predict them". The practical alternative, introduced by Zheng et al.
//! (the paper's citation [30]) and used by most deployed pipelines, is
//! **walk-based segmentation**: people change transportation modes by
//! walking between them, so classifying each fix as *walk* or *non-walk*
//! by speed/acceleration thresholds and cutting at the transitions yields
//! candidate mode-change points without any labels.
//!
//! This module implements that heuristic: per-fix walk classification,
//! short-run merging (GPS noise produces spurious flips), and
//! change-point extraction into unlabeled sub-trajectories ready for the
//! feature pipeline.

use crate::geodesy;
use crate::trajectory::Segment;
use crate::TrajectoryPoint;
use serde::{Deserialize, Serialize};

/// Thresholds of the walk/non-walk classifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WalkSegmentationConfig {
    /// A fix is walk-compatible when its speed is below this, m/s
    /// (Zheng et al. use ~1.8–2.5).
    pub max_walk_speed_ms: f64,
    /// …and its acceleration magnitude below this, m/s².
    pub max_walk_accel_ms2: f64,
    /// Runs shorter than this many fixes are merged into their
    /// neighbours (certainty filtering).
    pub min_run_points: usize,
    /// Emitted sub-trajectories shorter than this are dropped.
    pub min_segment_points: usize,
}

impl Default for WalkSegmentationConfig {
    fn default() -> Self {
        WalkSegmentationConfig {
            max_walk_speed_ms: 2.3,
            max_walk_accel_ms2: 1.5,
            min_run_points: 8,
            min_segment_points: 10,
        }
    }
}

/// Classifies each fix as walk-compatible (`true`) or not, from local
/// speed and acceleration.
pub fn classify_walk_points(
    points: &[TrajectoryPoint],
    config: &WalkSegmentationConfig,
) -> Vec<bool> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    // Local speeds (head back-filled, same convention as point features).
    let mut speed = vec![0.0f64; n];
    for i in 1..n {
        let dt = points[i].t.seconds_since(points[i - 1].t);
        let d = geodesy::point_distance_m(&points[i - 1], &points[i]);
        speed[i] = if dt > 0.0 { d / dt } else { 0.0 };
    }
    if n > 1 {
        speed[0] = speed[1];
    }
    let mut accel = vec![0.0f64; n];
    for i in 1..n {
        let dt = points[i].t.seconds_since(points[i - 1].t);
        accel[i] = if dt > 0.0 {
            (speed[i] - speed[i - 1]) / dt
        } else {
            0.0
        };
    }
    if n > 1 {
        accel[0] = accel[1];
    }
    speed
        .iter()
        .zip(&accel)
        .map(|(&v, &a)| v <= config.max_walk_speed_ms && a.abs() <= config.max_walk_accel_ms2)
        .collect()
}

/// Merges runs shorter than `min_run_points` into the preceding run's
/// class (the head short-run inherits from its successor).
pub fn merge_short_runs(mut flags: Vec<bool>, min_run_points: usize) -> Vec<bool> {
    if flags.is_empty() || min_run_points <= 1 {
        return flags;
    }
    loop {
        let runs = runs_of(&flags);
        // Find the shortest run below the threshold (interior first).
        let Some(&(start, len)) = runs
            .iter()
            .filter(|&&(_, len)| len < min_run_points)
            .min_by_key(|&&(_, len)| len)
        else {
            return flags;
        };
        if runs.len() == 1 {
            return flags; // a single run, nothing to merge into
        }
        let new_class = if start == 0 {
            flags[start + len] // head run inherits from its successor
        } else {
            flags[start - 1]
        };
        for f in flags.iter_mut().skip(start).take(len) {
            *f = new_class;
        }
    }
}

/// Splits a point sequence at walk/non-walk transitions. Returns
/// `(sub_trajectories, change_point_indices)`; sub-trajectories shorter
/// than `config.min_segment_points` are dropped but still contribute
/// their change points.
pub fn walk_based_segmentation(
    points: &[TrajectoryPoint],
    config: &WalkSegmentationConfig,
) -> (Vec<Vec<TrajectoryPoint>>, Vec<usize>) {
    let flags = merge_short_runs(classify_walk_points(points, config), config.min_run_points);
    let mut parts = Vec::new();
    let mut change_points = Vec::new();
    let mut start = 0usize;
    for i in 1..flags.len() {
        if flags[i] != flags[i - 1] {
            change_points.push(i);
            if i - start >= config.min_segment_points {
                parts.push(points[start..i].to_vec());
            }
            start = i;
        }
    }
    if flags.len() - start >= config.min_segment_points && !flags.is_empty() {
        parts.push(points[start..].to_vec());
    }
    (parts, change_points)
}

/// Scores a proposed segmentation against ground-truth segments: the
/// fraction of true mode boundaries that have a predicted change point
/// within `tolerance_points` positions (boundary recall).
pub fn boundary_recall(
    true_segments: &[Segment],
    predicted_change_points: &[usize],
    tolerance_points: usize,
) -> f64 {
    // True boundaries are the cumulative segment ends (excluding the
    // final end-of-data boundary).
    let mut boundaries = Vec::new();
    let mut cursor = 0usize;
    for seg in &true_segments[..true_segments.len().saturating_sub(1)] {
        cursor += seg.len();
        boundaries.push(cursor);
    }
    if boundaries.is_empty() {
        return 1.0;
    }
    let hit = boundaries
        .iter()
        .filter(|&&b| {
            predicted_change_points
                .iter()
                .any(|&p| p.abs_diff(b) <= tolerance_points)
        })
        .count();
    hit as f64 / boundaries.len() as f64
}

fn runs_of(flags: &[bool]) -> Vec<(usize, usize)> {
    let mut runs = Vec::new();
    let mut start = 0usize;
    for i in 1..flags.len() {
        if flags[i] != flags[i - 1] {
            runs.push((start, i - start));
            start = i;
        }
    }
    if !flags.is_empty() {
        runs.push((start, flags.len() - start));
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geodesy::destination;
    use crate::time::Timestamp;

    /// Fixes at `speed` m/s for `n` steps of 2 s, continuing from `from`.
    fn extend_at_speed(points: &mut Vec<TrajectoryPoint>, speed: f64, n: usize) {
        let (mut lat, mut lon, mut t) = match points.last() {
            Some(p) => (p.lat, p.lon, p.t.millis() / 1000),
            None => (39.9, 116.3, 0),
        };
        for _ in 0..n {
            let (nlat, nlon) = destination(lat, lon, 90.0, speed * 2.0);
            lat = nlat;
            lon = nlon;
            t += 2;
            points.push(TrajectoryPoint::new(lat, lon, Timestamp::from_seconds(t)));
        }
    }

    #[test]
    fn classify_separates_walk_from_drive() {
        let mut points = vec![TrajectoryPoint::new(
            39.9,
            116.3,
            Timestamp::from_seconds(0),
        )];
        extend_at_speed(&mut points, 1.3, 15); // walk
        extend_at_speed(&mut points, 12.0, 15); // drive
        let flags = classify_walk_points(&points, &WalkSegmentationConfig::default());
        assert!(flags[2], "walking fix classified as walk");
        assert!(!flags[25], "driving fix classified as non-walk");
    }

    #[test]
    fn merge_short_runs_removes_flickers() {
        let mut flags = vec![true; 20];
        flags[7] = false; // single-fix GPS flicker
        flags[8] = false;
        let merged = merge_short_runs(flags, 5);
        assert!(merged.iter().all(|&f| f), "flicker absorbed");

        // A genuine long run survives.
        let mut flags = vec![true; 20];
        for f in flags.iter_mut().skip(8).take(12) {
            *f = false;
        }
        let merged = merge_short_runs(flags.clone(), 5);
        assert_eq!(merged, flags);
    }

    #[test]
    fn merge_handles_head_runs_and_degenerate_input() {
        // Short head run inherits from its successor.
        let mut flags = vec![false, false, true, true, true, true, true, true];
        flags = merge_short_runs(flags, 3);
        assert!(flags.iter().all(|&f| f));
        assert!(merge_short_runs(vec![], 3).is_empty());
        assert_eq!(merge_short_runs(vec![true], 3), vec![true]);
        // All-one-run input unchanged even when short.
        assert_eq!(merge_short_runs(vec![false; 2], 5), vec![false; 2]);
    }

    #[test]
    fn segmentation_finds_the_mode_change() {
        let mut points = vec![TrajectoryPoint::new(
            39.9,
            116.3,
            Timestamp::from_seconds(0),
        )];
        extend_at_speed(&mut points, 1.2, 30); // walk
        extend_at_speed(&mut points, 11.0, 30); // bus ride
        extend_at_speed(&mut points, 1.2, 30); // walk again
        let (parts, change_points) =
            walk_based_segmentation(&points, &WalkSegmentationConfig::default());
        assert_eq!(parts.len(), 3, "three sub-trajectories");
        assert_eq!(change_points.len(), 2, "two mode changes");
        // Change points near the true boundaries (31 and 61).
        assert!(change_points[0].abs_diff(31) <= 3, "{change_points:?}");
        assert!(change_points[1].abs_diff(61) <= 3, "{change_points:?}");
        // Sub-trajectory point totals do not exceed the input.
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert!(total <= points.len());
    }

    #[test]
    fn constant_motion_yields_single_segment() {
        let mut points = vec![TrajectoryPoint::new(
            39.9,
            116.3,
            Timestamp::from_seconds(0),
        )];
        extend_at_speed(&mut points, 9.0, 40);
        let (parts, change_points) =
            walk_based_segmentation(&points, &WalkSegmentationConfig::default());
        assert_eq!(parts.len(), 1);
        assert!(change_points.is_empty());
        assert_eq!(parts[0].len(), points.len());
    }

    #[test]
    fn empty_input_is_harmless() {
        let (parts, cps) = walk_based_segmentation(&[], &WalkSegmentationConfig::default());
        assert!(parts.is_empty());
        assert!(cps.is_empty());
    }

    #[test]
    fn boundary_recall_scores_hits_and_misses() {
        use crate::mode::TransportMode;
        let seg = |n: usize| {
            Segment::new(
                1,
                TransportMode::Walk,
                0,
                (0..n)
                    .map(|i| TrajectoryPoint::new(39.9, 116.3, Timestamp::from_seconds(i as i64)))
                    .collect(),
            )
        };
        let truth = vec![seg(30), seg(30), seg(30)]; // boundaries at 30, 60
        assert_eq!(boundary_recall(&truth, &[29, 62], 3), 1.0);
        assert_eq!(boundary_recall(&truth, &[29], 3), 0.5);
        assert_eq!(boundary_recall(&truth, &[], 3), 0.0);
        // Single segment: no interior boundaries → trivially perfect.
        assert_eq!(boundary_recall(&truth[..1], &[], 3), 1.0);
    }
}
