//! GPS fixes: the paper's *trajectory point* `l_i = (x_i, y_i, t_i)` (§3.1).

use crate::error::GeoError;
use crate::mode::TransportMode;
use crate::time::Timestamp;
use serde::{Deserialize, Serialize};

/// A single GPS fix: latitude and longitude in decimal degrees plus a
/// capture timestamp.
///
/// The paper's §3.1 defines a trajectory point as `l_i = (x_i, y_i, t_i)`
/// with longitude `x ∈ [-180°, 180°]`, latitude `y ∈ [-90°, 90°]` and
/// strictly increasing capture times within a trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryPoint {
    /// Latitude in decimal degrees, in `[-90, 90]`.
    pub lat: f64,
    /// Longitude in decimal degrees, in `[-180, 180]`.
    pub lon: f64,
    /// Capture time.
    pub t: Timestamp,
}

impl TrajectoryPoint {
    /// Creates a point without validating coordinate ranges.
    ///
    /// Useful for trusted generators and parsers that validate separately;
    /// prefer [`TrajectoryPoint::try_new`] for untrusted input.
    pub const fn new(lat: f64, lon: f64, t: Timestamp) -> Self {
        TrajectoryPoint { lat, lon, t }
    }

    /// Creates a point, validating that the coordinates are finite and in
    /// range.
    pub fn try_new(lat: f64, lon: f64, t: Timestamp) -> Result<Self, GeoError> {
        if !lat.is_finite() {
            return Err(GeoError::NonFiniteValue("latitude"));
        }
        if !lon.is_finite() {
            return Err(GeoError::NonFiniteValue("longitude"));
        }
        if !(-90.0..=90.0).contains(&lat) {
            return Err(GeoError::InvalidLatitude(lat));
        }
        if !(-180.0..=180.0).contains(&lon) {
            return Err(GeoError::InvalidLongitude(lon));
        }
        Ok(TrajectoryPoint { lat, lon, t })
    }

    /// `true` when both coordinates are finite and within their legal
    /// ranges.
    pub fn is_valid(&self) -> bool {
        self.lat.is_finite()
            && self.lon.is_finite()
            && (-90.0..=90.0).contains(&self.lat)
            && (-180.0..=180.0).contains(&self.lon)
    }
}

/// A trajectory point optionally annotated with a transportation mode.
///
/// GeoLife annotations cover only part of each user's recording, so a point
/// may be unlabeled (`mode == None`); the paper discards unlabeled spans
/// during segmentation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LabeledPoint {
    /// The GPS fix.
    pub point: TrajectoryPoint,
    /// The annotated transportation mode, when the fix falls inside a
    /// labeled interval.
    pub mode: Option<TransportMode>,
}

impl LabeledPoint {
    /// Creates a labeled point.
    pub const fn new(point: TrajectoryPoint, mode: Option<TransportMode>) -> Self {
        LabeledPoint { point, mode }
    }

    /// Shorthand for an annotated point.
    pub const fn labeled(point: TrajectoryPoint, mode: TransportMode) -> Self {
        LabeledPoint {
            point,
            mode: Some(mode),
        }
    }

    /// Shorthand for an unannotated point.
    pub const fn unlabeled(point: TrajectoryPoint) -> Self {
        LabeledPoint { point, mode: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: i64) -> Timestamp {
        Timestamp::from_seconds(s)
    }

    #[test]
    fn try_new_accepts_valid_coordinates() {
        let p = TrajectoryPoint::try_new(39.9, 116.3, ts(0)).unwrap();
        assert!(p.is_valid());
        assert_eq!(p.lat, 39.9);
        assert_eq!(p.lon, 116.3);
    }

    #[test]
    fn try_new_accepts_boundary_coordinates() {
        assert!(TrajectoryPoint::try_new(90.0, 180.0, ts(0)).is_ok());
        assert!(TrajectoryPoint::try_new(-90.0, -180.0, ts(0)).is_ok());
    }

    #[test]
    fn try_new_rejects_out_of_range() {
        assert_eq!(
            TrajectoryPoint::try_new(90.1, 0.0, ts(0)),
            Err(GeoError::InvalidLatitude(90.1))
        );
        assert_eq!(
            TrajectoryPoint::try_new(0.0, -180.5, ts(0)),
            Err(GeoError::InvalidLongitude(-180.5))
        );
    }

    #[test]
    fn try_new_rejects_non_finite() {
        assert_eq!(
            TrajectoryPoint::try_new(f64::NAN, 0.0, ts(0)),
            Err(GeoError::NonFiniteValue("latitude"))
        );
        assert_eq!(
            TrajectoryPoint::try_new(0.0, f64::INFINITY, ts(0)),
            Err(GeoError::NonFiniteValue("longitude"))
        );
    }

    #[test]
    fn unchecked_new_reports_invalidity() {
        let p = TrajectoryPoint::new(200.0, 0.0, ts(0));
        assert!(!p.is_valid());
    }

    #[test]
    fn labeled_point_constructors() {
        let p = TrajectoryPoint::new(1.0, 2.0, ts(3));
        assert_eq!(
            LabeledPoint::labeled(p, TransportMode::Walk).mode,
            Some(TransportMode::Walk)
        );
        assert_eq!(LabeledPoint::unlabeled(p).mode, None);
        assert_eq!(LabeledPoint::new(p, None), LabeledPoint::unlabeled(p));
    }
}
