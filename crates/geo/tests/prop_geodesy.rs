//! Property-based tests for geodesy and segmentation invariants.

use proptest::prelude::*;
use traj_geo::geodesy::{
    bearing_difference_deg, destination, haversine_m, initial_bearing_deg, EARTH_RADIUS_M,
};
use traj_geo::segmentation::{segment_by_user_day_mode, SegmentationConfig};
use traj_geo::{LabeledPoint, RawTrajectory, Timestamp, TrajectoryPoint, TransportMode};

fn lat() -> impl Strategy<Value = f64> {
    -85.0..85.0f64
}

fn lon() -> impl Strategy<Value = f64> {
    -179.0..179.0f64
}

proptest! {
    #[test]
    fn haversine_is_nonnegative_and_bounded(a in lat(), b in lon(), c in lat(), d in lon()) {
        let dist = haversine_m(a, b, c, d);
        prop_assert!(dist >= 0.0);
        // No two points are farther apart than half the circumference.
        prop_assert!(dist <= std::f64::consts::PI * EARTH_RADIUS_M + 1.0);
    }

    #[test]
    fn haversine_is_symmetric(a in lat(), b in lon(), c in lat(), d in lon()) {
        let d1 = haversine_m(a, b, c, d);
        let d2 = haversine_m(c, d, a, b);
        prop_assert!((d1 - d2).abs() < 1e-6, "{d1} vs {d2}");
    }

    #[test]
    fn haversine_identity_of_indiscernibles(a in lat(), b in lon()) {
        prop_assert_eq!(haversine_m(a, b, a, b), 0.0);
    }

    #[test]
    fn triangle_inequality_holds(
        a in lat(), b in lon(), c in lat(), d in lon(), e in lat(), f in lon()
    ) {
        let ab = haversine_m(a, b, c, d);
        let bc = haversine_m(c, d, e, f);
        let ac = haversine_m(a, b, e, f);
        // Great-circle distance is a metric; allow floating-point slack.
        prop_assert!(ac <= ab + bc + 1e-6, "{ac} > {ab} + {bc}");
    }

    #[test]
    fn bearing_is_in_range(a in lat(), b in lon(), c in lat(), d in lon()) {
        let bearing = initial_bearing_deg(a, b, c, d);
        prop_assert!((0.0..360.0).contains(&bearing), "bearing {bearing}");
    }

    #[test]
    fn destination_round_trips(
        a in lat(), b in lon(),
        bearing in 0.0..360.0f64,
        dist in 0.1..100_000.0f64,
    ) {
        let (lat2, lon2) = destination(a, b, bearing, dist);
        prop_assert!((-90.0..=90.0).contains(&lat2));
        prop_assert!((-180.0..=180.0).contains(&lon2));
        let measured = haversine_m(a, b, lat2, lon2);
        prop_assert!((measured - dist).abs() < 0.01, "{measured} vs {dist}");
        let back = initial_bearing_deg(a, b, lat2, lon2);
        prop_assert!(bearing_difference_deg(back, bearing) < 0.1);
    }

    #[test]
    fn bearing_difference_is_symmetric_and_bounded(b1 in -720.0..720.0f64, b2 in -720.0..720.0f64) {
        let d12 = bearing_difference_deg(b1, b2);
        let d21 = bearing_difference_deg(b2, b1);
        prop_assert!((d12 - d21).abs() < 1e-9);
        prop_assert!((0.0..=180.0).contains(&d12));
    }
}

proptest! {
    /// Segmentation partitions the labeled points: every retained point
    /// appears in exactly one segment, segments preserve order, and every
    /// segment respects the day/mode grouping and minimum size.
    #[test]
    fn segmentation_partitions_labeled_points(
        spec in proptest::collection::vec((0u8..4, 5u16..40), 1..6),
        min_points in 1usize..15,
    ) {
        let modes = [
            TransportMode::Walk,
            TransportMode::Bike,
            TransportMode::Bus,
            TransportMode::Car,
        ];
        let mut points = Vec::new();
        let mut t = 0i64;
        for (mode_idx, run_len) in &spec {
            for _ in 0..*run_len {
                let p = TrajectoryPoint::new(39.9, 116.3, Timestamp::from_seconds(t));
                points.push(LabeledPoint::labeled(p, modes[*mode_idx as usize]));
                t += 5;
            }
        }
        let traj = RawTrajectory::new(1, points.clone());
        let config = SegmentationConfig::paper().with_min_points(min_points);
        let segments = segment_by_user_day_mode(&traj, &config);

        for seg in &segments {
            prop_assert!(seg.len() >= min_points);
            prop_assert!(seg.points.windows(2).all(|w| w[0].t < w[1].t));
            prop_assert!(seg
                .points
                .iter()
                .all(|p| p.t.day_index() == seg.day));
        }
        // Retained points never exceed the input and each segment is a
        // maximal run: consecutive segments of the same day+mode cannot be
        // adjacent in time with a contiguous boundary.
        let total: usize = segments.iter().map(|s| s.len()).sum();
        prop_assert!(total <= points.len());
    }
}
