//! The P² quantile estimator of Jain & Chlamtac (CACM 1985): a running
//! estimate of one quantile from five markers, O(1) memory and O(1) per
//! observation.
//!
//! The five markers track the sample minimum, the quantile and maximum
//! plus two intermediate points; each observation shifts marker positions
//! and, when a marker drifts a full rank away from its desired position,
//! adjusts its height by a piecewise-parabolic (fallback: linear)
//! interpolation. With fewer than five observations the estimator keeps
//! the raw values and answers with the exact NumPy-convention percentile,
//! so tiny series are never approximated.

use serde::{Deserialize, Serialize};
use traj_features::stats::percentile_of_sorted;
use traj_wal::codec::{self, CodecError, Reader};

/// Running estimate of one quantile `p ∈ [0, 1]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    /// The tracked quantile, as a fraction.
    p: f64,
    /// Observations seen so far.
    n: usize,
    /// First five observations (exact phase); sorted into `q` at n = 5.
    initial: Vec<f64>,
    /// Marker heights.
    q: [f64; 5],
    /// Marker positions, 1-based ranks stored as f64 (always integers).
    pos: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Per-observation increments of the desired positions.
    incr: [f64; 5],
}

impl P2Quantile {
    /// A new estimator for quantile `p` (clamped into `[0, 1]`).
    pub fn new(p: f64) -> P2Quantile {
        let p = p.clamp(0.0, 1.0);
        P2Quantile {
            p,
            n: 0,
            initial: Vec::with_capacity(5),
            q: [0.0; 5],
            pos: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            incr: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
        }
    }

    /// The tracked quantile as a fraction.
    pub fn quantile(&self) -> f64 {
        self.p
    }

    /// Observations seen so far.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Feeds one observation. Values must be finite.
    pub fn observe(&mut self, x: f64) {
        self.n += 1;
        if self.n <= 5 {
            self.initial.push(x);
            if self.n == 5 {
                self.initial
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite observations"));
                for (qi, &v) in self.q.iter_mut().zip(self.initial.iter()) {
                    *qi = v;
                }
            }
            return;
        }

        // Locate the marker cell containing x, extending the extremes.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = self.q[4].max(x);
            3
        } else {
            let mut cell = 0usize;
            for i in 1..4 {
                if x >= self.q[i] {
                    cell = i;
                }
            }
            cell
        };

        for pos in self.pos[k + 1..].iter_mut() {
            *pos += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.incr) {
            *d += inc;
        }

        // Adjust the three interior markers toward their desired ranks.
        for i in 1..4 {
            let d = self.desired[i] - self.pos[i];
            let room_up = self.pos[i + 1] - self.pos[i] > 1.0;
            let room_down = self.pos[i - 1] - self.pos[i] < -1.0;
            if (d >= 1.0 && room_up) || (d <= -1.0 && room_down) {
                let s = if d >= 1.0 { 1.0 } else { -1.0 };
                let candidate = self.parabolic(i, s);
                self.q[i] = if self.q[i - 1] < candidate && candidate < self.q[i + 1] {
                    candidate
                } else {
                    self.linear(i, s)
                };
                self.pos[i] += s;
            }
        }
    }

    /// Piecewise-parabolic height prediction for marker `i` moved by `s`.
    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let q = &self.q;
        let np = &self.pos;
        q[i] + s / (np[i + 1] - np[i - 1])
            * ((np[i] - np[i - 1] + s) * (q[i + 1] - q[i]) / (np[i + 1] - np[i])
                + (np[i + 1] - np[i] - s) * (q[i] - q[i - 1]) / (np[i] - np[i - 1]))
    }

    /// Appends the estimator's full state to `out` (raw-bits floats, so
    /// the round trip is bit-exact; see [`crate::durability`]).
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_f64(out, self.p);
        codec::put_len(out, self.n);
        codec::put_len(out, self.initial.len());
        for &v in &self.initial {
            codec::put_f64(out, v);
        }
        for arr in [&self.q, &self.pos, &self.desired, &self.incr] {
            for &v in arr.iter() {
                codec::put_f64(out, v);
            }
        }
    }

    /// Reads state written by [`P2Quantile::encode_into`].
    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<P2Quantile, CodecError> {
        let p = r.f64()?;
        let n = r.len(0)?;
        let n_initial = r.len(8)?;
        if n_initial > 5 {
            return Err(CodecError::msg(format!(
                "P² initial buffer holds {n_initial} values (max 5)"
            )));
        }
        let mut initial = Vec::with_capacity(5);
        for _ in 0..n_initial {
            initial.push(r.f64()?);
        }
        let mut arrays = [[0.0f64; 5]; 4];
        for arr in arrays.iter_mut() {
            for v in arr.iter_mut() {
                *v = r.f64()?;
            }
        }
        let [q, pos, desired, incr] = arrays;
        Ok(P2Quantile {
            p,
            n,
            initial,
            q,
            pos,
            desired,
            incr,
        })
    }

    /// Linear fallback when the parabola leaves the neighbour interval.
    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = if s > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + s * (self.q[j] - self.q[i]) / (self.pos[j] - self.pos[i])
    }

    /// Current estimate: exact below five observations, the middle marker
    /// height after. `0.0` with no data (matching the batch statistics'
    /// empty-series convention).
    pub fn estimate(&self) -> f64 {
        match self.n {
            0 => 0.0,
            1..=4 => {
                let mut sorted = self.initial.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite observations"));
                percentile_of_sorted(&sorted, self.p * 100.0)
            }
            _ => self.q[2],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_features::stats::percentile;

    fn lcg_values(seed: u64, n: usize) -> Vec<f64> {
        // Deterministic pseudo-random uniforms in [0, 1).
        let mut state = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn small_samples_are_exact() {
        let mut p2 = P2Quantile::new(0.5);
        assert_eq!(p2.estimate(), 0.0);
        for (i, &x) in [5.0, 1.0, 3.0, 2.0].iter().enumerate() {
            p2.observe(x);
            assert_eq!(p2.count(), i + 1);
        }
        assert_eq!(p2.estimate(), percentile(&[5.0, 1.0, 3.0, 2.0], 50.0));
    }

    #[test]
    fn median_of_uniform_converges() {
        for (seed, p) in [(1u64, 0.5), (2, 0.1), (3, 0.9), (4, 0.25), (5, 0.75)] {
            let xs = lcg_values(seed, 5000);
            let mut p2 = P2Quantile::new(p);
            for &x in &xs {
                p2.observe(x);
            }
            let exact = percentile(&xs, p * 100.0);
            let err = (p2.estimate() - exact).abs();
            assert!(
                err < 0.05,
                "p={p} err={err} (est {}, exact {exact})",
                p2.estimate()
            );
        }
    }

    #[test]
    fn binary_codec_round_trips_and_continues_identically() {
        for warmup in [0usize, 3, 5, 200] {
            let xs = lcg_values(42, warmup + 500);
            let mut original = P2Quantile::new(0.75);
            for &x in &xs[..warmup] {
                original.observe(x);
            }
            let mut bytes = Vec::new();
            original.encode_into(&mut bytes);
            let mut restored = P2Quantile::decode_from(&mut Reader::new(&bytes)).expect("decode");
            for &x in &xs[warmup..] {
                original.observe(x);
                restored.observe(x);
            }
            assert_eq!(
                original.estimate().to_bits(),
                restored.estimate().to_bits(),
                "warmup {warmup}"
            );
            let (mut a, mut b) = (Vec::new(), Vec::new());
            original.encode_into(&mut a);
            restored.encode_into(&mut b);
            assert_eq!(a, b, "full state equal after warmup {warmup}");
        }
    }

    #[test]
    fn constant_series_is_exact() {
        let mut p2 = P2Quantile::new(0.9);
        for _ in 0..100 {
            p2.observe(7.5);
        }
        assert_eq!(p2.estimate(), 7.5);
    }

    #[test]
    fn sorted_and_reversed_inputs_stay_in_range() {
        for p in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let ascending: Vec<f64> = (0..1000).map(|i| i as f64).collect();
            let mut up = P2Quantile::new(p);
            for &x in &ascending {
                up.observe(x);
            }
            let exact = percentile(&ascending, p * 100.0);
            assert!(
                (up.estimate() - exact).abs() <= 0.12 * 999.0,
                "ascending p={p}"
            );

            let mut down = P2Quantile::new(p);
            for &x in ascending.iter().rev() {
                down.observe(x);
            }
            assert!(
                (down.estimate() - exact).abs() <= 0.12 * 999.0,
                "descending p={p}"
            );
        }
    }
}
