//! # traj-stream — online trajectory ingestion
//!
//! Streaming counterpart of the batch pipeline: points arrive one (or a
//! few) at a time per user, and the crate maintains exactly the state
//! needed to emit the paper's 70 trajectory features the moment a
//! segment closes — without ever buffering an unbounded trajectory.
//!
//! The crate is layered bottom-up:
//!
//! * [`p2`] — the P² single-quantile sketch (Jain & Chlamtac 1985);
//! * [`summary`] — [`AdaptiveSummary`], a per-series summary that is
//!   bit-identical to `traj_features::stats::summary10` up to
//!   `exact_cap` values and degrades to bounded sketch state past it;
//! * [`incremental`] — [`ChainState`], the O(1) recurrence computing the
//!   eight point-feature series bit-for-bit against
//!   `traj_features::point_features`;
//! * [`sessionizer`] — [`Session`], the per-user state machine applying
//!   the paper's segmentation rules (gap split, ≥ 10 point admission,
//!   non-advancing-timestamp drops) incrementally;
//! * [`engine`] — [`StreamEngine`], sessions sharded across mutexes with
//!   idle sweeping and LRU eviction, safe to share across server
//!   workers;
//! * [`durability`] — WAL record payloads, snapshot assembly and
//!   replay-on-boot [`recover`], making engine state survive restarts
//!   (the log itself lives in `traj-wal`).
//!
//! `traj-serve` mounts the engine behind `POST /ingest` and emits a
//! prediction per closed segment; see `DESIGN.md` §9 for the state
//! machine, memory bounds, and the sketch error contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod durability;
pub mod engine;
pub mod incremental;
pub mod p2;
pub mod sessionizer;
pub mod summary;

pub use durability::{recover, snapshot_sessions, EngineSnapshot, RecoveryReport, WalRecord};
pub use engine::{EngineStats, IngestReport, StreamConfig, StreamEngine};
pub use incremental::{ChainEmit, ChainState, SERIES_COUNT};
pub use p2::P2Quantile;
pub use sessionizer::{CloseReason, ClosedSegment, Session, SessionConfig, SessionPush};
pub use summary::{AdaptiveSummary, DEFAULT_EXACT_CAP, SKETCH_QUANTILES};
