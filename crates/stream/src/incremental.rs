//! The incremental point-feature chain: the eight per-point series of
//! `traj_features::point_features` computed online from O(1) state.
//!
//! The batch pipeline computes each series over the whole segment and
//! back-fills the head per the paper's §3.1 ("the speed of the first
//! trajectory point is equal to the speed of the second"). Unrolling that
//! construction gives an exact recurrence over `(previous point, previous
//! speed, previous acceleration, previous bearing, previous bearing
//! rate)`:
//!
//! * the **first** point emits nothing (its values are only known once
//!   the second point arrives);
//! * the **second** point emits *two* rows — the back-filled head and
//!   itself. Distance, speed and bearing back-fill to the second point's
//!   values; acceleration, jerk, bearing rate and its rate are exactly
//!   `0.0` at both indices (the batch derivative of a back-filled head is
//!   `safe_rate(v₁ − v₁, Δt) = 0`, which is then itself back-filled);
//! * every **later** point emits one row from the recurrences, using the
//!   same [`traj_features::point_features::safe_rate`] and
//!   [`traj_features::point_features::angular_step`] expressions as the
//!   batch code — so the emitted values are bit-identical to the batch
//!   series, row for row.
//!
//! The chain assumes strictly increasing timestamps; the sessionizer
//! enforces the workspace timestamp policy before points reach it.

use serde::{Deserialize, Serialize};
use traj_features::point_features::{angular_step, safe_rate};
use traj_geo::geodesy;
use traj_geo::TrajectoryPoint;
use traj_wal::codec::{self, CodecError, Reader};

/// Number of summarised series (the paper's seven point features, in
/// `traj_features::trajectory_features::POINT_FEATURE_NAMES` order:
/// distance, speed, acceleration, jerk, bearing, bearing rate, rate of
/// the bearing rate).
pub const SERIES_COUNT: usize = 7;

/// Rows emitted by one [`ChainState::push`]: zero (first point), two
/// (second point: back-filled head + the point itself) or one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainEmit {
    rows: [[f64; SERIES_COUNT]; 2],
    len: usize,
}

impl ChainEmit {
    /// The emitted rows, oldest first.
    pub fn rows(&self) -> &[[f64; SERIES_COUNT]] {
        &self.rows[..self.len]
    }

    fn none() -> ChainEmit {
        ChainEmit {
            rows: [[0.0; SERIES_COUNT]; 2],
            len: 0,
        }
    }
}

/// O(1) state of the incremental chain over one open segment.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ChainState {
    n: usize,
    prev: Option<TrajectoryPoint>,
    prev_speed: f64,
    prev_acc: f64,
    prev_bearing: f64,
    prev_brate: f64,
}

impl ChainState {
    /// An empty chain.
    pub fn new() -> ChainState {
        ChainState::default()
    }

    /// Points consumed so far.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` before the first point.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Appends the chain's full state to `out` (bit-exact round trip;
    /// see [`crate::durability`]).
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_len(out, self.n);
        match &self.prev {
            Some(p) => {
                codec::put_u8(out, 1);
                codec::put_f64(out, p.lat);
                codec::put_f64(out, p.lon);
                codec::put_i64(out, p.t.0);
            }
            None => codec::put_u8(out, 0),
        }
        for v in [
            self.prev_speed,
            self.prev_acc,
            self.prev_bearing,
            self.prev_brate,
        ] {
            codec::put_f64(out, v);
        }
    }

    /// Reads state written by [`ChainState::encode_into`].
    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<ChainState, CodecError> {
        let n = r.len(0)?;
        let prev = match r.u8()? {
            0 => None,
            1 => {
                let lat = r.f64()?;
                let lon = r.f64()?;
                let t = r.i64()?;
                Some(TrajectoryPoint::new(lat, lon, traj_geo::Timestamp(t)))
            }
            tag => return Err(CodecError::msg(format!("invalid point tag {tag}"))),
        };
        Ok(ChainState {
            n,
            prev,
            prev_speed: r.f64()?,
            prev_acc: r.f64()?,
            prev_bearing: r.f64()?,
            prev_brate: r.f64()?,
        })
    }

    /// Consumes the next point (timestamp strictly after the previous
    /// one) and returns the series rows it completes.
    pub fn push(&mut self, p: TrajectoryPoint) -> ChainEmit {
        self.n += 1;
        let Some(prev) = self.prev.replace(p) else {
            return ChainEmit::none(); // first point: nothing known yet
        };

        let dt = p.t.seconds_since(prev.t);
        let d = geodesy::point_distance_m(&prev, &p);
        let s = safe_rate(d, dt);
        let b = geodesy::point_bearing_deg(&prev, &p);

        if self.n == 2 {
            // Back-filled head + second point. The four derivative series
            // are exactly 0.0 at both indices (see module docs).
            self.prev_speed = s;
            self.prev_acc = 0.0;
            self.prev_bearing = b;
            self.prev_brate = 0.0;
            let row = [d, s, 0.0, 0.0, b, 0.0, 0.0];
            return ChainEmit {
                rows: [row, row],
                len: 2,
            };
        }

        let a = safe_rate(s - self.prev_speed, dt);
        let j = safe_rate(a - self.prev_acc, dt);
        let br = safe_rate(angular_step(self.prev_bearing, b), dt);
        let brr = safe_rate(br - self.prev_brate, dt);
        self.prev_speed = s;
        self.prev_acc = a;
        self.prev_bearing = b;
        self.prev_brate = br;
        ChainEmit {
            rows: [[d, s, a, j, b, br, brr], [0.0; SERIES_COUNT]],
            len: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_features::point_features::PointFeatures;
    use traj_geo::geodesy::destination;
    use traj_geo::Timestamp;

    /// A wiggly trajectory exercising speed-ups and turns.
    fn wiggly_points(n: usize) -> Vec<TrajectoryPoint> {
        let (mut lat, mut lon) = (39.9, 116.3);
        let mut out = Vec::with_capacity(n);
        let mut t = 0i64;
        for i in 0..n {
            out.push(TrajectoryPoint::new(lat, lon, Timestamp::from_seconds(t)));
            let bearing = (i as f64 * 37.0) % 360.0;
            let step = 2.0 + (i % 7) as f64 * 3.0;
            let (nlat, nlon) = destination(lat, lon, bearing, step);
            lat = nlat;
            lon = nlon;
            t += 1 + (i % 3) as i64;
        }
        out
    }

    /// Collects the chain's emitted rows into seven series.
    fn chain_series(points: &[TrajectoryPoint]) -> [Vec<f64>; SERIES_COUNT] {
        let mut chain = ChainState::new();
        let mut series: [Vec<f64>; SERIES_COUNT] = Default::default();
        for &p in points {
            for row in chain.push(p).rows() {
                for (out, &v) in series.iter_mut().zip(row.iter()) {
                    out.push(v);
                }
            }
        }
        series
    }

    #[test]
    fn chain_matches_batch_bit_for_bit() {
        let points = wiggly_points(60);
        let batch = PointFeatures::compute_points(&points);
        let stream = chain_series(&points);
        let batch_series: [&[f64]; SERIES_COUNT] = [
            &batch.distance,
            &batch.speed,
            &batch.acceleration,
            &batch.jerk,
            &batch.bearing,
            &batch.bearing_rate,
            &batch.bearing_rate_rate,
        ];
        for (i, (got, want)) in stream.iter().zip(batch_series).enumerate() {
            assert_eq!(got.len(), want.len(), "series {i} length");
            for (j, (g, w)) in got.iter().zip(want.iter()).enumerate() {
                assert_eq!(g.to_bits(), w.to_bits(), "series {i} index {j}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn binary_codec_round_trips_and_continues_identically() {
        let points = wiggly_points(40);
        for warmup in [0usize, 1, 2, 20] {
            let mut original = ChainState::new();
            for &p in &points[..warmup] {
                original.push(p);
            }
            let mut bytes = Vec::new();
            original.encode_into(&mut bytes);
            let mut restored = ChainState::decode_from(&mut Reader::new(&bytes)).expect("decode");
            for &p in &points[warmup..] {
                let a = original.push(p);
                let b = restored.push(p);
                assert_eq!(a, b, "warmup {warmup}");
            }
        }
    }

    #[test]
    fn emission_counts_follow_the_backfill_rule() {
        let points = wiggly_points(5);
        let mut chain = ChainState::new();
        assert!(chain.is_empty());
        assert_eq!(chain.push(points[0]).rows().len(), 0);
        assert_eq!(chain.push(points[1]).rows().len(), 2);
        assert_eq!(chain.push(points[2]).rows().len(), 1);
        assert_eq!(chain.len(), 3);
    }

    #[test]
    fn second_point_zeroes_the_derivative_series() {
        let points = wiggly_points(2);
        let mut chain = ChainState::new();
        chain.push(points[0]);
        let emit = chain.push(points[1]);
        for row in emit.rows() {
            assert_eq!(row[2], 0.0, "acceleration");
            assert_eq!(row[3], 0.0, "jerk");
            assert_eq!(row[5], 0.0, "bearing rate");
            assert_eq!(row[6], 0.0, "rate of bearing rate");
            assert!(row[0] > 0.0, "distance");
            assert!(row[1] > 0.0, "speed");
        }
    }
}
