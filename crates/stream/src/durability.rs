//! Durable stream state: WAL record payloads, the snapshot payload
//! layout, and replay-on-boot recovery.
//!
//! ## What gets logged
//!
//! Two record kinds cover every state mutation of the engine:
//!
//! * [`WalRecord::Point`] — a point *accepted* by a session (points the
//!   timestamp policy drops are never logged: replaying them would drop
//!   them again, so logging them only burns bytes);
//! * [`WalRecord::Close`] — an explicit close (request flush, idle
//!   sweep, or cap eviction) that removed the session from the engine.
//!
//! Gap closes are deliberately *not* logged: a gap close is a pure
//! function of the point stream (the gap point both closes the old
//! segment and opens the new one), so replaying the points reproduces
//! it. Explicit closes are not derivable from the points — they depend
//! on wall-clock idleness and cap pressure at run time — which is
//! exactly why they need records.
//!
//! ## Snapshot cuts and convergence
//!
//! A snapshot stores, per session, the WAL LSN observed (under that
//! session's shard lock) when the session was encoded — its **cut**.
//! Recovery restores the snapshot sessions, then replays the WAL tail,
//! applying a record to a user only when the record's LSN exceeds that
//! user's cut (users absent from the snapshot replay unconditionally).
//! The cut is exact for captured sessions because appends and state
//! mutations happen under the same shard lock; for absent users, any
//! replayed prefix of their history either ends in a logged `Close`
//! (leaving them absent again) or seamlessly continues into live state.
//! The snapshot's own LSN — the minimum cut across shards — bounds WAL
//! truncation: segments entirely at or below it can be deleted.
//!
//! Replay bypasses logging (nothing is re-appended), eviction (the
//! pre-crash evictions are in the log as `Close` records) and segment
//! emission (closed segments were already served before the crash).

use crate::engine::StreamEngine;
use crate::sessionizer::Session;
use std::collections::HashMap;
use std::io;
use std::time::Instant;
use traj_geo::{Timestamp, TrajectoryPoint, UserId};
use traj_wal::codec::{self, CodecError, Reader};
use traj_wal::{SnapshotStore, Wal};

/// Snapshot payload layout version.
const SNAPSHOT_VERSION: u32 = 1;

const TAG_POINT: u8 = 1;
const TAG_CLOSE: u8 = 2;

/// One durability record, as appended to the WAL by the engine's
/// mutation paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WalRecord {
    /// A point accepted into `user`'s session.
    Point {
        /// Owner of the session.
        user: UserId,
        /// The accepted point.
        point: TrajectoryPoint,
    },
    /// An explicit close (flush / idle / eviction) that removed `user`'s
    /// session.
    Close {
        /// Owner of the removed session.
        user: UserId,
    },
}

impl WalRecord {
    /// The user the record belongs to.
    pub fn user(&self) -> UserId {
        match *self {
            WalRecord::Point { user, .. } | WalRecord::Close { user } => user,
        }
    }

    /// Appends the record's payload encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match *self {
            WalRecord::Point { user, point } => {
                codec::put_u8(out, TAG_POINT);
                codec::put_u32(out, user);
                codec::put_i64(out, point.t.0);
                codec::put_f64(out, point.lat);
                codec::put_f64(out, point.lon);
            }
            WalRecord::Close { user } => {
                codec::put_u8(out, TAG_CLOSE);
                codec::put_u32(out, user);
            }
        }
    }

    /// The record's payload encoding as a fresh buffer.
    pub fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(29);
        self.encode_into(&mut out);
        out
    }

    /// Decodes a payload written by [`WalRecord::encode_into`].
    pub fn decode(payload: &[u8]) -> Result<WalRecord, CodecError> {
        let mut r = Reader::new(payload);
        let record = match r.u8()? {
            TAG_POINT => {
                let user = r.u32()?;
                let t = r.i64()?;
                let lat = r.f64()?;
                let lon = r.f64()?;
                WalRecord::Point {
                    user,
                    point: TrajectoryPoint::new(lat, lon, Timestamp(t)),
                }
            }
            TAG_CLOSE => WalRecord::Close { user: r.u32()? },
            tag => return Err(CodecError::msg(format!("unknown record tag {tag}"))),
        };
        if !r.is_empty() {
            return Err(CodecError::msg(format!(
                "{} trailing bytes after record",
                r.remaining()
            )));
        }
        Ok(record)
    }
}

/// An encoded engine snapshot, ready for
/// [`traj_wal::SnapshotStore::write`].
#[derive(Debug)]
pub struct EngineSnapshot {
    /// The snapshot payload (pass to `SnapshotStore::write`).
    pub payload: Vec<u8>,
    /// The LSN the snapshot covers (minimum cut across shards; name the
    /// snapshot with it and truncate the WAL up to it).
    pub lsn: u64,
    /// Sessions captured.
    pub sessions: usize,
}

impl EngineSnapshot {
    /// Assembles the payload from per-session encodings sorted by user.
    pub(crate) fn assemble(
        config: &crate::engine::StreamConfig,
        entries: Vec<(UserId, u64, Vec<u8>)>,
        min_cut: u64,
    ) -> EngineSnapshot {
        let sessions = entries.len();
        let mut payload =
            Vec::with_capacity(32 + entries.iter().map(|(_, _, b)| b.len() + 20).sum::<usize>());
        codec::put_u32(&mut payload, SNAPSHOT_VERSION);
        codec::put_f64(&mut payload, config.max_gap_s);
        codec::put_len(&mut payload, config.min_points);
        codec::put_len(&mut payload, config.exact_cap);
        codec::put_len(&mut payload, sessions);
        for (user, cut, bytes) in &entries {
            codec::put_u32(&mut payload, *user);
            codec::put_u64(&mut payload, *cut);
            codec::put_len(&mut payload, bytes.len());
            payload.extend_from_slice(bytes);
        }
        EngineSnapshot {
            payload,
            lsn: if min_cut == u64::MAX { 0 } else { min_cut },
            sessions,
        }
    }
}

/// The per-session raw entries of a snapshot payload: `(user, cut LSN,
/// encoded session bytes)`, sorted by user. The crash-consistency tests
/// compare these byte-for-byte between a recovered and an uninterrupted
/// engine.
pub fn snapshot_sessions(payload: &[u8]) -> Result<Vec<(UserId, u64, Vec<u8>)>, CodecError> {
    let mut r = Reader::new(payload);
    let version = r.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(CodecError::msg(format!(
            "unsupported snapshot version {version}"
        )));
    }
    let _max_gap_s = r.f64()?;
    let _min_points = r.len(0)?;
    let _exact_cap = r.len(0)?;
    let n = r.len(20)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let user = r.u32()?;
        let cut = r.u64()?;
        let len = r.len(1)?;
        out.push((user, cut, r.bytes(len)?.to_vec()));
    }
    if !r.is_empty() {
        return Err(CodecError::msg("trailing bytes after snapshot sessions"));
    }
    Ok(out)
}

/// What [`recover`] loaded and replayed.
#[derive(Debug, Default, Clone)]
pub struct RecoveryReport {
    /// LSN of the snapshot used (0 when none was found).
    pub snapshot_lsn: u64,
    /// Sessions restored from the snapshot.
    pub snapshot_sessions: usize,
    /// Records the WAL held (across all segments).
    pub wal_records: u64,
    /// Records actually applied after per-session cut gating.
    pub applied_records: u64,
    /// Highest LSN in the log after recovery.
    pub last_lsn: u64,
    /// Repair/skip notes from the snapshot store and record decoding.
    pub diagnostics: Vec<String>,
    /// Wall-clock recovery time in milliseconds.
    pub elapsed_ms: u64,
}

/// Restores `engine` from the latest valid snapshot plus the WAL tail.
///
/// Call on an empty engine, before [`StreamEngine::attach_wal`] and
/// before accepting traffic. Corrupt snapshots fall back to the previous
/// generation (diagnostics note each skip); undecodable snapshot
/// *payloads* are a hard error, because silently starting empty when the
/// WAL has been truncated past the snapshot would lose sessions.
pub fn recover(
    engine: &StreamEngine,
    store: &SnapshotStore,
    wal: &Wal,
) -> io::Result<RecoveryReport> {
    let start = Instant::now();
    let mut report = RecoveryReport::default();

    let (snapshot, mut diagnostics) = store.load_latest()?;
    report.diagnostics.append(&mut diagnostics);

    let mut cuts: HashMap<UserId, u64> = HashMap::new();
    if let Some(snapshot) = snapshot {
        let entries = snapshot_sessions(&snapshot.payload)
            .map_err(|e| io::Error::other(format!("undecodable snapshot payload: {e}")))?;
        report.snapshot_lsn = snapshot.lsn;
        report.snapshot_sessions = entries.len();
        for (user, cut, bytes) in entries {
            let session = Session::decode_from(&mut Reader::new(&bytes)).map_err(|e| {
                io::Error::other(format!("undecodable session {user} in snapshot: {e}"))
            })?;
            cuts.insert(user, cut);
            engine.restore_session(user, session);
        }
    }

    let mut applied = 0u64;
    let mut bad_records = 0u64;
    let wal_records = wal.replay(|lsn, payload| match WalRecord::decode(payload) {
        Ok(record) => {
            let cut = cuts.get(&record.user()).copied().unwrap_or(0);
            if lsn > cut {
                engine.apply_replay(&record);
                applied += 1;
            }
        }
        Err(_) => bad_records += 1,
    })?;
    if bad_records > 0 {
        report.diagnostics.push(format!(
            "skipped {bad_records} undecodable WAL record payloads"
        ));
    }
    report.wal_records = wal_records;
    report.applied_records = applied;
    report.last_lsn = wal.last_lsn();
    report.elapsed_ms = start.elapsed().as_millis() as u64;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{StreamConfig, StreamEngine};
    use std::path::PathBuf;
    use std::sync::Arc;
    use traj_geo::geodesy::destination;
    use traj_wal::{FsyncPolicy, WalConfig};

    fn track(n: usize, start_s: i64, step_s: i64) -> Vec<TrajectoryPoint> {
        let (mut lat, mut lon) = (39.9, 116.3);
        (0..n)
            .map(|i| {
                let p = TrajectoryPoint::new(
                    lat,
                    lon,
                    Timestamp::from_seconds(start_s + i as i64 * step_s),
                );
                let (nlat, nlon) = destination(lat, lon, (i as f64 * 31.0) % 360.0, 3.0);
                lat = nlat;
                lon = nlon;
                p
            })
            .collect()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("traj-durability-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn wal_in(dir: &std::path::Path) -> Arc<Wal> {
        let config = WalConfig {
            fsync: FsyncPolicy::OnClose,
            ..WalConfig::new(dir.join("wal"))
        };
        Arc::new(Wal::open(config).expect("open wal").0)
    }

    fn engine_with_wal(dir: &std::path::Path) -> (Arc<StreamEngine>, Arc<Wal>) {
        let engine = Arc::new(StreamEngine::new(StreamConfig::default()));
        let store = SnapshotStore::open(dir.join("snap")).expect("snap dir");
        let wal = wal_in(dir);
        recover(&engine, &store, &wal).expect("recover");
        engine.attach_wal(Arc::clone(&wal));
        (engine, wal)
    }

    /// Compares full engine state via sorted per-session bytes (cuts
    /// stripped, so engines with different WAL histories compare equal
    /// when their sessions are identical).
    fn state_of(engine: &StreamEngine) -> Vec<(UserId, Vec<u8>)> {
        snapshot_sessions(&engine.export_snapshot().payload)
            .expect("decode")
            .into_iter()
            .map(|(user, _, bytes)| (user, bytes))
            .collect()
    }

    #[test]
    fn record_payloads_round_trip() {
        let records = [
            WalRecord::Point {
                user: 42,
                point: TrajectoryPoint::new(39.9, 116.3, Timestamp(1234567)),
            },
            WalRecord::Close { user: 7 },
        ];
        for record in records {
            let decoded = WalRecord::decode(&record.encoded()).expect("decode");
            assert_eq!(decoded, record);
        }
        assert!(WalRecord::decode(&[9, 0, 0]).is_err(), "unknown tag");
        assert!(
            WalRecord::decode(&WalRecord::Close { user: 7 }.encoded()[..3]).is_err(),
            "truncated"
        );
    }

    #[test]
    fn wal_only_recovery_restores_open_sessions() {
        let dir = temp_dir("wal-only");
        let points = track(40, 0, 5);
        {
            let (engine, wal) = engine_with_wal(&dir);
            for chunk in points.chunks(7) {
                engine.ingest(1, chunk, false);
                engine.ingest(2, chunk, false);
            }
            wal.sync().unwrap();
        }

        // "Crash": nothing flushed, no snapshot. Recover a new engine.
        let engine = Arc::new(StreamEngine::new(StreamConfig::default()));
        let store = SnapshotStore::open(dir.join("snap")).unwrap();
        let wal = wal_in(&dir);
        let report = recover(&engine, &store, &wal).expect("recover");
        assert_eq!(report.snapshot_sessions, 0);
        assert_eq!(report.wal_records, 80);
        assert_eq!(report.applied_records, 80);
        assert_eq!(engine.open_sessions(), 2);

        // Reference: uninterrupted ingest of the same stream.
        let reference = StreamEngine::new(StreamConfig::default());
        for chunk in points.chunks(7) {
            reference.ingest(1, chunk, false);
            reference.ingest(2, chunk, false);
        }
        assert_eq!(state_of(&engine), state_of(&reference));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_plus_tail_recovery_is_exact() {
        let dir = temp_dir("snap-tail");
        let head = track(30, 0, 5);
        let tail = track(25, 30 * 5 + 20, 5);
        {
            let (engine, wal) = engine_with_wal(&dir);
            let store = SnapshotStore::open(dir.join("snap")).unwrap();
            for chunk in head.chunks(6) {
                for user in 0u32..5 {
                    engine.ingest(user, chunk, false);
                }
            }
            // Checkpoint mid-stream, then keep ingesting (the tail stays
            // only in the WAL) and explicitly flush one user.
            let snap = engine.export_snapshot();
            store.write(snap.lsn, &snap.payload).unwrap();
            wal.truncate_until(snap.lsn).unwrap();
            for chunk in tail.chunks(6) {
                for user in 0u32..5 {
                    engine.ingest(user, chunk, false);
                }
            }
            engine.ingest(3, &[], true); // flush close → Close record
            wal.sync().unwrap();
        }

        let engine = Arc::new(StreamEngine::new(StreamConfig::default()));
        let store = SnapshotStore::open(dir.join("snap")).unwrap();
        let wal = wal_in(&dir);
        let report = recover(&engine, &store, &wal).expect("recover");
        assert_eq!(report.snapshot_sessions, 5);
        assert!(report.snapshot_lsn > 0);
        assert!(report.applied_records < report.wal_records + 1);
        assert_eq!(engine.open_sessions(), 4, "user 3 was flushed");

        let reference = StreamEngine::new(StreamConfig::default());
        for chunk in head.chunks(6) {
            for user in 0u32..5 {
                reference.ingest(user, chunk, false);
            }
        }
        for chunk in tail.chunks(6) {
            for user in 0u32..5 {
                reference.ingest(user, chunk, false);
            }
        }
        reference.ingest(3, &[], true);
        assert_eq!(state_of(&engine), state_of(&reference));

        // Both engines keep closing identically after recovery.
        let mut a = engine.flush_all();
        let mut b = reference.flush_all();
        a.sort_by_key(|c| c.user);
        b.sort_by_key(|c| c.user);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.user, y.user);
            assert_eq!(x.features, y.features);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn close_records_replay_evictions_and_flushes() {
        let dir = temp_dir("closes");
        let config = StreamConfig {
            n_shards: 1,
            max_sessions: 2,
            ..StreamConfig::default()
        };
        {
            let engine = StreamEngine::new(config);
            let store = SnapshotStore::open(dir.join("snap")).unwrap();
            let wal = wal_in(&dir);
            recover(&engine, &store, &wal).unwrap();
            engine.attach_wal(Arc::clone(&wal));
            engine.ingest(1, &track(12, 0, 5), false);
            engine.ingest(2, &track(12, 0, 5), false);
            engine.ingest(3, &track(12, 0, 5), false); // evicts user 1
            wal.sync().unwrap();
        }
        let engine = Arc::new(StreamEngine::new(config));
        let store = SnapshotStore::open(dir.join("snap")).unwrap();
        let wal = wal_in(&dir);
        recover(&engine, &store, &wal).expect("recover");
        assert_eq!(engine.open_sessions(), 2);
        let users: Vec<UserId> = state_of(&engine).into_iter().map(|(u, _)| u).collect();
        assert_eq!(
            users,
            vec![2, 3],
            "the eviction replayed from its Close record"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_payload_rejects_unknown_versions() {
        let mut payload = Vec::new();
        codec::put_u32(&mut payload, 99);
        assert!(snapshot_sessions(&payload).is_err());
    }
}
