//! Streaming trajectory-feature summaries: the ten per-series statistics
//! of the paper's step 3 computed incrementally per open segment.
//!
//! [`AdaptiveSummary`] implements the shared
//! [`traj_features::stats::SeriesSummary`] trait in two phases:
//!
//! * **Exact phase** (up to `exact_cap` values): values are buffered and
//!   statistics defer to [`traj_features::stats::summary10`], so the
//!   result is *bit-identical* to the batch pipeline — including the
//!   order statistics (median/percentiles) and the two-pass standard
//!   deviation.
//! * **Sketch phase** (past `exact_cap`): the buffer is released and the
//!   summary answers from bounded state. Min, max and mean remain exact
//!   (mean accumulates the running sum in push order, which is the same
//!   left-to-right reduction `iter().sum()` performs in the batch path,
//!   so it stays bit-identical). Standard deviation switches to Welford's
//!   algorithm (agrees with the two-pass value to ~1e-9 relative error on
//!   well-conditioned data). The five percentile statistics
//!   (median/p10/p25/p50/p75/p90) answer from [`P2Quantile`] sketches.
//!
//! **Error contract.** P² carries no closed-form worst-case bound; the
//! contract this workspace documents and tests is: estimates are always
//! clamped into the observed `[min, max]` range, and on the property-test
//! distributions (uniform, and the heavy-tailed multi-modal synthetic
//! trajectory series — jerk and bearing-rate spikes are the worst cases)
//! the absolute error stays within `0.25 × (max − min)`, with typical
//! realized drift an order of magnitude smaller. Segments that close
//! at or below `exact_cap` points — the overwhelming majority under the
//! paper's segmentation — are exact to the last bit. The sketches run in
//! both phases, so while a summary is still exact the realized drift is
//! measurable via [`AdaptiveSummary::sketch_drift`], which the server
//! exports as a histogram.

use crate::p2::P2Quantile;
use serde::{Deserialize, Serialize, Value};
use traj_features::stats::{summary10, SeriesSummary, SUMMARY_WIDTH};
use traj_wal::codec::{self, CodecError, Reader};

/// The percentile fractions tracked by sketches, in the order they appear
/// among the ten statistics (p10, p25, p50, p75, p90).
pub const SKETCH_QUANTILES: [f64; 5] = [0.10, 0.25, 0.50, 0.75, 0.90];

/// Default buffered-value cap before a summary degrades to sketch mode.
pub const DEFAULT_EXACT_CAP: usize = 512;

/// Bounded-memory summary of one series; see the module docs for the
/// exactness phases and error contract.
#[derive(Debug, Clone)]
pub struct AdaptiveSummary {
    exact_cap: usize,
    /// `Some` while in the exact phase.
    buffer: Option<Vec<f64>>,
    count: usize,
    min: f64,
    max: f64,
    /// Running sum in push order — bit-identical to `iter().sum()`.
    sum: f64,
    /// Welford running mean and sum of squared deviations.
    w_mean: f64,
    w_m2: f64,
    sketches: [P2Quantile; 5],
}

impl AdaptiveSummary {
    /// A new summary that stays exact up to `exact_cap` values.
    pub fn new(exact_cap: usize) -> AdaptiveSummary {
        AdaptiveSummary {
            exact_cap,
            buffer: Some(Vec::new()),
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            w_mean: 0.0,
            w_m2: 0.0,
            sketches: SKETCH_QUANTILES.map(P2Quantile::new),
        }
    }

    /// `true` while the summary still answers bit-identically to the
    /// batch statistics.
    pub fn is_exact(&self) -> bool {
        self.buffer.is_some()
    }

    /// Largest absolute percentile-sketch error observed against the
    /// exact statistics, normalised by the value range — only measurable
    /// while the summary is still exact (`None` after degradation, and
    /// `None` before any value). This feeds the server's
    /// `sketch_drift` histogram: it reports the drift the sketches
    /// *would* have introduced had the segment outgrown `exact_cap`.
    pub fn sketch_drift(&self) -> Option<f64> {
        let buffer = self.buffer.as_deref()?;
        if buffer.is_empty() {
            return None;
        }
        let exact = summary10(buffer);
        let range = exact[1] - exact[0];
        let worst = self
            .sketches
            .iter()
            .zip([5usize, 6, 7, 8, 9]) // stats10 indices of p10..p90
            .map(|(sketch, i)| (sketch.estimate() - exact[i]).abs())
            .fold(0.0f64, f64::max);
        Some(if range > 0.0 { worst / range } else { 0.0 })
    }

    /// Appends the summary's full state to `out`. Floats travel as raw
    /// bits, so the `±inf` min/max sentinels of an empty summary survive
    /// and the round trip is bit-exact.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_len(out, self.exact_cap);
        match &self.buffer {
            Some(buffer) => {
                // Exact phase: count, extrema, the Welford moments and
                // all five P² sketches are a deterministic replay of
                // the buffered values, so only those are stored —
                // decode rebuilds the rest bit-identically. This keeps
                // snapshot payloads proportional to observed points,
                // not to the ~7 KiB of sketch state per session.
                codec::put_u8(out, 1);
                codec::put_len(out, buffer.len());
                for &v in buffer {
                    codec::put_f64(out, v);
                }
            }
            None => {
                codec::put_u8(out, 0);
                codec::put_len(out, self.count);
                for v in [self.min, self.max, self.sum, self.w_mean, self.w_m2] {
                    codec::put_f64(out, v);
                }
                for sketch in &self.sketches {
                    sketch.encode_into(out);
                }
            }
        }
    }

    /// Reads state written by [`AdaptiveSummary::encode_into`].
    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<AdaptiveSummary, CodecError> {
        let exact_cap = r.len(0)?;
        match r.u8()? {
            1 => {
                let n = r.len(8)?;
                let mut summary = AdaptiveSummary::new(exact_cap);
                for _ in 0..n {
                    summary.push(r.f64()?);
                }
                if summary.buffer.is_none() {
                    return Err(CodecError::msg(format!(
                        "exact-phase buffer of {n} values overflows cap {exact_cap}"
                    )));
                }
                Ok(summary)
            }
            0 => {
                let count = r.len(0)?;
                let min = r.f64()?;
                let max = r.f64()?;
                let sum = r.f64()?;
                let w_mean = r.f64()?;
                let w_m2 = r.f64()?;
                let mut sketches = Vec::with_capacity(5);
                for _ in 0..5 {
                    sketches.push(P2Quantile::decode_from(r)?);
                }
                let sketches: [P2Quantile; 5] = sketches
                    .try_into()
                    .map_err(|_| CodecError::msg("sketch array"))?;
                Ok(AdaptiveSummary {
                    exact_cap,
                    buffer: None,
                    count,
                    min,
                    max,
                    sum,
                    w_mean,
                    w_m2,
                    sketches,
                })
            }
            tag => Err(CodecError::msg(format!("invalid summary buffer tag {tag}"))),
        }
    }

    /// Bytes of heap + inline state held by this summary.
    pub fn state_bytes(&self) -> usize {
        std::mem::size_of::<AdaptiveSummary>()
            + self
                .buffer
                .as_ref()
                .map_or(0, |b| b.capacity() * std::mem::size_of::<f64>())
    }
}

impl Default for AdaptiveSummary {
    fn default() -> Self {
        AdaptiveSummary::new(DEFAULT_EXACT_CAP)
    }
}

/// Serialises an `f64` that may be non-finite: JSON has no `±inf`/`NaN`
/// tokens (the `serde_json` shim would collapse them to `null`), so
/// those travel as the strings `"inf"`, `"-inf"`, `"NaN"`. An empty
/// summary's min/max sentinels are exactly this case.
pub(crate) fn float_to_value(v: f64) -> Value {
    if v.is_finite() {
        Value::Float(v)
    } else if v == f64::INFINITY {
        Value::Str("inf".to_string())
    } else if v == f64::NEG_INFINITY {
        Value::Str("-inf".to_string())
    } else {
        Value::Str("NaN".to_string())
    }
}

/// Inverse of [`float_to_value`].
pub(crate) fn float_from_value(v: &Value) -> Result<f64, serde::Error> {
    match v {
        Value::Str(s) => match s.as_str() {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "NaN" => Ok(f64::NAN),
            other => Err(serde::Error::msg(format!("unknown float token `{other}`"))),
        },
        other => f64::from_value(other),
    }
}

// `[P2Quantile; 5]` is not `Copy`, and min/max can hold non-finite
// sentinels, so the serde impls are written out instead of derived. The
// representation matches what the derive would produce for the same
// fields (an object in declaration order), with the float escape hatch
// for min/max.
impl Serialize for AdaptiveSummary {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("exact_cap".to_string(), self.exact_cap.to_value()),
            ("buffer".to_string(), self.buffer.to_value()),
            ("count".to_string(), self.count.to_value()),
            ("min".to_string(), float_to_value(self.min)),
            ("max".to_string(), float_to_value(self.max)),
            ("sum".to_string(), self.sum.to_value()),
            ("w_mean".to_string(), self.w_mean.to_value()),
            ("w_m2".to_string(), self.w_m2.to_value()),
            (
                "sketches".to_string(),
                Value::Seq(self.sketches.iter().map(Serialize::to_value).collect()),
            ),
        ])
    }
}

impl Deserialize for AdaptiveSummary {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let Value::Map(m) = v else {
            return Err(serde::Error::msg("expected an object"));
        };
        let field = |name: &str| {
            serde::map_get(m, name)
                .ok_or_else(|| serde::Error::msg(format!("missing field `{name}`")))
        };
        let sketches: Vec<P2Quantile> = Vec::from_value(field("sketches")?)?;
        let sketches: [P2Quantile; 5] = sketches
            .try_into()
            .map_err(|_| serde::Error::msg("expected exactly 5 sketches"))?;
        Ok(AdaptiveSummary {
            exact_cap: usize::from_value(field("exact_cap")?)?,
            buffer: Option::from_value(field("buffer")?)?,
            count: usize::from_value(field("count")?)?,
            min: float_from_value(field("min")?)?,
            max: float_from_value(field("max")?)?,
            sum: f64::from_value(field("sum")?)?,
            w_mean: f64::from_value(field("w_mean")?)?,
            w_m2: f64::from_value(field("w_m2")?)?,
            sketches,
        })
    }
}

impl SeriesSummary for AdaptiveSummary {
    fn push(&mut self, x: f64) {
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.sum += x;
        let delta = x - self.w_mean;
        self.w_mean += delta / self.count as f64;
        self.w_m2 += delta * (x - self.w_mean);
        for sketch in &mut self.sketches {
            sketch.observe(x);
        }
        if let Some(buffer) = &mut self.buffer {
            buffer.push(x);
            if buffer.len() > self.exact_cap {
                self.buffer = None; // degrade: sketches already caught up
            }
        }
    }

    fn count(&self) -> usize {
        self.count
    }

    fn stats10(&self) -> [f64; SUMMARY_WIDTH] {
        if self.count == 0 {
            return [0.0; SUMMARY_WIDTH];
        }
        if let Some(buffer) = &self.buffer {
            return summary10(buffer);
        }
        let mean = self.sum / self.count as f64;
        let std = if self.count < 2 {
            0.0
        } else {
            (self.w_m2 / self.count as f64).max(0.0).sqrt()
        };
        let clamp = |v: f64| v.clamp(self.min, self.max);
        let p = |i: usize| clamp(self.sketches[i].estimate());
        [
            self.min,
            self.max,
            mean,
            p(2), // median = the p50 sketch, preserving median == p50
            std,
            p(0),
            p(1),
            p(2),
            p(3),
            p(4),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_values(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 20.0 - 5.0
            })
            .collect()
    }

    #[test]
    fn exact_phase_is_bit_identical_to_batch() {
        let xs = lcg_values(9, 200);
        let mut s = AdaptiveSummary::new(512);
        for &x in &xs {
            s.push(x);
        }
        assert!(s.is_exact());
        assert_eq!(s.stats10(), summary10(&xs));
    }

    #[test]
    fn empty_summary_is_zeros() {
        let s = AdaptiveSummary::default();
        assert_eq!(s.stats10(), [0.0; SUMMARY_WIDTH]);
        assert_eq!(s.count(), 0);
        assert!(s.sketch_drift().is_none());
    }

    #[test]
    fn sketch_phase_keeps_global_stats_bit_identical() {
        let xs = lcg_values(10, 3000);
        let mut s = AdaptiveSummary::new(64);
        for &x in &xs {
            s.push(x);
        }
        assert!(!s.is_exact());
        let got = s.stats10();
        let exact = summary10(&xs);
        // Global features: min, max, mean bit-identical.
        assert_eq!(got[0], exact[0], "min");
        assert_eq!(got[1], exact[1], "max");
        assert_eq!(got[2], exact[2], "mean");
        // Welford std within 1e-9 relative.
        assert!(
            (got[4] - exact[4]).abs() <= 1e-9 * exact[4].abs().max(1.0),
            "std"
        );
        // Percentiles within the documented bound.
        let bound = 0.15 * (exact[1] - exact[0]);
        for (i, name) in [
            (3, "median"),
            (5, "p10"),
            (6, "p25"),
            (7, "p50"),
            (8, "p75"),
            (9, "p90"),
        ] {
            assert!(
                (got[i] - exact[i]).abs() <= bound,
                "{name}: {} vs {}",
                got[i],
                exact[i]
            );
            assert!(got[i] >= exact[0] && got[i] <= exact[1], "{name} in range");
        }
        // median column still equals the p50 column.
        assert_eq!(got[3], got[7]);
    }

    #[test]
    fn binary_codec_round_trips_bit_exactly() {
        // Empty (±inf sentinels), exact-phase, and sketch-phase summaries.
        for (cap, warmup) in [(512, 0), (512, 100), (16, 400)] {
            let xs = lcg_values(12, warmup + 300);
            let mut original = AdaptiveSummary::new(cap);
            for &x in &xs[..warmup] {
                original.push(x);
            }
            let mut bytes = Vec::new();
            original.encode_into(&mut bytes);
            let mut restored =
                AdaptiveSummary::decode_from(&mut Reader::new(&bytes)).expect("decode");
            for &x in &xs[warmup..] {
                original.push(x);
                restored.push(x);
            }
            let (got, want) = (restored.stats10(), original.stats10());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.to_bits(), w.to_bits(), "cap {cap} warmup {warmup}");
            }
            let (mut a, mut b) = (Vec::new(), Vec::new());
            original.encode_into(&mut a);
            restored.encode_into(&mut b);
            assert_eq!(a, b, "state bytes equal: cap {cap} warmup {warmup}");
        }
    }

    #[test]
    fn serde_handles_the_non_finite_sentinels() {
        let empty = AdaptiveSummary::new(64);
        let json = serde_json::to_string(&empty).expect("serialize");
        let back: AdaptiveSummary = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.count(), 0);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        empty.encode_into(&mut a);
        back.encode_into(&mut b);
        assert_eq!(a, b, "±inf min/max survive the JSON round trip");
    }

    #[test]
    fn drift_is_measurable_while_exact_and_state_is_bounded() {
        let xs = lcg_values(11, 400);
        let mut s = AdaptiveSummary::new(512);
        for &x in &xs {
            s.push(x);
        }
        let drift = s.sketch_drift().expect("exact phase");
        assert!((0.0..=0.15).contains(&drift), "drift {drift}");

        // Degraded summary: buffer released, state bounded.
        let mut small = AdaptiveSummary::new(16);
        for &x in &xs {
            small.push(x);
        }
        assert!(small.sketch_drift().is_none());
        assert!(small.state_bytes() < s.state_bytes());
    }
}
