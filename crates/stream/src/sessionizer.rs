//! The per-user sessionizer: the paper's segmentation rules (step 1)
//! applied incrementally to an unbounded point stream.
//!
//! State machine per user:
//!
//! ```text
//!            point, t ≤ last_t                 point, gap ≤ max_gap_s
//!           ┌────────────────┐                ┌──────────────────────┐
//!           │    (dropped)   ▼                ▼                      │
//!  ───────► EMPTY ────────► OPEN ─────────────┴──────────────────────┘
//!             ▲   first pt    │ point, gap > max_gap_s
//!             │               │   → close (emit if ≥ min_points,
//!             │               │      else discard), re-open with point
//!             │               │ flush / idle sweep / eviction
//!             └───────────────┘   → close, back to EMPTY
//! ```
//!
//! Closing applies the paper's admission rule: segments with fewer than
//! `min_points` policy-surviving points are discarded, exactly like
//! [`traj_geo::segmentation::split_on_gaps`] discards short pieces. The
//! timestamp policy (drop points that do not strictly advance time)
//! matches [`traj_geo::sanitize_monotonic`], so a closed streaming
//! segment contains precisely the points the batch pipeline would keep.
//!
//! Memory per open session is bounded: the chain is O(1) and each of the
//! seven [`AdaptiveSummary`]s holds at most `exact_cap` buffered values
//! before degrading to fixed-size sketches — worst case roughly
//! `7 × exact_cap × 8` bytes ≈ 28 KiB at the default cap of 512.

use crate::incremental::{ChainState, SERIES_COUNT};
use crate::summary::{AdaptiveSummary, DEFAULT_EXACT_CAP};
use serde::{Deserialize, Serialize, Value};
use traj_features::stats::SeriesSummary;
use traj_features::trajectory_features::FEATURES_PER_SEGMENT;
use traj_geo::segmentation::MIN_SEGMENT_POINTS;
use traj_geo::{Timestamp, TrajectoryPoint, UserId};
use traj_wal::codec::{self, CodecError, Reader};

/// Sessionizer tunables (a subset of the engine's `StreamConfig`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Close the open segment when the inter-fix gap exceeds this many
    /// seconds (same semantics as batch `split_on_gaps`).
    pub max_gap_s: f64,
    /// Minimum points for a closed segment to be emitted rather than
    /// discarded (paper: 10).
    pub min_points: usize,
    /// Per-series buffered-value cap before summaries degrade to
    /// sketches.
    pub exact_cap: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            max_gap_s: 120.0,
            min_points: MIN_SEGMENT_POINTS,
            exact_cap: DEFAULT_EXACT_CAP,
        }
    }
}

/// Why a segment closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CloseReason {
    /// The inter-fix gap exceeded `max_gap_s`.
    Gap,
    /// An explicit flush (request-level `flush: true` or shutdown).
    Flush,
    /// The idle sweeper closed a session with no recent points.
    Idle,
    /// The engine evicted the session to respect its session cap.
    Eviction,
}

impl CloseReason {
    /// Lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            CloseReason::Gap => "gap",
            CloseReason::Flush => "flush",
            CloseReason::Idle => "idle",
            CloseReason::Eviction => "eviction",
        }
    }
}

/// A closed, admitted segment with its canonical 70-feature row.
#[derive(Debug, Clone)]
pub struct ClosedSegment {
    /// Owner of the segment.
    pub user: UserId,
    /// Timestamp of the first kept point.
    pub start: Timestamp,
    /// Timestamp of the last kept point.
    pub end: Timestamp,
    /// Policy-surviving points in the segment.
    pub n_points: usize,
    /// Why the segment closed.
    pub reason: CloseReason,
    /// The paper's 70 features in canonical
    /// `trajectory_features::feature_names()` order.
    pub features: Vec<f64>,
    /// `true` when every summary was still in its exact phase (features
    /// bit-identical to the batch pipeline).
    pub exact: bool,
    /// Worst normalised percentile-sketch drift across the seven series,
    /// measurable only for exact closes.
    pub sketch_drift: Option<f64>,
}

/// Outcome of pushing one point into a session.
#[derive(Debug)]
pub enum SessionPush {
    /// The point joined the open segment (or opened one).
    Accepted,
    /// The point violated the timestamp policy and was dropped.
    Dropped,
    /// The point's gap closed the previous segment (`None` when that
    /// segment was discarded as too short) and opened a new one with
    /// this point.
    Closed(Option<ClosedSegment>),
}

/// One user's open-segment state.
#[derive(Debug, Clone)]
pub struct Session {
    config: SessionConfig,
    chain: ChainState,
    summaries: [AdaptiveSummary; SERIES_COUNT],
    start: Option<Timestamp>,
    last_t: Option<Timestamp>,
}

impl Session {
    /// An empty session.
    pub fn new(config: SessionConfig) -> Session {
        Session {
            config,
            chain: ChainState::new(),
            summaries: new_summaries(config.exact_cap),
            start: None,
            last_t: None,
        }
    }

    /// Policy-surviving points in the open segment.
    pub fn open_points(&self) -> usize {
        self.chain.len()
    }

    /// Timestamp of the last accepted point.
    pub fn last_t(&self) -> Option<Timestamp> {
        self.last_t
    }

    /// Feeds one point; see [`SessionPush`].
    pub fn push(&mut self, user: UserId, p: TrajectoryPoint) -> SessionPush {
        if let Some(last) = self.last_t {
            if p.t.0 <= last.0 {
                return SessionPush::Dropped;
            }
            if p.t.seconds_since(last) > self.config.max_gap_s {
                let closed = self.close(user, CloseReason::Gap);
                self.accept(p);
                return SessionPush::Closed(closed);
            }
        }
        self.accept(p);
        SessionPush::Accepted
    }

    /// Closes the open segment (if any): emits it when it meets the
    /// admission threshold, discards it otherwise, and resets the session
    /// to EMPTY either way.
    pub fn close(&mut self, user: UserId, reason: CloseReason) -> Option<ClosedSegment> {
        let n_points = self.chain.len();
        let start = self.start.take();
        let end = self.last_t.take();
        self.chain = Default::default();
        let summaries =
            std::mem::replace(&mut self.summaries, new_summaries(self.config.exact_cap));
        if n_points < self.config.min_points {
            return None;
        }
        let mut features = Vec::with_capacity(FEATURES_PER_SEGMENT);
        let mut exact = true;
        let mut drift: Option<f64> = None;
        for summary in &summaries {
            features.extend_from_slice(&summary.stats10());
            exact &= summary.is_exact();
            if let Some(d) = summary.sketch_drift() {
                drift = Some(drift.map_or(d, |w: f64| w.max(d)));
            }
        }
        Some(ClosedSegment {
            user,
            start: start.expect("non-empty segment has a start"),
            end: end.expect("non-empty segment has an end"),
            n_points,
            reason,
            features,
            exact,
            sketch_drift: if exact { drift } else { None },
        })
    }

    /// Appends the session's full state — config, chain, summaries,
    /// segment bounds — to `out`. The encoding is deterministic and
    /// bit-exact, so two sessions that saw the same points produce the
    /// same bytes (the crash-consistency tests rely on this).
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_f64(out, self.config.max_gap_s);
        codec::put_len(out, self.config.min_points);
        codec::put_len(out, self.config.exact_cap);
        for ts in [self.start, self.last_t] {
            match ts {
                Some(t) => {
                    codec::put_u8(out, 1);
                    codec::put_i64(out, t.0);
                }
                None => codec::put_u8(out, 0),
            }
        }
        self.chain.encode_into(out);
        for summary in &self.summaries {
            summary.encode_into(out);
        }
    }

    /// Reads state written by [`Session::encode_into`].
    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<Session, CodecError> {
        let config = SessionConfig {
            max_gap_s: r.f64()?,
            min_points: r.len(0)?,
            exact_cap: r.len(0)?,
        };
        let mut bounds = [None, None];
        for slot in bounds.iter_mut() {
            *slot = match r.u8()? {
                0 => None,
                1 => Some(Timestamp(r.i64()?)),
                tag => return Err(CodecError::msg(format!("invalid timestamp tag {tag}"))),
            };
        }
        let [start, last_t] = bounds;
        let chain = ChainState::decode_from(r)?;
        let mut summaries = Vec::with_capacity(SERIES_COUNT);
        for _ in 0..SERIES_COUNT {
            summaries.push(AdaptiveSummary::decode_from(r)?);
        }
        let summaries: [AdaptiveSummary; SERIES_COUNT] = summaries
            .try_into()
            .map_err(|_| CodecError::msg("summary array"))?;
        Ok(Session {
            config,
            chain,
            summaries,
            start,
            last_t,
        })
    }

    /// Bytes of state currently held by this session.
    pub fn state_bytes(&self) -> usize {
        std::mem::size_of::<Session>()
            + self
                .summaries
                .iter()
                .map(AdaptiveSummary::state_bytes)
                .sum::<usize>()
    }

    fn accept(&mut self, p: TrajectoryPoint) {
        if self.start.is_none() {
            self.start = Some(p.t);
        }
        self.last_t = Some(p.t);
        for row in self.chain.push(p).rows() {
            for (summary, &v) in self.summaries.iter_mut().zip(row.iter()) {
                summary.push(v);
            }
        }
    }
}

// `[AdaptiveSummary; 7]` is not `Copy`, so the serde impls are written
// out instead of derived; the representation matches what the derive
// would produce (an object in field-declaration order).
impl Serialize for Session {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("config".to_string(), self.config.to_value()),
            ("chain".to_string(), self.chain.to_value()),
            (
                "summaries".to_string(),
                Value::Seq(self.summaries.iter().map(Serialize::to_value).collect()),
            ),
            ("start".to_string(), self.start.to_value()),
            ("last_t".to_string(), self.last_t.to_value()),
        ])
    }
}

impl Deserialize for Session {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let Value::Map(m) = v else {
            return Err(serde::Error::msg("expected an object"));
        };
        let field = |name: &str| {
            serde::map_get(m, name)
                .ok_or_else(|| serde::Error::msg(format!("missing field `{name}`")))
        };
        let summaries: Vec<AdaptiveSummary> = Vec::from_value(field("summaries")?)?;
        let summaries: [AdaptiveSummary; SERIES_COUNT] = summaries
            .try_into()
            .map_err(|_| serde::Error::msg("expected exactly 7 summaries"))?;
        Ok(Session {
            config: SessionConfig::from_value(field("config")?)?,
            chain: ChainState::from_value(field("chain")?)?,
            summaries,
            start: Option::from_value(field("start")?)?,
            last_t: Option::from_value(field("last_t")?)?,
        })
    }
}

fn new_summaries(exact_cap: usize) -> [AdaptiveSummary; SERIES_COUNT] {
    [(); SERIES_COUNT].map(|_| AdaptiveSummary::new(exact_cap))
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_features::point_features::PointFeatures;
    use traj_features::trajectory_features::features_from_point_features;
    use traj_geo::geodesy::destination;
    use traj_geo::segmentation::split_on_gaps;
    use traj_geo::{Segment, TransportMode};

    fn track(n: usize, start_s: i64, step_s: i64) -> Vec<TrajectoryPoint> {
        let (mut lat, mut lon) = (39.9, 116.3);
        (0..n)
            .map(|i| {
                let p = TrajectoryPoint::new(
                    lat,
                    lon,
                    Timestamp::from_seconds(start_s + i as i64 * step_s),
                );
                let (nlat, nlon) = destination(lat, lon, (i as f64 * 23.0) % 360.0, 4.0);
                lat = nlat;
                lon = nlon;
                p
            })
            .collect()
    }

    fn drive(session: &mut Session, points: &[TrajectoryPoint]) -> Vec<ClosedSegment> {
        let mut closed = Vec::new();
        for &p in points {
            if let SessionPush::Closed(Some(c)) = session.push(7, p) {
                closed.push(c);
            }
        }
        closed
    }

    #[test]
    fn gap_close_matches_split_on_gaps_and_batch_features() {
        // Two 15-point runs separated by a 10-minute gap.
        let mut points = track(15, 0, 5);
        points.extend(track(15, 1000, 5));
        let mut session = Session::new(SessionConfig::default());
        let mut closed = drive(&mut session, &points);
        closed.extend(session.close(7, CloseReason::Flush));
        assert_eq!(closed.len(), 2);
        assert!(closed.iter().all(|c| c.exact));
        assert_eq!(closed[0].reason, CloseReason::Gap);
        assert_eq!(closed[1].reason, CloseReason::Flush);

        let batch_segment = Segment::new(7, TransportMode::Walk, 0, points);
        let pieces = split_on_gaps(&batch_segment, 120.0, MIN_SEGMENT_POINTS);
        assert_eq!(pieces.len(), closed.len());
        for (piece, c) in pieces.iter().zip(&closed) {
            assert_eq!(c.n_points, piece.len());
            assert_eq!(c.start, piece.points[0].t);
            assert_eq!(c.end, piece.points.last().unwrap().t);
            let batch = features_from_point_features(&PointFeatures::compute(piece));
            assert_eq!(c.features.len(), batch.len());
            for (i, (got, want)) in c.features.iter().zip(&batch).enumerate() {
                assert_eq!(got.to_bits(), want.to_bits(), "feature {i}");
            }
        }
    }

    #[test]
    fn short_segments_are_discarded_on_close() {
        let points = track(5, 0, 5);
        let mut session = Session::new(SessionConfig::default());
        drive(&mut session, &points);
        assert_eq!(session.open_points(), 5);
        assert!(session.close(7, CloseReason::Flush).is_none());
        assert_eq!(
            session.open_points(),
            0,
            "close resets even when discarding"
        );
    }

    #[test]
    fn timestamp_policy_drops_non_advancing_points() {
        let mut points = track(12, 0, 5);
        let dup = TrajectoryPoint::new(40.0, 116.0, points[3].t); // duplicate t
        points.insert(4, dup);
        let backwards = TrajectoryPoint::new(40.0, 116.0, Timestamp::from_seconds(1));
        points.insert(8, backwards);

        let mut session = Session::new(SessionConfig::default());
        let mut dropped = 0usize;
        for &p in &points {
            if matches!(session.push(7, p), SessionPush::Dropped) {
                dropped += 1;
            }
        }
        assert_eq!(dropped, 2);
        let closed = session.close(7, CloseReason::Flush).expect("admitted");
        assert_eq!(closed.n_points, 12);

        // Batch agreement: same features as the sanitized point list.
        let (clean, n_dropped) = traj_geo::sanitize_monotonic(&points);
        assert_eq!(n_dropped, 2);
        let batch = features_from_point_features(&PointFeatures::compute_points(&clean));
        assert_eq!(closed.features, batch);
    }

    #[test]
    fn binary_codec_round_trips_and_closes_identically() {
        let points = track(30, 0, 5);
        for warmup in [0usize, 1, 12, 30] {
            let mut original = Session::new(SessionConfig::default());
            for &p in &points[..warmup] {
                original.push(7, p);
            }
            let mut bytes = Vec::new();
            original.encode_into(&mut bytes);
            let mut restored = Session::decode_from(&mut Reader::new(&bytes)).expect("decode");
            let tail = track(20, 30 * 5 + 10, 5);
            for &p in &points[warmup..] {
                original.push(7, p);
                restored.push(7, p);
            }
            for &p in &tail {
                original.push(7, p);
                restored.push(7, p);
            }
            let (mut a, mut b) = (Vec::new(), Vec::new());
            original.encode_into(&mut a);
            restored.encode_into(&mut b);
            assert_eq!(a, b, "state bytes equal after warmup {warmup}");
            let (ca, cb) = (
                original.close(7, CloseReason::Flush),
                restored.close(7, CloseReason::Flush),
            );
            let (ca, cb) = (ca.expect("admitted"), cb.expect("admitted"));
            assert_eq!(ca.features, cb.features, "warmup {warmup}");
            assert_eq!(ca.start, cb.start);
            assert_eq!(ca.end, cb.end);
        }
    }

    #[test]
    fn gap_point_reopens_a_fresh_segment() {
        let mut points = track(12, 0, 5);
        points.extend(track(3, 5000, 5));
        let mut session = Session::new(SessionConfig::default());
        let closed = drive(&mut session, &points);
        assert_eq!(closed.len(), 1);
        assert_eq!(session.open_points(), 3, "gap point opened the new segment");
        assert!(session.state_bytes() > 0);
    }
}
