//! The ingestion engine: per-user sessions sharded across mutexes, safe
//! to call concurrently from every server worker of the `traj-runtime`
//! pool.
//!
//! Each user maps to one shard (`user % n_shards`); a request locks only
//! its shard, so unrelated users ingest in parallel. Whole-engine
//! operations (flush, idle sweep, accounting) fan the shards out over
//! [`traj_runtime::parallel_map`].
//!
//! Memory is bounded twice over: per session by the summaries'
//! `exact_cap` (see [`crate::sessionizer`]) and globally by
//! `max_sessions` — inserting a user past the cap evicts the
//! least-recently-active session of the target shard, closing (and, when
//! admitted, emitting) its open segment.

use crate::durability::WalRecord;
use crate::sessionizer::{CloseReason, ClosedSegment, Session, SessionConfig, SessionPush};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};
use traj_geo::{TrajectoryPoint, UserId};
use traj_wal::Wal;

/// Engine tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Close the open segment on inter-fix gaps above this (seconds).
    pub max_gap_s: f64,
    /// Admission threshold of closed segments (paper: 10).
    pub min_points: usize,
    /// Per-series exact-phase cap before summaries degrade to sketches.
    pub exact_cap: usize,
    /// Shards the session map is split into.
    pub n_shards: usize,
    /// Global cap on concurrently open sessions; beyond it the engine
    /// evicts least-recently-active sessions.
    pub max_sessions: usize,
    /// Sessions idle longer than this many seconds are closed by
    /// [`StreamEngine::sweep_idle`].
    pub idle_timeout_s: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        let session = SessionConfig::default();
        StreamConfig {
            max_gap_s: session.max_gap_s,
            min_points: session.min_points,
            exact_cap: session.exact_cap,
            n_shards: 16,
            max_sessions: 65_536,
            idle_timeout_s: 300,
        }
    }
}

impl StreamConfig {
    fn session_config(&self) -> SessionConfig {
        SessionConfig {
            max_gap_s: self.max_gap_s,
            min_points: self.min_points,
            exact_cap: self.exact_cap,
        }
    }
}

/// Result of one [`StreamEngine::ingest`] call.
#[derive(Debug, Default)]
pub struct IngestReport {
    /// Points accepted into the user's session.
    pub accepted: usize,
    /// Points dropped by the timestamp policy.
    pub dropped: usize,
    /// Points left in the user's open segment after the call.
    pub open_points: usize,
    /// Segments closed (and admitted) during the call.
    pub closed: Vec<ClosedSegment>,
    /// Segments closed but discarded as shorter than `min_points`.
    pub discarded: usize,
    /// Set when the attached WAL rejected the call's durability records:
    /// the in-memory state advanced but is *not* durable. The server
    /// surfaces this as a 500.
    pub wal_error: Option<String>,
}

/// Monotonic engine counters, exported through `/metrics`.
#[derive(Debug, Default)]
struct EngineCounters {
    points_accepted: AtomicU64,
    points_dropped: AtomicU64,
    segments_closed: AtomicU64,
    segments_discarded: AtomicU64,
    evictions: AtomicU64,
    wal_append_errors: AtomicU64,
}

/// A plain snapshot of [`EngineCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Points accepted into sessions.
    pub points_accepted: u64,
    /// Points dropped by the timestamp policy.
    pub points_dropped: u64,
    /// Admitted segment closes.
    pub segments_closed: u64,
    /// Discarded (short) segment closes.
    pub segments_discarded: u64,
    /// Sessions evicted by the session cap.
    pub evictions: u64,
    /// Failed WAL append batches (ingested state that is not durable).
    pub wal_append_errors: u64,
}

struct SessionEntry {
    session: Session,
    last_seen: Instant,
}

type Shard = HashMap<UserId, SessionEntry>;

/// The sharded ingestion engine. All methods take `&self`.
pub struct StreamEngine {
    config: StreamConfig,
    shards: Vec<Mutex<Shard>>,
    counters: EngineCounters,
    /// Durability log, attached once (after recovery, before traffic).
    wal: OnceLock<Arc<Wal>>,
}

impl StreamEngine {
    /// Builds an engine with `config` (shard count clamped to ≥ 1).
    pub fn new(config: StreamConfig) -> StreamEngine {
        let n_shards = config.n_shards.max(1);
        StreamEngine {
            config: StreamConfig { n_shards, ..config },
            shards: (0..n_shards).map(|_| Mutex::new(Shard::new())).collect(),
            counters: EngineCounters::default(),
            wal: OnceLock::new(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Attaches the write-ahead log. From here on every accepted point
    /// and every explicit session close (flush, idle, eviction) is
    /// logged before the shard lock is released. Call *after*
    /// [`crate::durability::recover`] — replay must not re-log — and
    /// before traffic. The first call wins; later calls are ignored.
    pub fn attach_wal(&self, wal: Arc<Wal>) {
        let _ = self.wal.set(wal);
    }

    /// The attached WAL, if any.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.get()
    }

    /// Ingests a batch of points for one user, in order. `flush` closes
    /// the user's open segment after the batch.
    ///
    /// With a WAL attached, every accepted point (and the flush close,
    /// and any eviction the insert triggered) is appended as one record
    /// batch before the shard lock is released — so the log's per-user
    /// record order always matches the order state mutations happened
    /// in, which is what makes replay exact.
    pub fn ingest(&self, user: UserId, points: &[TrajectoryPoint], flush: bool) -> IngestReport {
        let mut report = IngestReport::default();
        let logging = self.wal.get().is_some();
        let mut wal_batch: Vec<Vec<u8>> = Vec::new();
        let shard_index = self.shard_of(user);
        let mut shard = self.shards[shard_index].lock().expect("shard poisoned");

        if !shard.contains_key(&user) {
            self.evict_if_full(&mut shard, &mut report, logging, &mut wal_batch);
            shard.insert(
                user,
                SessionEntry {
                    session: Session::new(self.config.session_config()),
                    last_seen: Instant::now(),
                },
            );
        }
        let entry = shard.get_mut(&user).expect("inserted above");
        entry.last_seen = Instant::now();

        for &p in points {
            match entry.session.push(user, p) {
                SessionPush::Accepted => report.accepted += 1,
                SessionPush::Dropped => {
                    report.dropped += 1;
                    continue;
                }
                SessionPush::Closed(closed) => {
                    report.accepted += 1; // the gap point re-opened
                    match closed {
                        Some(c) => report.closed.push(c),
                        None => report.discarded += 1,
                    }
                }
            }
            if logging {
                // Gap closes need no record: replaying the points
                // reproduces them. Only accepted points are logged.
                wal_batch.push(WalRecord::Point { user, point: p }.encoded());
            }
        }
        if flush {
            match entry.session.close(user, CloseReason::Flush) {
                Some(c) => report.closed.push(c),
                None if entry.session.open_points() == 0 => {}
                None => report.discarded += 1,
            }
            shard.remove(&user);
            if logging {
                wal_batch.push(WalRecord::Close { user }.encoded());
            }
        } else {
            report.open_points = entry.session.open_points();
        }
        self.append_wal_batch(&wal_batch, &mut report.wal_error);
        drop(shard);

        self.counters
            .points_accepted
            .fetch_add(report.accepted as u64, Ordering::Relaxed);
        self.counters
            .points_dropped
            .fetch_add(report.dropped as u64, Ordering::Relaxed);
        self.counters
            .segments_closed
            .fetch_add(report.closed.len() as u64, Ordering::Relaxed);
        self.counters
            .segments_discarded
            .fetch_add(report.discarded as u64, Ordering::Relaxed);
        report
    }

    /// Closes every open session (e.g. at replay end or shutdown),
    /// fanning shards out over the runtime pool. Returns admitted
    /// segments; discards are counted in [`StreamEngine::stats`].
    pub fn flush_all(&self) -> Vec<ClosedSegment> {
        let indices: Vec<usize> = (0..self.shards.len()).collect();
        let per_shard: Vec<(Vec<ClosedSegment>, u64, Option<String>)> =
            traj_runtime::parallel_map(&indices, |_, &i| {
                let mut shard = self.shards[i].lock().expect("shard poisoned");
                let logging = self.wal.get().is_some();
                let mut wal_batch: Vec<Vec<u8>> = Vec::new();
                let mut closed = Vec::new();
                let mut discarded = 0u64;
                for (user, mut entry) in shard.drain() {
                    match entry.session.close(user, CloseReason::Flush) {
                        Some(c) => closed.push(c),
                        None => discarded += 1,
                    }
                    if logging {
                        wal_batch.push(WalRecord::Close { user }.encoded());
                    }
                }
                let mut wal_error = None;
                self.append_wal_batch(&wal_batch, &mut wal_error);
                (closed, discarded, wal_error)
            });
        let mut all = Vec::new();
        for (closed, discarded, _) in per_shard {
            self.counters
                .segments_closed
                .fetch_add(closed.len() as u64, Ordering::Relaxed);
            self.counters
                .segments_discarded
                .fetch_add(discarded, Ordering::Relaxed);
            all.extend(closed);
        }
        all
    }

    /// Closes sessions with no points for longer than the configured
    /// idle timeout. Returns admitted segments.
    pub fn sweep_idle(&self) -> Vec<ClosedSegment> {
        let now = Instant::now();
        let timeout = Duration::from_secs(self.config.idle_timeout_s);
        let indices: Vec<usize> = (0..self.shards.len()).collect();
        let per_shard: Vec<(Vec<ClosedSegment>, u64, Option<String>)> =
            traj_runtime::parallel_map(&indices, |_, &i| {
                let mut shard = self.shards[i].lock().expect("shard poisoned");
                let logging = self.wal.get().is_some();
                let mut wal_batch: Vec<Vec<u8>> = Vec::new();
                let idle: Vec<UserId> = shard
                    .iter()
                    .filter(|(_, e)| now.duration_since(e.last_seen) > timeout)
                    .map(|(&u, _)| u)
                    .collect();
                let mut closed = Vec::new();
                let mut discarded = 0u64;
                for user in idle {
                    let mut entry = shard.remove(&user).expect("listed above");
                    match entry.session.close(user, CloseReason::Idle) {
                        Some(c) => closed.push(c),
                        None => discarded += 1,
                    }
                    if logging {
                        wal_batch.push(WalRecord::Close { user }.encoded());
                    }
                }
                let mut wal_error = None;
                self.append_wal_batch(&wal_batch, &mut wal_error);
                (closed, discarded, wal_error)
            });
        let mut all = Vec::new();
        for (closed, discarded, _) in per_shard {
            self.counters
                .segments_closed
                .fetch_add(closed.len() as u64, Ordering::Relaxed);
            self.counters
                .segments_discarded
                .fetch_add(discarded, Ordering::Relaxed);
            all.extend(closed);
        }
        all
    }

    /// Number of currently open sessions.
    pub fn open_sessions(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").len())
            .sum()
    }

    /// Total bytes of per-session state currently held.
    pub fn state_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("shard poisoned")
                    .values()
                    .map(|e| e.session.state_bytes())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Snapshot of the monotonic counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            points_accepted: self.counters.points_accepted.load(Ordering::Relaxed),
            points_dropped: self.counters.points_dropped.load(Ordering::Relaxed),
            segments_closed: self.counters.segments_closed.load(Ordering::Relaxed),
            segments_discarded: self.counters.segments_discarded.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            wal_append_errors: self.counters.wal_append_errors.load(Ordering::Relaxed),
        }
    }

    fn shard_of(&self, user: UserId) -> usize {
        user as usize % self.shards.len()
    }

    /// Evicts the least-recently-active session of `shard` when the
    /// global cap (apportioned per shard) is reached.
    fn evict_if_full(
        &self,
        shard: &mut Shard,
        report: &mut IngestReport,
        logging: bool,
        wal_batch: &mut Vec<Vec<u8>>,
    ) {
        let per_shard_cap = self.config.max_sessions.div_ceil(self.shards.len()).max(1);
        if shard.len() < per_shard_cap {
            return;
        }
        let Some(&victim) = shard
            .iter()
            .min_by_key(|(_, e)| e.last_seen)
            .map(|(u, _)| u)
        else {
            return;
        };
        let mut entry = shard.remove(&victim).expect("selected above");
        if logging {
            wal_batch.push(WalRecord::Close { user: victim }.encoded());
        }
        self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        match entry.session.close(victim, CloseReason::Eviction) {
            Some(c) => {
                self.counters
                    .segments_closed
                    .fetch_add(1, Ordering::Relaxed);
                report.closed.push(c);
            }
            None => {
                self.counters
                    .segments_discarded
                    .fetch_add(1, Ordering::Relaxed);
                report.discarded += 1;
            }
        }
    }

    /// Appends `batch` to the attached WAL (no-op when empty or no WAL).
    /// Must be called while the shard lock the records belong to is
    /// still held. A failed append is counted and surfaced via `error`;
    /// the in-memory mutation stands.
    fn append_wal_batch(&self, batch: &[Vec<u8>], error: &mut Option<String>) {
        if batch.is_empty() {
            return;
        }
        let Some(wal) = self.wal.get() else {
            return;
        };
        let payloads: Vec<&[u8]> = batch.iter().map(Vec::as_slice).collect();
        if let Err(e) = wal.append_batch(&payloads) {
            self.counters
                .wal_append_errors
                .fetch_add(1, Ordering::Relaxed);
            *error = Some(e.to_string());
        }
    }

    /// User ids of every currently open session, sorted. The cluster
    /// router uses this to decide which sessions a reshard moves.
    pub fn open_users(&self) -> Vec<UserId> {
        let mut users: Vec<UserId> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("shard poisoned")
                    .keys()
                    .copied()
                    .collect::<Vec<UserId>>()
            })
            .collect();
        users.sort_unstable();
        users
    }

    /// Encodes (without removing) the listed users' open sessions for
    /// handoff to another engine. Users without an open session are
    /// skipped. Exporting is a pure read — the source stays
    /// authoritative until [`StreamEngine::evict_sessions`] drains it —
    /// so a failed handoff loses nothing. The encoding is the snapshot
    /// codec's per-session byte string;
    /// [`StreamEngine::install_session_bytes`] restores it
    /// bit-identically.
    pub fn export_sessions(&self, users: &[UserId]) -> Vec<(UserId, Vec<u8>)> {
        let mut out: Vec<(UserId, Vec<u8>)> = Vec::new();
        for &user in users {
            let shard_index = self.shard_of(user);
            let shard = self.shards[shard_index].lock().expect("shard poisoned");
            let Some(entry) = shard.get(&user) else {
                continue;
            };
            let mut bytes = Vec::new();
            entry.session.encode_into(&mut bytes);
            drop(shard);
            out.push((user, bytes));
        }
        out.sort_by_key(|&(user, _)| user);
        out
    }

    /// Removes the listed users' open sessions after a handoff import
    /// succeeded on the new owner. Users without an open session are
    /// skipped. With a WAL attached, a [`WalRecord::Close`] is logged
    /// per evicted session under its shard lock — this engine no longer
    /// owns the session, so its own replay must not resurrect it. If
    /// logging the Close fails the session is reinstalled and the error
    /// returned: a silent failure here would leave a replay-resurrected
    /// duplicate of state that now lives on another shard. Already
    /// evicted users stay evicted (the caller retries or compensates
    /// with the exported payload). Returns the number evicted.
    pub fn evict_sessions(&self, users: &[UserId]) -> Result<usize, String> {
        let logging = self.wal.get().is_some();
        let mut evicted = 0usize;
        for &user in users {
            let shard_index = self.shard_of(user);
            let mut shard = self.shards[shard_index].lock().expect("shard poisoned");
            let Some(entry) = shard.remove(&user) else {
                continue;
            };
            if logging {
                let mut error = None;
                self.append_wal_batch(&[WalRecord::Close { user }.encoded()], &mut error);
                if let Some(e) = error {
                    shard.insert(user, entry);
                    return Err(format!(
                        "user {user}: wal close append failed ({evicted} evicted before abort): {e}"
                    ));
                }
            }
            drop(shard);
            evicted += 1;
        }
        Ok(evicted)
    }

    /// Installs a session exported by [`StreamEngine::export_sessions`]
    /// (or decoded from a snapshot), replacing any open session the user
    /// already has. Bypasses eviction and WAL logging — the next
    /// periodic snapshot makes the imported state durable.
    pub fn install_session_bytes(&self, user: UserId, bytes: &[u8]) -> Result<(), String> {
        let session = Session::decode_from(&mut traj_wal::Reader::new(bytes))
            .map_err(|e| format!("undecodable session for user {user}: {e}"))?;
        self.restore_session(user, session);
        Ok(())
    }

    /// Restores one session (snapshot recovery). Bypasses eviction and
    /// WAL logging; intended for [`crate::durability::recover`], before
    /// traffic starts.
    pub(crate) fn restore_session(&self, user: UserId, session: Session) {
        let shard_index = self.shard_of(user);
        let mut shard = self.shards[shard_index].lock().expect("shard poisoned");
        shard.insert(
            user,
            SessionEntry {
                session,
                last_seen: Instant::now(),
            },
        );
    }

    /// Applies one replayed WAL record. Emitted segments are discarded —
    /// they were already served before the crash — and nothing is
    /// re-logged or evicted: the log's own `Close` records reproduce
    /// every pre-crash eviction and idle close.
    pub(crate) fn apply_replay(&self, record: &WalRecord) {
        match *record {
            WalRecord::Point { user, point } => {
                let shard_index = self.shard_of(user);
                let mut shard = self.shards[shard_index].lock().expect("shard poisoned");
                let entry = shard.entry(user).or_insert_with(|| SessionEntry {
                    session: Session::new(self.config.session_config()),
                    last_seen: Instant::now(),
                });
                entry.last_seen = Instant::now();
                let _ = entry.session.push(user, point);
            }
            WalRecord::Close { user } => {
                let shard_index = self.shard_of(user);
                let mut shard = self.shards[shard_index].lock().expect("shard poisoned");
                if let Some(mut entry) = shard.remove(&user) {
                    let _ = entry.session.close(user, CloseReason::Flush);
                }
            }
        }
    }

    /// Encodes every open session into a snapshot payload.
    ///
    /// Shards are captured one at a time: holding a shard's lock, the
    /// WAL's current last LSN is read *first* and recorded as every
    /// captured session's **cut** — appends for this shard's users
    /// happen under the same lock, so a session's state reflects exactly
    /// the records at or below its cut. On recovery, replay applies a
    /// record to a restored session only when the record's LSN exceeds
    /// the session's cut; sessions absent from the snapshot replay from
    /// whatever the log still holds (their records always end in a
    /// logged `Close` or continue past every cut, so this converges).
    /// Sessions are encoded sorted by user id, making the payload bytes
    /// deterministic for a given state — the crash tests compare them
    /// directly.
    pub fn export_snapshot(&self) -> crate::durability::EngineSnapshot {
        let mut entries: Vec<(UserId, u64, Vec<u8>)> = Vec::new();
        let mut min_cut = u64::MAX;
        for shard_mutex in &self.shards {
            let shard = shard_mutex.lock().expect("shard poisoned");
            let cut = self.wal.get().map(|w| w.last_lsn()).unwrap_or(0);
            min_cut = min_cut.min(cut);
            for (&user, entry) in shard.iter() {
                let mut bytes = Vec::new();
                entry.session.encode_into(&mut bytes);
                entries.push((user, cut, bytes));
            }
        }
        entries.sort_by_key(|&(user, _, _)| user);
        crate::durability::EngineSnapshot::assemble(&self.config, entries, min_cut)
    }
}

impl std::fmt::Debug for StreamEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamEngine")
            .field("config", &self.config)
            .field("open_sessions", &self.open_sessions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_geo::geodesy::destination;
    use traj_geo::Timestamp;

    fn track(n: usize, start_s: i64, step_s: i64) -> Vec<TrajectoryPoint> {
        let (mut lat, mut lon) = (39.9, 116.3);
        (0..n)
            .map(|i| {
                let p = TrajectoryPoint::new(
                    lat,
                    lon,
                    Timestamp::from_seconds(start_s + i as i64 * step_s),
                );
                let (nlat, nlon) = destination(lat, lon, (i as f64 * 31.0) % 360.0, 3.0);
                lat = nlat;
                lon = nlon;
                p
            })
            .collect()
    }

    #[test]
    fn ingest_routes_gaps_flushes_and_counters() {
        let engine = StreamEngine::new(StreamConfig::default());
        let mut points = track(15, 0, 5);
        points.extend(track(15, 2000, 5));
        let report = engine.ingest(42, &points, false);
        assert_eq!(report.accepted, 30);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.closed.len(), 1, "gap close");
        assert_eq!(report.open_points, 15);
        assert_eq!(engine.open_sessions(), 1);
        assert!(engine.state_bytes() > 0);

        let report = engine.ingest(42, &[], true);
        assert_eq!(report.closed.len(), 1, "flush close");
        assert_eq!(engine.open_sessions(), 0);

        let stats = engine.stats();
        assert_eq!(stats.points_accepted, 30);
        assert_eq!(stats.segments_closed, 2);
        assert_eq!(stats.segments_discarded, 0);
    }

    #[test]
    fn flush_all_closes_every_user() {
        let engine = StreamEngine::new(StreamConfig::default());
        for user in 0u32..8 {
            engine.ingest(user, &track(12, 0, 5), false);
        }
        // A ninth user with a too-short segment: discarded on flush.
        engine.ingest(99, &track(4, 0, 5), false);
        assert_eq!(engine.open_sessions(), 9);
        let closed = engine.flush_all();
        assert_eq!(closed.len(), 8);
        assert_eq!(engine.open_sessions(), 0);
        assert_eq!(engine.stats().segments_discarded, 1);
    }

    #[test]
    fn session_cap_evicts_least_recent() {
        let config = StreamConfig {
            n_shards: 1,
            max_sessions: 2,
            ..StreamConfig::default()
        };
        let engine = StreamEngine::new(config);
        engine.ingest(1, &track(12, 0, 5), false);
        engine.ingest(2, &track(12, 0, 5), false);
        // User 3 exceeds the cap: user 1 (least recent) is evicted and its
        // admitted segment surfaces in the report.
        let report = engine.ingest(3, &track(3, 0, 5), false);
        assert_eq!(engine.open_sessions(), 2);
        assert_eq!(engine.stats().evictions, 1);
        assert_eq!(report.closed.len(), 1);
        assert_eq!(report.closed[0].user, 1);
        assert_eq!(report.closed[0].reason, CloseReason::Eviction);
    }

    #[test]
    fn sweep_idle_with_zero_timeout_closes_all() {
        let config = StreamConfig {
            idle_timeout_s: 0,
            ..StreamConfig::default()
        };
        let engine = StreamEngine::new(config);
        engine.ingest(5, &track(12, 0, 5), false);
        std::thread::sleep(Duration::from_millis(5));
        let closed = engine.sweep_idle();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].reason, CloseReason::Idle);
        assert_eq!(engine.open_sessions(), 0);
    }

    #[test]
    fn extract_install_round_trips_bit_identically() {
        let engine = StreamEngine::new(StreamConfig::default());
        for user in 0u32..6 {
            engine.ingest(user, &track(17, 0, 5), false);
        }
        assert_eq!(engine.open_users(), vec![0, 1, 2, 3, 4, 5]);

        // Move users 1 and 4 (plus a non-existent 99, skipped) onto a
        // second engine and compare the combined state against an
        // uninterrupted reference. Export is a copy — the source keeps
        // its sessions until the explicit evict.
        let moved = engine.export_sessions(&[4, 1, 99]);
        assert_eq!(
            moved.iter().map(|&(u, _)| u).collect::<Vec<_>>(),
            vec![1, 4]
        );
        assert_eq!(engine.open_users(), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(engine.evict_sessions(&[4, 1, 99]), Ok(2));
        assert_eq!(engine.open_users(), vec![0, 2, 3, 5]);

        let target = StreamEngine::new(StreamConfig::default());
        for (user, bytes) in &moved {
            target.install_session_bytes(*user, bytes).expect("install");
        }
        // Continued ingest on the new owner matches a never-moved run.
        let more = track(9, 17 * 5 + 3, 5);
        let reference = StreamEngine::new(StreamConfig::default());
        for user in [1u32, 4] {
            reference.ingest(user, &track(17, 0, 5), false);
            reference.ingest(user, &more, false);
            target.ingest(user, &more, false);
        }
        let state = |e: &StreamEngine| {
            crate::durability::snapshot_sessions(&e.export_snapshot().payload)
                .expect("decode")
                .into_iter()
                .map(|(user, _, bytes)| (user, bytes))
                .collect::<Vec<_>>()
        };
        assert_eq!(state(&target), state(&reference));
        assert!(target.install_session_bytes(7, &[1, 2, 3]).is_err());
    }

    #[test]
    fn concurrent_ingest_from_many_threads() {
        let engine = std::sync::Arc::new(StreamEngine::new(StreamConfig::default()));
        std::thread::scope(|scope| {
            for user in 0u32..16 {
                let engine = std::sync::Arc::clone(&engine);
                scope.spawn(move || {
                    for chunk in track(24, 0, 5).chunks(6) {
                        engine.ingest(user, chunk, false);
                    }
                });
            }
        });
        assert_eq!(engine.open_sessions(), 16);
        let closed = engine.flush_all();
        assert_eq!(closed.len(), 16);
        assert_eq!(engine.stats().points_accepted, 16 * 24);
    }
}
