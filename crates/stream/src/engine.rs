//! The ingestion engine: per-user sessions sharded across mutexes, safe
//! to call concurrently from every server worker of the `traj-runtime`
//! pool.
//!
//! Each user maps to one shard (`user % n_shards`); a request locks only
//! its shard, so unrelated users ingest in parallel. Whole-engine
//! operations (flush, idle sweep, accounting) fan the shards out over
//! [`traj_runtime::parallel_map`].
//!
//! Memory is bounded twice over: per session by the summaries'
//! `exact_cap` (see [`crate::sessionizer`]) and globally by
//! `max_sessions` — inserting a user past the cap evicts the
//! least-recently-active session of the target shard, closing (and, when
//! admitted, emitting) its open segment.

use crate::sessionizer::{CloseReason, ClosedSegment, Session, SessionConfig, SessionPush};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use traj_geo::{TrajectoryPoint, UserId};

/// Engine tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Close the open segment on inter-fix gaps above this (seconds).
    pub max_gap_s: f64,
    /// Admission threshold of closed segments (paper: 10).
    pub min_points: usize,
    /// Per-series exact-phase cap before summaries degrade to sketches.
    pub exact_cap: usize,
    /// Shards the session map is split into.
    pub n_shards: usize,
    /// Global cap on concurrently open sessions; beyond it the engine
    /// evicts least-recently-active sessions.
    pub max_sessions: usize,
    /// Sessions idle longer than this many seconds are closed by
    /// [`StreamEngine::sweep_idle`].
    pub idle_timeout_s: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        let session = SessionConfig::default();
        StreamConfig {
            max_gap_s: session.max_gap_s,
            min_points: session.min_points,
            exact_cap: session.exact_cap,
            n_shards: 16,
            max_sessions: 65_536,
            idle_timeout_s: 300,
        }
    }
}

impl StreamConfig {
    fn session_config(&self) -> SessionConfig {
        SessionConfig {
            max_gap_s: self.max_gap_s,
            min_points: self.min_points,
            exact_cap: self.exact_cap,
        }
    }
}

/// Result of one [`StreamEngine::ingest`] call.
#[derive(Debug, Default)]
pub struct IngestReport {
    /// Points accepted into the user's session.
    pub accepted: usize,
    /// Points dropped by the timestamp policy.
    pub dropped: usize,
    /// Points left in the user's open segment after the call.
    pub open_points: usize,
    /// Segments closed (and admitted) during the call.
    pub closed: Vec<ClosedSegment>,
    /// Segments closed but discarded as shorter than `min_points`.
    pub discarded: usize,
}

/// Monotonic engine counters, exported through `/metrics`.
#[derive(Debug, Default)]
struct EngineCounters {
    points_accepted: AtomicU64,
    points_dropped: AtomicU64,
    segments_closed: AtomicU64,
    segments_discarded: AtomicU64,
    evictions: AtomicU64,
}

/// A plain snapshot of [`EngineCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Points accepted into sessions.
    pub points_accepted: u64,
    /// Points dropped by the timestamp policy.
    pub points_dropped: u64,
    /// Admitted segment closes.
    pub segments_closed: u64,
    /// Discarded (short) segment closes.
    pub segments_discarded: u64,
    /// Sessions evicted by the session cap.
    pub evictions: u64,
}

struct SessionEntry {
    session: Session,
    last_seen: Instant,
}

type Shard = HashMap<UserId, SessionEntry>;

/// The sharded ingestion engine. All methods take `&self`.
pub struct StreamEngine {
    config: StreamConfig,
    shards: Vec<Mutex<Shard>>,
    counters: EngineCounters,
}

impl StreamEngine {
    /// Builds an engine with `config` (shard count clamped to ≥ 1).
    pub fn new(config: StreamConfig) -> StreamEngine {
        let n_shards = config.n_shards.max(1);
        StreamEngine {
            config: StreamConfig { n_shards, ..config },
            shards: (0..n_shards).map(|_| Mutex::new(Shard::new())).collect(),
            counters: EngineCounters::default(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Ingests a batch of points for one user, in order. `flush` closes
    /// the user's open segment after the batch.
    pub fn ingest(&self, user: UserId, points: &[TrajectoryPoint], flush: bool) -> IngestReport {
        let mut report = IngestReport::default();
        let shard_index = self.shard_of(user);
        let mut shard = self.shards[shard_index].lock().expect("shard poisoned");

        if !shard.contains_key(&user) {
            self.evict_if_full(&mut shard, &mut report);
            shard.insert(
                user,
                SessionEntry {
                    session: Session::new(self.config.session_config()),
                    last_seen: Instant::now(),
                },
            );
        }
        let entry = shard.get_mut(&user).expect("inserted above");
        entry.last_seen = Instant::now();

        for &p in points {
            match entry.session.push(user, p) {
                SessionPush::Accepted => report.accepted += 1,
                SessionPush::Dropped => report.dropped += 1,
                SessionPush::Closed(closed) => {
                    report.accepted += 1; // the gap point re-opened
                    match closed {
                        Some(c) => report.closed.push(c),
                        None => report.discarded += 1,
                    }
                }
            }
        }
        if flush {
            match entry.session.close(user, CloseReason::Flush) {
                Some(c) => report.closed.push(c),
                None if entry.session.open_points() == 0 => {}
                None => report.discarded += 1,
            }
            shard.remove(&user);
        } else {
            report.open_points = entry.session.open_points();
        }
        drop(shard);

        self.counters
            .points_accepted
            .fetch_add(report.accepted as u64, Ordering::Relaxed);
        self.counters
            .points_dropped
            .fetch_add(report.dropped as u64, Ordering::Relaxed);
        self.counters
            .segments_closed
            .fetch_add(report.closed.len() as u64, Ordering::Relaxed);
        self.counters
            .segments_discarded
            .fetch_add(report.discarded as u64, Ordering::Relaxed);
        report
    }

    /// Closes every open session (e.g. at replay end or shutdown),
    /// fanning shards out over the runtime pool. Returns admitted
    /// segments; discards are counted in [`StreamEngine::stats`].
    pub fn flush_all(&self) -> Vec<ClosedSegment> {
        let indices: Vec<usize> = (0..self.shards.len()).collect();
        let per_shard: Vec<(Vec<ClosedSegment>, u64)> =
            traj_runtime::parallel_map(&indices, |_, &i| {
                let mut shard = self.shards[i].lock().expect("shard poisoned");
                let mut closed = Vec::new();
                let mut discarded = 0u64;
                for (user, mut entry) in shard.drain() {
                    match entry.session.close(user, CloseReason::Flush) {
                        Some(c) => closed.push(c),
                        None => discarded += 1,
                    }
                }
                (closed, discarded)
            });
        let mut all = Vec::new();
        for (closed, discarded) in per_shard {
            self.counters
                .segments_closed
                .fetch_add(closed.len() as u64, Ordering::Relaxed);
            self.counters
                .segments_discarded
                .fetch_add(discarded, Ordering::Relaxed);
            all.extend(closed);
        }
        all
    }

    /// Closes sessions with no points for longer than the configured
    /// idle timeout. Returns admitted segments.
    pub fn sweep_idle(&self) -> Vec<ClosedSegment> {
        let now = Instant::now();
        let timeout = Duration::from_secs(self.config.idle_timeout_s);
        let indices: Vec<usize> = (0..self.shards.len()).collect();
        let per_shard: Vec<(Vec<ClosedSegment>, u64)> =
            traj_runtime::parallel_map(&indices, |_, &i| {
                let mut shard = self.shards[i].lock().expect("shard poisoned");
                let idle: Vec<UserId> = shard
                    .iter()
                    .filter(|(_, e)| now.duration_since(e.last_seen) > timeout)
                    .map(|(&u, _)| u)
                    .collect();
                let mut closed = Vec::new();
                let mut discarded = 0u64;
                for user in idle {
                    let mut entry = shard.remove(&user).expect("listed above");
                    match entry.session.close(user, CloseReason::Idle) {
                        Some(c) => closed.push(c),
                        None => discarded += 1,
                    }
                }
                (closed, discarded)
            });
        let mut all = Vec::new();
        for (closed, discarded) in per_shard {
            self.counters
                .segments_closed
                .fetch_add(closed.len() as u64, Ordering::Relaxed);
            self.counters
                .segments_discarded
                .fetch_add(discarded, Ordering::Relaxed);
            all.extend(closed);
        }
        all
    }

    /// Number of currently open sessions.
    pub fn open_sessions(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").len())
            .sum()
    }

    /// Total bytes of per-session state currently held.
    pub fn state_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("shard poisoned")
                    .values()
                    .map(|e| e.session.state_bytes())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Snapshot of the monotonic counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            points_accepted: self.counters.points_accepted.load(Ordering::Relaxed),
            points_dropped: self.counters.points_dropped.load(Ordering::Relaxed),
            segments_closed: self.counters.segments_closed.load(Ordering::Relaxed),
            segments_discarded: self.counters.segments_discarded.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
        }
    }

    fn shard_of(&self, user: UserId) -> usize {
        user as usize % self.shards.len()
    }

    /// Evicts the least-recently-active session of `shard` when the
    /// global cap (apportioned per shard) is reached.
    fn evict_if_full(&self, shard: &mut Shard, report: &mut IngestReport) {
        let per_shard_cap = self.config.max_sessions.div_ceil(self.shards.len()).max(1);
        if shard.len() < per_shard_cap {
            return;
        }
        let Some(&victim) = shard
            .iter()
            .min_by_key(|(_, e)| e.last_seen)
            .map(|(u, _)| u)
        else {
            return;
        };
        let mut entry = shard.remove(&victim).expect("selected above");
        self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        match entry.session.close(victim, CloseReason::Eviction) {
            Some(c) => {
                self.counters
                    .segments_closed
                    .fetch_add(1, Ordering::Relaxed);
                report.closed.push(c);
            }
            None => {
                self.counters
                    .segments_discarded
                    .fetch_add(1, Ordering::Relaxed);
                report.discarded += 1;
            }
        }
    }
}

impl std::fmt::Debug for StreamEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamEngine")
            .field("config", &self.config)
            .field("open_sessions", &self.open_sessions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_geo::geodesy::destination;
    use traj_geo::Timestamp;

    fn track(n: usize, start_s: i64, step_s: i64) -> Vec<TrajectoryPoint> {
        let (mut lat, mut lon) = (39.9, 116.3);
        (0..n)
            .map(|i| {
                let p = TrajectoryPoint::new(
                    lat,
                    lon,
                    Timestamp::from_seconds(start_s + i as i64 * step_s),
                );
                let (nlat, nlon) = destination(lat, lon, (i as f64 * 31.0) % 360.0, 3.0);
                lat = nlat;
                lon = nlon;
                p
            })
            .collect()
    }

    #[test]
    fn ingest_routes_gaps_flushes_and_counters() {
        let engine = StreamEngine::new(StreamConfig::default());
        let mut points = track(15, 0, 5);
        points.extend(track(15, 2000, 5));
        let report = engine.ingest(42, &points, false);
        assert_eq!(report.accepted, 30);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.closed.len(), 1, "gap close");
        assert_eq!(report.open_points, 15);
        assert_eq!(engine.open_sessions(), 1);
        assert!(engine.state_bytes() > 0);

        let report = engine.ingest(42, &[], true);
        assert_eq!(report.closed.len(), 1, "flush close");
        assert_eq!(engine.open_sessions(), 0);

        let stats = engine.stats();
        assert_eq!(stats.points_accepted, 30);
        assert_eq!(stats.segments_closed, 2);
        assert_eq!(stats.segments_discarded, 0);
    }

    #[test]
    fn flush_all_closes_every_user() {
        let engine = StreamEngine::new(StreamConfig::default());
        for user in 0u32..8 {
            engine.ingest(user, &track(12, 0, 5), false);
        }
        // A ninth user with a too-short segment: discarded on flush.
        engine.ingest(99, &track(4, 0, 5), false);
        assert_eq!(engine.open_sessions(), 9);
        let closed = engine.flush_all();
        assert_eq!(closed.len(), 8);
        assert_eq!(engine.open_sessions(), 0);
        assert_eq!(engine.stats().segments_discarded, 1);
    }

    #[test]
    fn session_cap_evicts_least_recent() {
        let config = StreamConfig {
            n_shards: 1,
            max_sessions: 2,
            ..StreamConfig::default()
        };
        let engine = StreamEngine::new(config);
        engine.ingest(1, &track(12, 0, 5), false);
        engine.ingest(2, &track(12, 0, 5), false);
        // User 3 exceeds the cap: user 1 (least recent) is evicted and its
        // admitted segment surfaces in the report.
        let report = engine.ingest(3, &track(3, 0, 5), false);
        assert_eq!(engine.open_sessions(), 2);
        assert_eq!(engine.stats().evictions, 1);
        assert_eq!(report.closed.len(), 1);
        assert_eq!(report.closed[0].user, 1);
        assert_eq!(report.closed[0].reason, CloseReason::Eviction);
    }

    #[test]
    fn sweep_idle_with_zero_timeout_closes_all() {
        let config = StreamConfig {
            idle_timeout_s: 0,
            ..StreamConfig::default()
        };
        let engine = StreamEngine::new(config);
        engine.ingest(5, &track(12, 0, 5), false);
        std::thread::sleep(Duration::from_millis(5));
        let closed = engine.sweep_idle();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].reason, CloseReason::Idle);
        assert_eq!(engine.open_sessions(), 0);
    }

    #[test]
    fn concurrent_ingest_from_many_threads() {
        let engine = std::sync::Arc::new(StreamEngine::new(StreamConfig::default()));
        std::thread::scope(|scope| {
            for user in 0u32..16 {
                let engine = std::sync::Arc::clone(&engine);
                scope.spawn(move || {
                    for chunk in track(24, 0, 5).chunks(6) {
                        engine.ingest(user, chunk, false);
                    }
                });
            }
        });
        assert_eq!(engine.open_sessions(), 16);
        let closed = engine.flush_all();
        assert_eq!(closed.len(), 16);
        assert_eq!(engine.stats().points_accepted, 16 * 24);
    }
}
