//! Property-based serde round-trip regression tests for the streaming
//! state types (`P2Quantile`, `AdaptiveSummary`, `Session`).
//!
//! A state object serialised mid-stream, deserialised, and then fed the
//! rest of the stream must behave **bit-identically** to the original
//! that never left memory — same emitted values, same closed-segment
//! features, same internal state bytes (via the binary durability
//! codec, which round-trips every field exactly). This is the contract
//! snapshot recovery rests on: serialisation must be lossless even for
//! the awkward cases — ±inf min/max sentinels of empty summaries,
//! subnormal-ish derivative values, sketch marker positions mid-drift.
//!
//! JSON is the adversarial channel here (text round-trips are where
//! float fidelity goes to die); the binary codec gets the same
//! treatment in the unit tests next to each type.

use proptest::prelude::*;
use traj_features::stats::SeriesSummary;
use traj_geo::geodesy::destination;
use traj_geo::{Timestamp, TrajectoryPoint};
use traj_stream::{AdaptiveSummary, CloseReason, P2Quantile, Session, SessionConfig, SessionPush};

/// Movement steps: (speed m/s, heading deg, dt class). Class 0 is a
/// duplicate timestamp (dropped by policy), 21+ is a segment gap.
fn steps() -> impl Strategy<Value = Vec<(f64, f64, i64)>> {
    proptest::collection::vec((0.0..45.0f64, 0.0..360.0f64, 0u8..24), 12..100).prop_map(|raw| {
        raw.into_iter()
            .map(|(speed, heading, dt_class)| {
                let dt = match dt_class {
                    0 => 0,
                    1..=20 => dt_class as i64,
                    _ => 150 + dt_class as i64 * 17,
                };
                (speed, heading, dt)
            })
            .collect()
    })
}

fn points_of(steps: &[(f64, f64, i64)]) -> Vec<TrajectoryPoint> {
    let (mut lat, mut lon) = (39.9, 116.3);
    let mut t = 0i64;
    let mut out = Vec::with_capacity(steps.len() + 1);
    out.push(TrajectoryPoint::new(lat, lon, Timestamp::from_seconds(t)));
    for &(speed, heading, dt) in steps {
        let (nlat, nlon) = destination(lat, lon, heading, speed * dt.max(1) as f64);
        lat = nlat;
        lon = nlon;
        t += dt;
        out.push(TrajectoryPoint::new(lat, lon, Timestamp::from_seconds(t)));
    }
    out
}

/// Drains `points` through `session`, collecting everything observable:
/// closed-segment feature rows and the final flushed row.
fn drive(session: &mut Session, points: &[TrajectoryPoint]) -> Vec<Vec<f64>> {
    let mut rows = Vec::new();
    for &p in points {
        if let SessionPush::Closed(Some(c)) = session.push(7, p) {
            rows.push(c.features);
        }
    }
    if let Some(c) = session.close(7, CloseReason::Flush) {
        rows.push(c.features);
    }
    rows
}

fn bits_eq(a: &[Vec<f64>], b: &[Vec<f64>]) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len(), "row count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        prop_assert_eq!(x.len(), y.len());
        for (j, (g, w)) in x.iter().zip(y.iter()).enumerate() {
            prop_assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "row {} feature {}: {} vs {}",
                i,
                j,
                g,
                w
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// P² sketch: JSON round trip at an arbitrary warm-up point, then
    /// both copies observe the same tail — estimates stay bit-equal.
    #[test]
    fn p2_roundtrip_continues_identically(
        values in proptest::collection::vec(-1e4..1e4f64, 0..200),
        split in 0usize..200,
        q in 1usize..10,
    ) {
        let mut original = P2Quantile::new(q as f64 / 10.0);
        let split = split.min(values.len());
        for &v in &values[..split] {
            original.observe(v);
        }
        let json = serde_json::to_string(&original).expect("serialize");
        let mut restored: P2Quantile = serde_json::from_str(&json).expect("deserialize");
        for &v in &values[split..] {
            original.observe(v);
            restored.observe(v);
            prop_assert_eq!(original.count(), restored.count());
            prop_assert_eq!(
                original.estimate().to_bits(),
                restored.estimate().to_bits()
            );
        }
    }

    /// AdaptiveSummary: round trip in the exact phase, at the sketch
    /// hand-off, and deep into sketch mode — the continued summaries
    /// stay bit-identical in state, not just in output.
    #[test]
    fn summary_roundtrip_continues_identically(
        values in proptest::collection::vec(-1e4..1e4f64, 1..300),
        split in 0usize..300,
        cap_class in 0usize..3,
    ) {
        let cap = [16usize, 64, 512][cap_class];
        let mut original = AdaptiveSummary::new(cap);
        let split = split.min(values.len());
        for &v in &values[..split] {
            original.push(v);
        }
        let json = serde_json::to_string(&original).expect("serialize");
        let mut restored: AdaptiveSummary = serde_json::from_str(&json).expect("deserialize");
        for &v in &values[split..] {
            original.push(v);
            restored.push(v);
        }
        // State equality, not just output equality: re-serialising both
        // continued copies must yield the same JSON.
        prop_assert_eq!(
            serde_json::to_string(&original).expect("serialize"),
            serde_json::to_string(&restored).expect("serialize")
        );
        let (a, b) = (original.stats10(), restored.stats10());
        prop_assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
    }

    /// Whole session: serialise mid-stream (possibly mid-segment, right
    /// after a gap, or before any point), continue both copies through
    /// the same tail — every later close emits bit-identical features.
    #[test]
    fn session_roundtrip_continues_identically(steps in steps(), frac in 0.0..1.0f64) {
        let points = points_of(&steps);
        let split = ((points.len() as f64) * frac) as usize;

        let mut original = Session::new(SessionConfig {
            exact_cap: 64, // small enough that long tails exercise sketch state
            ..SessionConfig::default()
        });
        for &p in &points[..split] {
            let _ = original.push(7, p);
        }

        let json = serde_json::to_string(&original).expect("serialize");
        let mut restored: Session = serde_json::from_str(&json).expect("deserialize");

        let a = drive(&mut original, &points[split..]);
        let b = drive(&mut restored, &points[split..]);
        bits_eq(&a, &b)?;
    }
}
