//! Property-based streaming-vs-batch parity.
//!
//! Random synthetic per-user point streams — variable speeds, headings,
//! sampling intervals, duplicate timestamps, and segment-closing gaps —
//! are fed through the streaming engine and through the batch path
//! (`split_on_gaps` + `Pipeline::dataset_from_segments`). Closed segments
//! must agree exactly: same segment boundaries, and bit-identical
//! 70-feature rows under the default `exact_cap`. A second property
//! shrinks `exact_cap` so every close degrades to sketch mode, and checks
//! the documented error contract instead: global statistics bit-identical
//! (min/max/mean) or ~1e-9 (std), percentiles within `0.25 × range` and
//! clamped into `[min, max]`.

use proptest::prelude::*;
use traj_geo::geodesy::destination;
use traj_geo::segmentation::{split_on_gaps, MIN_SEGMENT_POINTS};
use traj_geo::LabelScheme;
use traj_geo::{Segment, Timestamp, TrajectoryPoint, TransportMode};
use traj_stream::{Session, SessionConfig, SessionPush, StreamConfig, StreamEngine};
use trajlib::pipeline::{Normalization, Pipeline, PipelineConfig};

const MAX_GAP_S: f64 = 120.0;

/// One generated stream step: movement plus a time delta that may be a
/// duplicate timestamp (`0`), a normal interval, or a gap.
fn steps() -> impl Strategy<Value = Vec<(f64, f64, i64)>> {
    proptest::collection::vec((0.0..45.0f64, 0.0..360.0f64, 0u8..24), 8..120).prop_map(|raw| {
        raw.into_iter()
            .map(|(speed, heading, dt_class)| {
                let dt = match dt_class {
                    0 => 0,                          // duplicate timestamp
                    1..=20 => dt_class as i64,       // normal sampling
                    _ => 150 + dt_class as i64 * 17, // gap > MAX_GAP_S
                };
                (speed, heading, dt)
            })
            .collect()
    })
}

/// Gap-free steps long enough that a small `exact_cap` forces every
/// close into sketch mode with a statistically meaningful sample — the
/// regime the documented P² error contract describes.
fn long_steps() -> impl Strategy<Value = Vec<(f64, f64, i64)>> {
    proptest::collection::vec((0.0..45.0f64, 0.0..360.0f64, 0u8..21), 100..260).prop_map(|raw| {
        raw.into_iter()
            .map(|(speed, heading, dt_class)| (speed, heading, dt_class as i64))
            .collect()
    })
}

/// Materialises a step list into a point stream (timestamps never go
/// backwards; duplicates carry fresh coordinates so dropping them is
/// observable in the features).
fn points_of(steps: &[(f64, f64, i64)]) -> Vec<TrajectoryPoint> {
    let (mut lat, mut lon) = (39.9, 116.3);
    let mut t = 0i64;
    let mut out = Vec::with_capacity(steps.len() + 1);
    out.push(TrajectoryPoint::new(lat, lon, Timestamp::from_seconds(t)));
    for &(speed, heading, dt) in steps {
        let (nlat, nlon) = destination(lat, lon, heading, speed * dt.max(1) as f64);
        lat = nlat;
        lon = nlon;
        t += dt;
        out.push(TrajectoryPoint::new(lat, lon, Timestamp::from_seconds(t)));
    }
    out
}

/// Batch reference: gap-split the whole stream, then run the pipeline
/// (raw labels, no normalisation) over the pieces.
fn batch_rows(points: &[TrajectoryPoint]) -> Vec<Vec<f64>> {
    let segment = Segment::new(7, TransportMode::Bus, 0, points.to_vec());
    let pieces = split_on_gaps(&segment, MAX_GAP_S, MIN_SEGMENT_POINTS);
    let pipeline = Pipeline::new(
        PipelineConfig::builder(LabelScheme::Raw)
            .normalization(Normalization::None)
            .build(),
    );
    let dataset = pipeline.dataset_from_segments(&pieces);
    (0..dataset.len())
        .map(|i| dataset.row(i).to_vec())
        .collect()
}

/// Streams the points through one session and returns the admitted
/// closed-segment feature rows plus their exactness flags.
fn stream_rows(points: &[TrajectoryPoint], exact_cap: usize) -> Vec<(Vec<f64>, bool)> {
    let mut session = Session::new(SessionConfig {
        exact_cap,
        ..SessionConfig::default()
    });
    let mut out = Vec::new();
    for &p in points {
        if let SessionPush::Closed(Some(c)) = session.push(7, p) {
            out.push((c.features, c.exact));
        }
    }
    if let Some(c) = session.close(7, traj_stream::CloseReason::Flush) {
        out.push((c.features, c.exact));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Default cap: every closed segment is exact and bit-identical to
    /// the batch pipeline, segment for segment.
    #[test]
    fn streaming_matches_batch_bit_for_bit(steps in steps()) {
        let points = points_of(&steps);
        let batch = batch_rows(&points);
        let stream = stream_rows(&points, 512);
        prop_assert_eq!(stream.len(), batch.len(), "segment count");
        for (i, ((got, exact), want)) in stream.iter().zip(&batch).enumerate() {
            prop_assert!(*exact, "segment {i} should close exact");
            prop_assert_eq!(got.len(), want.len());
            for (j, (g, w)) in got.iter().zip(want.iter()).enumerate() {
                prop_assert_eq!(g.to_bits(), w.to_bits(),
                    "segment {} feature {}: {} vs {}", i, j, g, w);
            }
        }
    }

    /// Tiny cap: closes degrade to sketches, and the documented error
    /// contract holds against the batch reference.
    #[test]
    fn sketch_mode_respects_the_error_contract(steps in long_steps()) {
        let points = points_of(&steps);
        let batch = batch_rows(&points);
        let stream = stream_rows(&points, 32);
        prop_assert_eq!(stream.len(), batch.len(), "segment count");
        for ((got, exact), want) in stream.iter().zip(&batch) {
            prop_assert!(!exact, "cap 32 must degrade a 100+-point segment");
            // Each series contributes 10 consecutive stats:
            // [min, max, mean, median, std, p10, p25, p50, p75, p90].
            for (g10, w10) in got.chunks(10).zip(want.chunks(10)) {
                prop_assert_eq!(g10[0].to_bits(), w10[0].to_bits(), "min");
                prop_assert_eq!(g10[1].to_bits(), w10[1].to_bits(), "max");
                prop_assert_eq!(g10[2].to_bits(), w10[2].to_bits(), "mean");
                prop_assert!((g10[4] - w10[4]).abs() <= 1e-9 * w10[4].abs().max(1.0),
                    "std {} vs {}", g10[4], w10[4]);
                let bound = 0.25 * (w10[1] - w10[0]);
                for k in [3usize, 5, 6, 7, 8, 9] {
                    prop_assert!((g10[k] - w10[k]).abs() <= bound + 1e-12,
                        "stat {}: {} vs {} (bound {})", k, g10[k], w10[k], bound);
                    prop_assert!(g10[k] >= w10[0] - 1e-12 && g10[k] <= w10[1] + 1e-12,
                        "stat {} out of range", k);
                }
            }
        }
    }

    /// The engine agrees with the raw session for a single user fed in
    /// arbitrary chunk sizes.
    #[test]
    fn engine_chunking_is_transparent(steps in steps(), chunk in 1usize..16) {
        let points = points_of(&steps);
        let engine = StreamEngine::new(StreamConfig::default());
        let mut engine_rows: Vec<Vec<f64>> = Vec::new();
        for batch in points.chunks(chunk) {
            engine_rows.extend(engine.ingest(7, batch, false).closed.into_iter().map(|c| c.features));
        }
        engine_rows.extend(engine.flush_all().into_iter().map(|c| c.features));
        let session_rows: Vec<Vec<f64>> =
            stream_rows(&points, 512).into_iter().map(|(f, _)| f).collect();
        prop_assert_eq!(engine_rows, session_rows);
    }
}
