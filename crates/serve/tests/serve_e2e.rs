//! End-to-end serving test: train a real artifact on the synthetic
//! GeoLife cohort, bind a server on an ephemeral port, and drive the full
//! HTTP surface — happy-path predictions, batch predictions, the error
//! responses the API contracts (400/404/413/422), and the metrics
//! endpoint reflecting all of it.

use std::io::BufReader;
use std::net::TcpStream;
use traj_geo::{LabelScheme, Segment};
use traj_geolife::{SynthConfig, SynthDataset};
use traj_serve::artifact::{ModelArtifact, TrainSpec, MIN_SEGMENT_POINTS};
use traj_serve::http::client_request;
use traj_serve::registry::ModelRegistry;
use traj_serve::server::{serve, ServerConfig, ServerHandle};

/// Trains a small random forest on synthetic segments and serves it.
fn start_server() -> (ServerHandle, Vec<Segment>) {
    let segs = SynthDataset::generate(&SynthConfig {
        n_users: 5,
        segments_per_user: (5, 8),
        seed: 97,
        ..SynthConfig::default()
    })
    .segments;
    let spec = TrainSpec {
        top_k: Some(20),
        seed: 3,
        ..TrainSpec::paper_default("rf")
    };
    let artifact = ModelArtifact::train(&spec, &segs).expect("train");
    let mut registry = ModelRegistry::new();
    registry.insert(artifact).expect("insert");
    let config = ServerConfig {
        workers: 2,
        max_body_bytes: 64 * 1024,
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", registry, config).expect("bind ephemeral port");
    (handle, segs)
}

fn connect(handle: &ServerHandle) -> BufReader<TcpStream> {
    BufReader::new(TcpStream::connect(handle.addr()).expect("connect"))
}

/// Walks a path of map keys in a parsed metrics document and returns the
/// integer counter at the end.
fn counter(value: &serde::Value, path: &[&str]) -> u64 {
    let mut node = value;
    for key in path {
        let serde::Value::Map(entries) = node else {
            panic!("expected a map at {key:?}");
        };
        node = serde::map_get(entries, key).unwrap_or_else(|| panic!("missing key {key:?}"));
    }
    match node {
        serde::Value::Int(n) => u64::try_from(*n).expect("non-negative counter"),
        serde::Value::UInt(n) => *n,
        serde::Value::Float(f) => *f as u64,
        other => panic!("expected a number, got {other:?}"),
    }
}

fn points_json(segment: &Segment) -> String {
    let points: Vec<String> = segment
        .points
        .iter()
        .map(|p| format!("{{\"lat\":{},\"lon\":{},\"t\":{}}}", p.lat, p.lon, p.t.0))
        .collect();
    format!("[{}]", points.join(","))
}

#[test]
fn full_surface_end_to_end() {
    let (mut handle, segs) = start_server();
    let mut client = connect(&handle);
    let long: Vec<&Segment> = segs
        .iter()
        .filter(|s| s.len() >= MIN_SEGMENT_POINTS)
        .collect();
    assert!(long.len() >= 2, "synth cohort must have long segments");

    // Liveness names the loaded model.
    let (status, body) = client_request(&mut client, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"rf\""), "{body}");

    // Happy path: raw GPS points come back as a label with a score
    // distribution over the scheme's classes.
    let request = format!("{{\"points\":{}}}", points_json(long[0]));
    let (status, body) = client_request(&mut client, "POST", "/predict", Some(&request)).unwrap();
    assert_eq!(status, 200, "{body}");
    let names = LabelScheme::Dabiri.class_names();
    assert!(
        names
            .iter()
            .any(|n| body.contains(&format!("\"label\":\"{n}\""))),
        "label must be a Dabiri class name: {body}"
    );
    assert!(body.contains("\"scores\":["), "{body}");

    // Pinned-version addressing works.
    let pinned = format!(
        "{{\"model\":\"rf@v1\",\"points\":{}}}",
        points_json(long[0])
    );
    let (status, _) = client_request(&mut client, "POST", "/predict", Some(&pinned)).unwrap();
    assert_eq!(status, 200);

    // Batch path: two segments in, two labeled results out.
    let batch = format!(
        "{{\"segments\":[{},{}]}}",
        points_json(long[0]),
        points_json(long[1])
    );
    let (status, body) =
        client_request(&mut client, "POST", "/predict_batch", Some(&batch)).unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(body.matches("\"label\":").count(), 2, "{body}");

    // Contracted error responses.
    let (status, _) = client_request(&mut client, "POST", "/predict", Some("{not json")).unwrap();
    assert_eq!(status, 400);
    let unknown = format!("{{\"model\":\"nope\",\"points\":{}}}", points_json(long[0]));
    let (status, _) = client_request(&mut client, "POST", "/predict", Some(&unknown)).unwrap();
    assert_eq!(status, 404);
    let short = "{\"points\":[{\"lat\":1.0,\"lon\":1.0,\"t\":0}]}";
    let (status, _) = client_request(&mut client, "POST", "/predict", Some(short)).unwrap();
    assert_eq!(status, 422);
    let (status, _) = client_request(&mut client, "GET", "/nope", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = client_request(&mut client, "GET", "/predict", None).unwrap();
    assert_eq!(status, 405);

    // Oversized body → 413, after which the server closes the connection;
    // use a dedicated connection so the keep-alive client above survives.
    let mut fat_client = connect(&handle);
    let fat = format!(
        "{{\"points\":[{}]}}",
        "{\"lat\":1.0,\"lon\":1.0,\"t\":0},".repeat(4000)
    );
    let (status, _) = client_request(&mut fat_client, "POST", "/predict", Some(&fat)).unwrap();
    assert_eq!(status, 413);

    // Metrics saw everything: successes, client errors, latency samples
    // and per-model prediction counts, but no server errors.
    let (status, body) = client_request(&mut client, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"responses_5xx\": 0"), "{body}");
    assert!(!body.contains("\"requests_total\": 0"), "{body}");
    let metrics: serde::Value = serde_json::from_str(&body).expect("metrics is JSON");
    // healthz + predict + pinned predict + batch; the /metrics response
    // itself is counted only after the snapshot is rendered.
    assert!(counter(&metrics, &["responses_2xx"]) >= 4);
    assert!(counter(&metrics, &["responses_4xx"]) >= 4);
    assert!(counter(&metrics, &["latency_us", "count"]) >= counter(&metrics, &["responses_2xx"]));
    assert!(counter(&metrics, &["batch_size", "count"]) >= 1);
    assert!(counter(&metrics, &["predictions_per_model", "rf"]) >= 4);

    handle.stop().expect("stop");
}

#[test]
fn concurrent_clients_are_all_served() {
    let (mut handle, segs) = start_server();
    let seg = segs
        .iter()
        .find(|s| s.len() >= MIN_SEGMENT_POINTS)
        .expect("long segment");
    let request = format!("{{\"points\":{}}}", points_json(seg));

    let addr = handle.addr();
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let request = request.clone();
            std::thread::spawn(move || {
                let mut client = BufReader::new(TcpStream::connect(addr).expect("connect"));
                for _ in 0..25 {
                    let (status, body) =
                        client_request(&mut client, "POST", "/predict", Some(&request))
                            .expect("request");
                    assert_eq!(status, 200, "{body}");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }

    let mut client = connect(&handle);
    let (_, body) = client_request(&mut client, "GET", "/metrics", None).unwrap();
    assert!(body.contains("\"responses_5xx\": 0"), "{body}");
    let metrics: serde::Value = serde_json::from_str(&body).unwrap();
    assert!(counter(&metrics, &["responses_2xx"]) >= 100);

    handle.stop().expect("stop");
}
