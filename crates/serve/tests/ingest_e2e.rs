//! End-to-end streaming-ingestion tests: a trained Paper70 model behind
//! `POST /ingest`, fed per-user point chunks over HTTP. Covers gap and
//! flush closes, parity with the offline `/predict` answer for the same
//! points, the Paper70-only contract, idle sweeping, and the ingestion
//! section of `/metrics`. The `#[ignore]`d soak drives a bounded synth
//! slice through the endpoint and asserts zero non-2xx plus bounded
//! server-side session state — the CI stream-soak leg.

use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;
use traj_geo::Segment;
use traj_geolife::{SynthConfig, SynthDataset};
use traj_serve::artifact::{ModelArtifact, TrainSpec, MIN_SEGMENT_POINTS};
use traj_serve::featurize::ServeFeatureSet;
use traj_serve::http::client_request;
use traj_serve::registry::ModelRegistry;
use traj_serve::server::{serve, ServerConfig, ServerHandle};

fn synth_segments(seed: u64) -> Vec<Segment> {
    SynthDataset::generate(&SynthConfig {
        n_users: 5,
        segments_per_user: (5, 8),
        seed,
        ..SynthConfig::default()
    })
    .segments
}

fn start_server(config: ServerConfig) -> (ServerHandle, Vec<Segment>) {
    let segs = synth_segments(97);
    let spec = TrainSpec {
        kind: traj_ml::ClassifierKind::DecisionTree,
        seed: 3,
        ..TrainSpec::paper_default("tree")
    };
    let artifact = ModelArtifact::train(&spec, &segs).expect("train");
    let mut registry = ModelRegistry::new();
    registry.insert(artifact).expect("insert");
    let handle = serve("127.0.0.1:0", registry, config).expect("bind ephemeral port");
    (handle, segs)
}

fn connect(handle: &ServerHandle) -> BufReader<TcpStream> {
    BufReader::new(TcpStream::connect(handle.addr()).expect("connect"))
}

fn points_json(points: &[traj_geo::TrajectoryPoint]) -> String {
    let dtos: Vec<String> = points
        .iter()
        .map(|p| format!("{{\"lat\":{},\"lon\":{},\"t\":{}}}", p.lat, p.lon, p.t.0))
        .collect();
    format!("[{}]", dtos.join(","))
}

fn label_of(body: &str) -> &str {
    let start = body.find("\"label\":\"").expect("label field") + 9;
    let end = body[start..].find('"').expect("label close") + start;
    &body[start..end]
}

#[test]
fn ingest_closes_segments_and_matches_predict() {
    let (mut handle, segs) = start_server(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let mut client = connect(&handle);
    let seg = segs
        .iter()
        .find(|s| s.len() >= MIN_SEGMENT_POINTS)
        .expect("long segment");

    // Stream the segment in two chunks: no close yet.
    let mid = seg.len() / 2;
    let request = format!(
        "{{\"user\":1,\"points\":{}}}",
        points_json(&seg.points[..mid])
    );
    let (status, body) = client_request(&mut client, "POST", "/ingest", Some(&request)).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"predictions\":[]"), "{body}");

    // Second chunk with flush: exactly one prediction, bit-equal to the
    // batch answer for the same points via /predict.
    let request = format!(
        "{{\"user\":1,\"points\":{},\"flush\":true}}",
        points_json(&seg.points[mid..])
    );
    let (status, body) = client_request(&mut client, "POST", "/ingest", Some(&request)).unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(body.matches("\"reason\":").count(), 1, "{body}");
    assert!(body.contains("\"reason\":\"flush\""), "{body}");
    assert!(body.contains("\"exact\":true"), "{body}");
    assert!(
        body.contains(&format!("\"n_points\":{}", seg.len())),
        "{body}"
    );
    let streamed_label = label_of(&body).to_owned();

    let request = format!("{{\"points\":{}}}", points_json(&seg.points));
    let (status, batch_body) =
        client_request(&mut client, "POST", "/predict", Some(&request)).unwrap();
    assert_eq!(status, 200, "{batch_body}");
    assert_eq!(label_of(&batch_body), streamed_label, "{batch_body}");

    // A time gap inside one request closes the first segment and keeps
    // the tail open under a different user.
    let shifted: Vec<traj_geo::TrajectoryPoint> = seg
        .points
        .iter()
        .map(|p| {
            // +1 day, in the wire unit (milliseconds since the epoch).
            traj_geo::TrajectoryPoint::new(p.lat, p.lon, traj_geo::Timestamp(p.t.0 + 86_400_000))
        })
        .collect();
    let mut gapped = seg.points.clone();
    gapped.extend(shifted);
    let request = format!("{{\"user\":2,\"points\":{}}}", points_json(&gapped));
    let (status, body) = client_request(&mut client, "POST", "/ingest", Some(&request)).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"reason\":\"gap\""), "{body}");
    assert!(
        body.contains(&format!("\"open_points\":{}", seg.len())),
        "{body}"
    );

    // Ingestion metrics reflect the traffic.
    let (status, body) = client_request(&mut client, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"ingest\": {"), "{body}");
    assert!(body.contains("\"open_sessions\": 1"), "{body}");
    assert!(!body.contains("\"points_total\": 0,"), "{body}");
    assert!(body.contains("\"exact_closes\": 2"), "{body}");

    handle.stop().expect("stop");
}

#[test]
fn ingest_rejects_non_paper70_models_and_bad_input() {
    let segs = synth_segments(31);
    let spec = TrainSpec {
        kind: traj_ml::ClassifierKind::DecisionTree,
        feature_set: ServeFeatureSet::Zheng11,
        seed: 5,
        ..TrainSpec::paper_default("zheng")
    };
    let artifact = ModelArtifact::train(&spec, &segs).expect("train");
    let mut registry = ModelRegistry::new();
    registry.insert(artifact).expect("insert");
    let mut handle = serve(
        "127.0.0.1:0",
        registry,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut client = connect(&handle);

    // The engine emits the canonical 70-feature row; a Zheng11 model
    // cannot consume it.
    let request = "{\"user\":1,\"points\":[{\"lat\":39.9,\"lon\":116.3,\"t\":0}]}";
    let (status, body) = client_request(&mut client, "POST", "/ingest", Some(request)).unwrap();
    assert_eq!(status, 409, "{body}");

    let (status, _) = client_request(&mut client, "POST", "/ingest", Some("{not json")).unwrap();
    assert_eq!(status, 400);
    let unknown = "{\"model\":\"nope\",\"user\":1,\"points\":[]}";
    let (status, _) = client_request(&mut client, "POST", "/ingest", Some(unknown)).unwrap();
    assert_eq!(status, 404);
    let (status, _) = client_request(&mut client, "GET", "/ingest", None).unwrap();
    assert_eq!(status, 405);

    handle.stop().expect("stop");
}

#[test]
fn idle_sweeper_closes_abandoned_sessions() {
    let (mut handle, segs) = start_server(ServerConfig {
        workers: 2,
        stream: traj_stream::StreamConfig {
            idle_timeout_s: 0,
            ..traj_stream::StreamConfig::default()
        },
        idle_sweep_interval: Duration::from_millis(100),
        ..ServerConfig::default()
    });
    let mut client = connect(&handle);
    let seg = segs
        .iter()
        .find(|s| s.len() >= MIN_SEGMENT_POINTS)
        .expect("long segment");

    let request = format!("{{\"user\":9,\"points\":{}}}", points_json(&seg.points));
    let (status, body) = client_request(&mut client, "POST", "/ingest", Some(&request)).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"predictions\":[]"), "{body}");

    // The sweeper (idle timeout 0) closes the abandoned session.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        std::thread::sleep(Duration::from_millis(100));
        let (status, body) = client_request(&mut client, "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        if body.contains("\"open_sessions\": 0") && body.contains("\"segments_closed\": 1") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "sweeper never closed the idle session: {body}"
        );
    }

    handle.stop().expect("stop");
}

/// Bounded soak: a synth slice streamed through `/ingest` chunk by
/// chunk. Gate: zero non-2xx, and server-side session state stays
/// bounded (the engine's own accounting, which the per-session
/// `exact_cap` caps at ~28 KiB per open session).
#[test]
#[ignore = "soak: run explicitly (CI stream-soak leg)"]
fn ingest_soak_bounded_state_zero_errors() {
    let (mut handle, _) = start_server(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    });
    let mut client = connect(&handle);

    let synth = SynthDataset::generate(&SynthConfig {
        n_users: 12,
        segments_per_user: (6, 9),
        seed: 4242,
        ..SynthConfig::default()
    });
    let mut non_2xx = 0u64;
    let mut requests = 0u64;
    let mut max_state_bytes = 0u64;
    for seg in &synth.segments {
        for chunk in seg.points.chunks(64) {
            let request = format!(
                "{{\"user\":{},\"points\":{}}}",
                seg.user,
                points_json(chunk)
            );
            let (status, _) =
                client_request(&mut client, "POST", "/ingest", Some(&request)).unwrap();
            requests += 1;
            if !(200..300).contains(&status) {
                non_2xx += 1;
            }
        }
    }
    assert!(requests > 100, "soak must generate real traffic");
    assert_eq!(non_2xx, 0);

    let (status, body) = client_request(&mut client, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let start = body.find("\"state_bytes\": ").expect("state_bytes") + 15;
    let end = body[start..].find(',').expect("delimiter") + start;
    let state_bytes: u64 = body[start..end].trim().parse().expect("number");
    max_state_bytes = max_state_bytes.max(state_bytes);
    // 12 users × ~28 KiB cap, with generous headroom for map overhead.
    assert!(
        max_state_bytes < 12 * 64 * 1024,
        "session state unbounded: {max_state_bytes} bytes"
    );

    handle.stop().expect("stop");
}
