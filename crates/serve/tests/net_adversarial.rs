//! Adversarial-client tests against the full serving stack: the
//! connection reactor must absorb slow, oversized, and vanishing
//! clients without ever spending a worker thread on them, and the
//! damage must be visible in the `/metrics` `"net"` section.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use traj_geolife::{SynthConfig, SynthDataset};
use traj_serve::artifact::{ModelArtifact, TrainSpec};
use traj_serve::http::client_request;
use traj_serve::registry::ModelRegistry;
use traj_serve::server::{serve, ServerConfig, ServerHandle};

fn test_registry() -> ModelRegistry {
    let segs = SynthDataset::generate(&SynthConfig {
        n_users: 3,
        segments_per_user: (3, 4),
        seed: 61,
        ..SynthConfig::default()
    })
    .segments;
    let spec = TrainSpec {
        kind: traj_ml::ClassifierKind::DecisionTree,
        ..TrainSpec::paper_default("tree")
    };
    let mut reg = ModelRegistry::new();
    reg.insert(ModelArtifact::train(&spec, &segs).unwrap())
        .unwrap();
    reg
}

/// A one-worker server with a short idle deadline: slow clients must be
/// reaped by the reactor, never waited out by the lone worker.
fn serve_one_worker(read_timeout: Duration) -> ServerHandle {
    serve(
        "127.0.0.1:0",
        test_registry(),
        ServerConfig {
            workers: 1,
            read_timeout,
            ..ServerConfig::default()
        },
    )
    .expect("bind")
}

/// Pulls an integer counter out of the `/metrics` JSON (fetched over
/// `dispatch`, so probing adds no socket of its own).
fn net_counter(handle: &ServerHandle, key: &str) -> u64 {
    let (status, body) = handle.dispatch("GET", "/metrics", b"");
    assert_eq!(status, 200, "{body}");
    let needle = format!("\"{key}\": ");
    let at = body.find(&needle).unwrap_or_else(|| {
        panic!("metrics missing {key}: {body}");
    });
    body[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("integer counter")
}

fn wait_for(mut probe: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn read_all(stream: &mut TcpStream) -> String {
    let mut buf = Vec::new();
    let _ = stream.read_to_end(&mut buf);
    String::from_utf8_lossy(&buf).into_owned()
}

#[test]
fn slow_loris_gets_408_while_the_lone_worker_serves_others() {
    let handle = serve_one_worker(Duration::from_millis(300));
    let addr = handle.addr();

    // The loris: a request that never finishes its headers.
    let mut loris = TcpStream::connect(addr).expect("connect loris");
    loris
        .write_all(b"POST /predict HTTP/1.1\r\nContent-Le")
        .expect("dribble");

    // A well-behaved client is served immediately — the half-request
    // lives in the reactor, not on the single worker thread.
    let well = TcpStream::connect(addr).expect("connect");
    let mut well = std::io::BufReader::new(well);
    let (status, body) = client_request(&mut well, "GET", "/healthz", None).expect("healthz");
    assert_eq!(status, 200, "{body}");

    // The idle deadline passes; the loris is answered 408 and closed.
    let response = read_all(&mut loris);
    assert!(response.starts_with("HTTP/1.1 408"), "{response}");
    assert_eq!(net_counter(&handle, "idle_reaps_408"), 1);
    // Both connections drain: the loris was reaped with the 408, and
    // the idle `well` connection falls to the same deadline shortly
    // after (a silent close — it was between requests).
    wait_for(
        || net_counter(&handle, "open_connections") == 0,
        "connections to drain",
    );
}

#[test]
fn oversized_headers_431_and_oversized_body_413() {
    let handle = serve_one_worker(Duration::from_secs(5));
    let addr = handle.addr();

    let mut big_head = TcpStream::connect(addr).expect("connect");
    let huge = "x".repeat(64 * 1024);
    let _ = big_head
        .write_all(format!("GET /healthz HTTP/1.1\r\nX-Padding: {huge}\r\n\r\n").as_bytes());
    let response = read_all(&mut big_head);
    assert!(response.starts_with("HTTP/1.1 431"), "{response}");

    let mut big_body = TcpStream::connect(addr).expect("connect");
    big_body
        .write_all(b"POST /predict HTTP/1.1\r\nContent-Length: 16777216\r\n\r\n")
        .expect("head");
    let response = read_all(&mut big_body);
    assert!(response.starts_with("HTTP/1.1 413"), "{response}");

    assert_eq!(net_counter(&handle, "rejects_431"), 1);
    assert_eq!(net_counter(&handle, "rejects_413"), 1);
    // Both rejecting responses were written without a worker's help;
    // request dispatch never happened.
    assert_eq!(net_counter(&handle, "requests"), 0);
}

#[test]
fn mid_body_disconnect_and_half_close_clean_up_without_leaks() {
    let handle = serve_one_worker(Duration::from_secs(5));
    let addr = handle.addr();

    // Mid-body disconnect: promise 100 bytes, send 10, vanish.
    {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(b"POST /predict HTTP/1.1\r\nContent-Length: 100\r\n\r\n0123456789")
            .expect("partial body");
    } // dropped: RST/FIN mid-request
    wait_for(
        || net_counter(&handle, "client_aborts") >= 1,
        "mid-body abort to be counted",
    );
    wait_for(
        || net_counter(&handle, "open_connections") == 0,
        "aborted connection state to be released",
    );

    // Half-close while idle between requests: a silent cleanup, not an
    // abort — the client finished cleanly.
    {
        let conn = TcpStream::connect(addr).expect("connect");
        let mut reader = std::io::BufReader::new(conn);
        let (status, _) = client_request(&mut reader, "GET", "/healthz", None).expect("healthz");
        assert_eq!(status, 200);
        let _ = reader.get_ref().shutdown(std::net::Shutdown::Write);
    }
    wait_for(
        || net_counter(&handle, "open_connections") == 0,
        "half-closed connection to be released",
    );
    assert_eq!(net_counter(&handle, "client_aborts"), 1);
}

#[test]
fn keep_alive_reuse_shows_in_net_metrics() {
    let handle = serve_one_worker(Duration::from_secs(5));
    let conn = TcpStream::connect(handle.addr()).expect("connect");
    let mut client = std::io::BufReader::new(conn);
    for _ in 0..5 {
        let (status, _) = client_request(&mut client, "GET", "/healthz", None).expect("healthz");
        assert_eq!(status, 200);
    }
    assert_eq!(net_counter(&handle, "requests"), 5);
    assert_eq!(net_counter(&handle, "keepalive_requests"), 4);
    assert_eq!(net_counter(&handle, "accepts"), 1);
}

#[test]
fn idle_connection_herd_never_occupies_the_lone_worker() {
    let handle = serve_one_worker(Duration::from_secs(30));
    let addr = handle.addr();

    // 64 parked keep-alive connections (each proves itself with one
    // request first). Under the old thread-per-connection model these
    // would need 64 parked workers; here they are 64 descriptors.
    let mut herd = Vec::new();
    for _ in 0..64 {
        let conn = TcpStream::connect(addr).expect("connect herd");
        let mut reader = std::io::BufReader::new(conn);
        let (status, _) = client_request(&mut reader, "GET", "/healthz", None).expect("probe");
        assert_eq!(status, 200);
        herd.push(reader);
    }
    assert_eq!(net_counter(&handle, "open_connections"), 64);

    // The single worker still answers new traffic promptly.
    let conn = TcpStream::connect(addr).expect("connect");
    let mut active = std::io::BufReader::new(conn);
    let started = Instant::now();
    let (status, _) = client_request(&mut active, "GET", "/healthz", None).expect("active");
    assert_eq!(status, 200);
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "active request stalled behind idle herd"
    );

    // Every herd member is still usable afterwards.
    for reader in herd.iter_mut().take(4) {
        let (status, _) = client_request(reader, "GET", "/healthz", None).expect("reuse");
        assert_eq!(status, 200);
    }
    drop(herd);
    wait_for(
        || net_counter(&handle, "open_connections") == 1,
        "herd teardown",
    );
}
