//! Crash-consistency test: SIGKILL a WAL-backed ingester mid-stream,
//! recover from its WAL directory, and demand bit-identical state.
//!
//! The child process (`src/bin/wal_crash_child.rs`) ingests a
//! deterministic interleaved stream with per-record fsync and prints
//! `round N` after each batch round. This parent kills it once enough
//! rounds are in, recovers a fresh engine from the surviving WAL, and
//! compares — session state bytes and closed-segment features,
//! including live P² estimator internals — against an uninterrupted
//! reference engine fed exactly the recovered prefix.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::Arc;
use traj_geo::{Timestamp, TrajectoryPoint, UserId};
use traj_stream::{recover, snapshot_sessions, StreamConfig, StreamEngine};
use traj_wal::{FsyncPolicy, SnapshotStore, Wal, WalConfig};

/// Stream shape — must match `src/bin/wal_crash_child.rs`.
const USERS: u32 = 64;
const POINTS_PER_USER: u32 = 400;
const BATCH: u32 = 7;

/// Kill once this many rounds are confirmed ingested (and durable:
/// the child fsyncs every record).
const KILL_AFTER_ROUNDS: u32 = 20;

/// Duplicated verbatim from `src/bin/wal_crash_child.rs`.
fn crash_point(user: u32, i: u32) -> TrajectoryPoint {
    let h = (user as u64 + 1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(i as u64)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let jitter = |shift: u32| ((h >> shift) & 0xFFFF) as f64 / 65_536.0;
    TrajectoryPoint::new(
        39.0 + user as f64 * 0.01 + i as f64 * 1e-4 + jitter(16) * 1e-3,
        116.0 + i as f64 * 1e-4 + jitter(32) * 1e-3,
        Timestamp(i as i64 + 1),
    )
}

fn crash_config() -> StreamConfig {
    StreamConfig {
        exact_cap: 16,
        n_shards: 4,
        ..StreamConfig::default()
    }
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("traj-wal-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Full engine state as sorted per-session bytes, WAL cuts stripped.
fn state_of(engine: &StreamEngine) -> Vec<(UserId, Vec<u8>)> {
    snapshot_sessions(&engine.export_snapshot().payload)
        .expect("decode snapshot payload")
        .into_iter()
        .map(|(user, _, bytes)| (user, bytes))
        .collect()
}

#[test]
fn sigkill_mid_ingest_recovers_bit_identical_state() {
    let dir = temp_dir();
    std::fs::create_dir_all(&dir).expect("create test dir");

    let mut child = Command::new(env!("CARGO_BIN_EXE_wal_crash_child"))
        .arg(&dir)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn wal_crash_child");
    let mut lines = BufReader::new(child.stdout.take().expect("piped stdout")).lines();
    let mut rounds_seen = 0u32;
    let mut finished = false;
    for line in &mut lines {
        let line = line.expect("child stdout");
        if line.starts_with("round ") {
            rounds_seen += 1;
        }
        if line == "done" {
            finished = true;
        }
        if rounds_seen >= KILL_AFTER_ROUNDS || finished {
            break;
        }
    }
    assert!(
        rounds_seen >= KILL_AFTER_ROUNDS || finished,
        "child exited early after {rounds_seen} rounds"
    );
    // SIGKILL: no drop handlers, no final sync — only what the WAL
    // already persisted survives.
    child.kill().expect("kill child");
    child.wait().expect("wait child");

    let engine = Arc::new(StreamEngine::new(crash_config()));
    let store = SnapshotStore::open(dir.join("snap")).expect("snapshot dir");
    let (wal, open_report) = Wal::open(WalConfig {
        fsync: FsyncPolicy::OnClose,
        ..WalConfig::new(dir.join("wal"))
    })
    .expect("wal opens after SIGKILL");
    for diag in &open_report.diagnostics {
        eprintln!("wal open: {diag}");
    }
    let wal = Arc::new(wal);
    let report = recover(&engine, &store, &wal).expect("recovery succeeds");

    // Every confirmed round was fsynced per record before `round N`
    // was printed, so at least that many points must have survived.
    let confirmed = u64::from(rounds_seen) * u64::from(USERS) * u64::from(BATCH);
    assert!(
        report.last_lsn >= confirmed,
        "recovered {} records, expected at least {confirmed}",
        report.last_lsn
    );
    assert_eq!(report.applied_records, report.wal_records);

    // Reference: an uninterrupted engine fed exactly the recovered
    // prefix, regenerated in the child's global ingest order.
    let reference = StreamEngine::new(crash_config());
    let mut remaining = report.last_lsn;
    let rounds = POINTS_PER_USER.div_ceil(BATCH);
    'feed: for round in 0..rounds {
        let start = round * BATCH;
        let end = (start + BATCH).min(POINTS_PER_USER);
        for user in 0..USERS {
            if remaining == 0 {
                break 'feed;
            }
            let take = u64::from(end - start).min(remaining) as u32;
            let batch: Vec<TrajectoryPoint> = (start..start + take)
                .map(|i| crash_point(user, i))
                .collect();
            reference.ingest(user, &batch, false);
            remaining -= u64::from(take);
        }
    }
    assert_eq!(
        remaining, 0,
        "WAL claims more records than the child generates"
    );

    assert_eq!(
        state_of(&engine),
        state_of(&reference),
        "recovered session state differs from the uninterrupted reference"
    );

    // The recovered engine keeps producing identical features.
    let mut a = engine.flush_all();
    let mut b = reference.flush_all();
    a.sort_by_key(|c| c.user);
    b.sort_by_key(|c| c.user);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.user, y.user);
        assert_eq!(x.n_points, y.n_points);
        assert_eq!(x.features, y.features, "user {} features diverge", x.user);
    }

    std::fs::remove_dir_all(&dir).ok();
}
