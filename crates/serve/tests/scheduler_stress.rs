//! Scheduler contract tests: the micro-batcher answers every admitted
//! job exactly once even when submitters race shutdown, and under
//! overload the server sheds (429) instead of letting queue wait blow
//! the latency of admitted requests past the deadline.

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use traj_geo::Segment;
use traj_geolife::{SynthConfig, SynthDataset};
use traj_ml::compiled::PredictError;
use traj_serve::artifact::{ModelArtifact, TrainSpec, MIN_SEGMENT_POINTS};
use traj_serve::batch::{BatchConfig, MicroBatcher, Priority, SchedulerPolicy};
use traj_serve::http::client_request;
use traj_serve::metrics::ServeMetrics;
use traj_serve::registry::{LoadedModel, ModelRegistry};
use traj_serve::server::{serve, ServerConfig};

fn synth_segments(seed: u64) -> Vec<Segment> {
    SynthDataset::generate(&SynthConfig {
        n_users: 4,
        segments_per_user: (4, 6),
        seed,
        ..SynthConfig::default()
    })
    .segments
}

fn loaded_model() -> Arc<LoadedModel> {
    let spec = TrainSpec {
        kind: traj_ml::ClassifierKind::DecisionTree,
        ..TrainSpec::paper_default("stress")
    };
    let mut reg = ModelRegistry::new();
    reg.insert(ModelArtifact::train(&spec, &synth_segments(13)).unwrap())
        .unwrap();
    reg.get(None).unwrap()
}

/// Many threads hammer `submit` while the batcher is dropped out from
/// under them. The contract: every call either (a) sheds synchronously,
/// or (b) returns a channel that delivers exactly one reply — a
/// prediction or a typed `ShuttingDown` error. No reply may ever be a
/// silent channel drop, and none may hang.
#[test]
fn every_admitted_job_is_answered_exactly_once_under_shutdown_races() {
    const THREADS: usize = 8;
    const JOBS_PER_THREAD: usize = 300;

    let model = loaded_model();
    let n_features = model.artifact.feature_names.len();
    let metrics = Arc::new(ServeMetrics::new(&["stress".to_owned()]));
    let batcher = Arc::new(MicroBatcher::new(
        BatchConfig {
            policy: SchedulerPolicy::Adaptive { max_batch: 16 },
            queue_cap: 64,
            ..BatchConfig::default()
        },
        Arc::clone(&metrics),
    ));

    let predicted = Arc::new(AtomicU64::new(0));
    let shut_down = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let dropped = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let batcher = Arc::clone(&batcher);
            let model = Arc::clone(&model);
            let (predicted, shut_down, shed, dropped) = (
                Arc::clone(&predicted),
                Arc::clone(&shut_down),
                Arc::clone(&shed),
                Arc::clone(&dropped),
            );
            std::thread::spawn(move || {
                for i in 0..JOBS_PER_THREAD {
                    let row = vec![(t * JOBS_PER_THREAD + i) as f64 * 1e-3; n_features];
                    match batcher.submit(Arc::clone(&model), row, Priority::Interactive) {
                        Err(_) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(rx) => match rx.recv_timeout(Duration::from_secs(10)) {
                            Ok(Ok(_)) => {
                                predicted.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(Err(PredictError::ShuttingDown)) => {
                                shut_down.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(Err(other)) => panic!("unexpected predict error: {other}"),
                            // Disconnected or timed out: a job went
                            // unanswered — the bug this test exists for.
                            Err(_) => {
                                dropped.fetch_add(1, Ordering::Relaxed);
                            }
                        },
                    }
                }
            })
        })
        .collect();

    // Pull the rug mid-flight: shutdown drains the queues with typed
    // errors while submitters are still pushing.
    std::thread::sleep(Duration::from_millis(30));
    batcher.shutdown();

    for handle in handles {
        handle.join().expect("submitter panicked");
    }

    let total = (THREADS * JOBS_PER_THREAD) as u64;
    let answered = predicted.load(Ordering::Relaxed)
        + shut_down.load(Ordering::Relaxed)
        + shed.load(Ordering::Relaxed);
    assert_eq!(
        dropped.load(Ordering::Relaxed),
        0,
        "every admitted job must get a reply, never a dropped channel"
    );
    assert_eq!(
        answered, total,
        "each of the {total} submissions answered exactly once"
    );
    assert!(
        predicted.load(Ordering::Relaxed) > 0,
        "some jobs should complete before shutdown"
    );
}

/// Dropping the batcher while jobs are queued answers them all with
/// `ShuttingDown` rather than leaving receivers hanging.
#[test]
fn shutdown_drains_queued_jobs_with_typed_errors() {
    let model = loaded_model();
    let n_features = model.artifact.feature_names.len();
    let metrics = Arc::new(ServeMetrics::new(&["stress".to_owned()]));
    let batcher = MicroBatcher::new(
        BatchConfig {
            // A fixed policy with a long delay keeps jobs parked in the
            // queue long enough for shutdown to catch them.
            policy: SchedulerPolicy::Fixed {
                max_batch: 64,
                max_delay: Duration::from_secs(5),
            },
            ..BatchConfig::default()
        },
        metrics,
    );
    let receivers: Vec<_> = (0..16)
        .map(|i| {
            batcher
                .submit(
                    Arc::clone(&model),
                    vec![i as f64 * 0.01; n_features],
                    Priority::Bulk,
                )
                .expect("admitted")
        })
        .collect();
    drop(batcher);
    for rx in receivers {
        match rx.recv_timeout(Duration::from_secs(5)) {
            Ok(Ok(_)) | Ok(Err(PredictError::ShuttingDown)) => {}
            other => panic!("expected prediction or ShuttingDown, got {other:?}"),
        }
    }
}

/// Overload e2e: with a tiny admission queue, concurrent clients see
/// 429s — and because excess load is rejected at the door, the latency
/// of the requests that *are* admitted stays within the SLO instead of
/// growing with the backlog.
#[test]
fn overload_sheds_with_429_before_latency_blows_the_deadline() {
    let segs = synth_segments(97);
    let spec = TrainSpec {
        top_k: Some(20),
        seed: 3,
        ..TrainSpec::paper_default("rf")
    };
    let artifact = ModelArtifact::train(&spec, &segs).expect("train");
    let mut registry = ModelRegistry::new();
    registry.insert(artifact).expect("insert");
    let slo = Duration::from_millis(250);
    let config = ServerConfig {
        // One worker per client connection: this test measures scheduler
        // queueing, not accept-queue waits behind a small thread pool.
        workers: 8,
        batch: BatchConfig {
            // The fixed policy parks jobs for up to `max_delay`, which
            // builds a standing backlog deterministically — single-row
            // tree predictions are otherwise too fast for the adaptive
            // scheduler to ever leave a queue behind in a test.
            policy: SchedulerPolicy::Fixed {
                max_batch: 64,
                max_delay: Duration::from_millis(50),
            },
            slo,
            // Interactive cap 2: with 8 clients in flight the queue is
            // over capacity almost immediately.
            queue_cap: 2,
        },
        ..ServerConfig::default()
    };
    let mut handle = serve("127.0.0.1:0", registry, config).expect("bind");
    let addr = handle.addr();

    let long: Vec<&Segment> = segs
        .iter()
        .filter(|s| s.len() >= MIN_SEGMENT_POINTS)
        .collect();
    let body = {
        let points: Vec<String> = long[0]
            .points
            .iter()
            .map(|p| format!("{{\"lat\":{},\"lon\":{},\"t\":{}}}", p.lat, p.lon, p.t.0))
            .collect();
        format!("{{\"points\":[{}]}}", points.join(","))
    };

    let shed = Arc::new(AtomicU64::new(0));
    let ok = Arc::new(AtomicU64::new(0));
    let worst_ok_us = Arc::new(AtomicU64::new(0));
    let clients: Vec<_> = (0..8)
        .map(|_| {
            let body = body.clone();
            let (shed, ok, worst) = (Arc::clone(&shed), Arc::clone(&ok), Arc::clone(&worst_ok_us));
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                let mut client = BufReader::new(stream);
                for _ in 0..40 {
                    let started = Instant::now();
                    let (status, body) =
                        client_request(&mut client, "POST", "/predict", Some(&body))
                            .expect("request");
                    match status {
                        200 => {
                            ok.fetch_add(1, Ordering::Relaxed);
                            worst
                                .fetch_max(started.elapsed().as_micros() as u64, Ordering::Relaxed);
                        }
                        429 => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("unexpected status {other}: {body}"),
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client panicked");
    }

    assert!(ok.load(Ordering::Relaxed) > 0, "some requests must succeed");
    assert!(
        shed.load(Ordering::Relaxed) > 0,
        "an interactive cap of 2 with 8 clients must shed"
    );
    // Admitted requests never sat behind an unbounded backlog: worst-case
    // end-to-end latency stays within the SLO (generous margin for a
    // loaded CI machine).
    let worst = Duration::from_micros(worst_ok_us.load(Ordering::Relaxed));
    assert!(
        worst < slo * 4,
        "admitted latency {worst:?} should stay near the {slo:?} SLO"
    );

    // The shed shows up in /metrics as interactive sheds, and the
    // response carried a drain estimate.
    let mut client = BufReader::new(TcpStream::connect(addr).expect("connect"));
    let (status, metrics_body) =
        client_request(&mut client, "GET", "/metrics", None).expect("metrics");
    assert_eq!(status, 200);
    assert!(
        !metrics_body.contains("\"shed_interactive\": 0,"),
        "metrics must count the interactive sheds: {metrics_body}"
    );
    handle.stop().expect("clean stop");
}
