//! Durable-ingest restart test: points streamed into a WAL-backed
//! server survive a full stop/start cycle. The first server ingests
//! half a segment and stops (final sync + snapshot); a second server
//! over the same durability directory recovers the open session, and
//! flushing the remaining half yields one prediction spanning *all*
//! points — bit-equal to the offline `/predict` answer for the same
//! segment, proving the recovered summaries are exact.

use std::io::BufReader;
use std::net::TcpStream;
use std::path::PathBuf;
use traj_geo::Segment;
use traj_geolife::{SynthConfig, SynthDataset};
use traj_serve::artifact::{ModelArtifact, TrainSpec, MIN_SEGMENT_POINTS};
use traj_serve::http::client_request;
use traj_serve::registry::ModelRegistry;
use traj_serve::server::{serve, DurabilityConfig, ServerConfig, ServerHandle};

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("traj-wal-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_durable_server(dir: &std::path::Path, segs: &[Segment]) -> ServerHandle {
    let spec = TrainSpec {
        kind: traj_ml::ClassifierKind::DecisionTree,
        seed: 3,
        ..TrainSpec::paper_default("tree")
    };
    let artifact = ModelArtifact::train(&spec, segs).expect("train");
    let mut registry = ModelRegistry::new();
    registry.insert(artifact).expect("insert");
    let config = ServerConfig {
        workers: 2,
        durability: Some(DurabilityConfig::new(dir)),
        ..ServerConfig::default()
    };
    serve("127.0.0.1:0", registry, config).expect("bind ephemeral port")
}

fn connect(handle: &ServerHandle) -> BufReader<TcpStream> {
    BufReader::new(TcpStream::connect(handle.addr()).expect("connect"))
}

fn points_json(points: &[traj_geo::TrajectoryPoint]) -> String {
    let dtos: Vec<String> = points
        .iter()
        .map(|p| format!("{{\"lat\":{},\"lon\":{},\"t\":{}}}", p.lat, p.lon, p.t.0))
        .collect();
    format!("[{}]", dtos.join(","))
}

fn label_of(body: &str) -> &str {
    let start = body.find("\"label\":\"").expect("label field") + 9;
    let end = body[start..].find('"').expect("label close") + start;
    &body[start..end]
}

#[test]
fn durable_session_survives_server_restart() {
    let dir = temp_dir();
    let segs = SynthDataset::generate(&SynthConfig {
        n_users: 5,
        segments_per_user: (5, 8),
        seed: 97,
        ..SynthConfig::default()
    })
    .segments;
    let seg = segs
        .iter()
        .find(|s| s.len() >= MIN_SEGMENT_POINTS)
        .expect("long segment")
        .clone();
    let mid = seg.len() / 2;

    // First server: ingest the first half, no flush, stop.
    {
        let mut handle = start_durable_server(&dir, &segs);
        let mut client = connect(&handle);
        let request = format!(
            "{{\"user\":1,\"points\":{}}}",
            points_json(&seg.points[..mid])
        );
        let (status, body) =
            client_request(&mut client, "POST", "/ingest", Some(&request)).unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"predictions\":[]"), "{body}");

        let (status, body) = client_request(&mut client, "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"durability\": {"), "{body}");
        assert!(body.contains("\"enabled\": true"), "{body}");
        assert!(!body.contains("\"appended_records\": 0,"), "{body}");

        handle.stop().expect("durable stop");
    }

    // Second server over the same directory: the session is back.
    let mut handle = start_durable_server(&dir, &segs);
    let mut client = connect(&handle);

    let (status, body) = client_request(&mut client, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"recovery\": {\"sessions\": 1,"), "{body}");

    // Flushing the second half closes one segment covering ALL points,
    // and its label matches the offline answer for the full segment.
    let request = format!(
        "{{\"user\":1,\"points\":{},\"flush\":true}}",
        points_json(&seg.points[mid..])
    );
    let (status, body) = client_request(&mut client, "POST", "/ingest", Some(&request)).unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(body.matches("\"reason\":").count(), 1, "{body}");
    assert!(
        body.contains(&format!("\"n_points\":{}", seg.len())),
        "{body}"
    );
    assert!(body.contains("\"exact\":true"), "{body}");
    let streamed_label = label_of(&body).to_owned();

    let request = format!("{{\"points\":{}}}", points_json(&seg.points));
    let (status, batch_body) =
        client_request(&mut client, "POST", "/predict", Some(&request)).unwrap();
    assert_eq!(status, 200, "{batch_body}");
    assert_eq!(label_of(&batch_body), streamed_label, "{batch_body}");

    handle.stop().expect("stop");
    std::fs::remove_dir_all(&dir).ok();
}
