//! Minimal HTTP/1.1 on `std::net`: enough of the protocol for a JSON
//! inference API (request-line + headers + `Content-Length` bodies,
//! keep-alive), with hard caps on head and body sizes so a misbehaving
//! client cannot balloon memory.

use std::io::{BufRead, BufReader, Read, Write};

/// Maximum bytes of request line + headers.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, … (uppercase as sent).
    pub method: String,
    /// Path component only (no query parsing — the API doesn't use one).
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// `false` when the client sent `Connection: close`.
    pub keep_alive: bool,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed head or unsupported framing → 400.
    BadRequest(String),
    /// Declared body exceeds the configured cap → 413.
    BodyTooLarge,
    /// Socket failure or timeout; no response possible.
    Io(std::io::Error),
}

impl HttpError {
    /// Status code and message for errors that still get a response.
    pub fn status(&self) -> Option<(u16, String)> {
        match self {
            HttpError::BadRequest(msg) => Some((400, msg.clone())),
            HttpError::BodyTooLarge => Some((413, "request body too large".to_owned())),
            HttpError::Io(_) => None,
        }
    }
}

/// Reads one request. `Ok(None)` means the client closed the connection
/// cleanly between requests.
pub fn read_request<S: BufRead>(
    stream: &mut S,
    max_body_bytes: usize,
) -> Result<Option<Request>, HttpError> {
    // Request line. EOF before any byte = clean close.
    let request_line = match read_crlf_line(stream, MAX_HEAD_BYTES)? {
        None => return Ok(None),
        Some(line) if line.is_empty() => return Ok(None),
        Some(line) => line,
    };
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest(format!(
            "unsupported version {version:?}"
        )));
    }

    // Headers.
    let mut content_length = 0usize;
    let mut keep_alive = version == "HTTP/1.1";
    let mut head_bytes = request_line.len();
    loop {
        let line = read_crlf_line(stream, MAX_HEAD_BYTES)?
            .ok_or_else(|| HttpError::BadRequest("unexpected EOF in headers".to_owned()))?;
        if line.is_empty() {
            break;
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::BadRequest("headers too large".to_owned()));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| HttpError::BadRequest(format!("bad Content-Length {value:?}")))?;
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v == "close" {
                    keep_alive = false;
                } else if v == "keep-alive" {
                    keep_alive = true;
                }
            }
            "transfer-encoding" => {
                return Err(HttpError::BadRequest(
                    "chunked bodies are not supported".to_owned(),
                ));
            }
            _ => {}
        }
    }

    if content_length > max_body_bytes {
        return Err(HttpError::BodyTooLarge);
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).map_err(HttpError::Io)?;

    Ok(Some(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        body,
        keep_alive,
    }))
}

/// Reads one `\r\n`-terminated line (without the terminator). `Ok(None)`
/// on immediate EOF.
fn read_crlf_line<S: BufRead>(stream: &mut S, cap: usize) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match stream.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::BadRequest("unexpected EOF mid-line".to_owned()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let text = String::from_utf8(line)
                        .map_err(|_| HttpError::BadRequest("non-UTF-8 header".to_owned()))?;
                    return Ok(Some(text));
                }
                line.push(byte[0]);
                if line.len() > cap {
                    return Err(HttpError::BadRequest("header line too long".to_owned()));
                }
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Reason phrases for the statuses the API emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one JSON response.
pub fn write_response<S: Write>(
    stream: &mut S,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_with_retry(stream, status, body, keep_alive, None)
}

/// Writes one JSON response, optionally carrying a `Retry-After` header
/// (whole seconds, rounded up; overload 429s use it to tell clients how
/// long the queue is expected to take to drain).
pub fn write_response_with_retry<S: Write>(
    stream: &mut S,
    status: u16,
    body: &str,
    keep_alive: bool,
    retry_after: Option<std::time::Duration>,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let retry = match retry_after {
        Some(d) => format!(
            "Retry-After: {}\r\n",
            d.as_secs_f64().ceil().max(1.0) as u64
        ),
        None => String::new(),
    };
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n{}\r\n{}",
        status,
        reason_phrase(status),
        body.len(),
        connection,
        retry,
        body
    )?;
    stream.flush()
}

/// Blocking single-request client used by the load generator, the e2e
/// tests and the demo example. Takes a buffered duplex stream (e.g.
/// `BufReader<TcpStream>`); writes go through the inner stream directly.
/// Returns `(status, body)`.
pub fn client_request<S: Read + Write>(
    stream: &mut BufReader<S>,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let body = body.unwrap_or("");
    write!(
        stream.get_mut(),
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
        body.len()
    )?;
    stream.get_mut().flush()?;

    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_owned());
    let status_line = read_crlf_line(stream, MAX_HEAD_BYTES)
        .map_err(|_| bad("bad status line"))?
        .ok_or_else(|| bad("server closed before status line"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("unparseable status"))?;
    let mut content_length = 0usize;
    loop {
        let line = read_crlf_line(stream, MAX_HEAD_BYTES)
            .map_err(|_| bad("bad header"))?
            .ok_or_else(|| bad("EOF in headers"))?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| bad("bad length"))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(|text| (status, text))
        .map_err(|_| bad("non-UTF-8 body"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_post_with_body_and_keep_alive() {
        let raw = b"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&mut Cursor::new(&raw[..]), 1024)
            .expect("parse")
            .expect("some");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive);
    }

    #[test]
    fn connection_close_clears_keep_alive() {
        let raw = b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        let req = read_request(&mut Cursor::new(&raw[..]), 1024)
            .expect("parse")
            .expect("some");
        assert!(!req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn oversized_body_is_413() {
        let raw = b"POST /predict HTTP/1.1\r\nContent-Length: 4096\r\n\r\n";
        let err = read_request(&mut Cursor::new(&raw[..]), 1024).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge));
        assert_eq!(err.status().unwrap().0, 413);
    }

    #[test]
    fn malformed_request_line_is_400() {
        let raw = b"NONSENSE\r\n\r\n";
        let err = read_request(&mut Cursor::new(&raw[..]), 1024).unwrap_err();
        assert_eq!(err.status().unwrap().0, 400);
    }

    #[test]
    fn clean_eof_is_none() {
        let req = read_request(&mut Cursor::new(&b""[..]), 1024).expect("ok");
        assert!(req.is_none());
    }

    #[test]
    fn retry_after_header_renders_in_whole_seconds() {
        let mut wire = Vec::new();
        write_response_with_retry(
            &mut wire,
            429,
            "{\"error\":\"shed\"}",
            true,
            Some(std::time::Duration::from_millis(120)),
        )
        .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        // Sub-second estimates round up: clients must not retry instantly.
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.ends_with("{\"error\":\"shed\"}"));
    }

    #[test]
    fn response_round_trips_through_client_parser() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, "{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
        assert!(text.contains("Content-Length: 11\r\n"));
    }
}
