//! The inference server: a [`traj_net`] connection reactor feeding a
//! dedicated [`traj_runtime`] pool (one task per *request*), JSON
//! routing, and graceful shutdown.
//!
//! One event-loop thread owns every connection's accept, read and
//! write; only complete requests are handed to the pool. Workers are
//! therefore O(cores) while open connections are O(fd limit) — an idle
//! keep-alive client costs a file descriptor and a parse buffer, never
//! a parked thread. The pool is still *dedicated* —
//! `Runtime::named(workers, "traj-serve")` rather than the shared
//! [`traj_runtime::global`] compute pool — because request tasks block
//! on the micro-batcher's flush, and parking compute workers behind
//! prediction waits would starve any training or cross-validation
//! running in the same process.
//!
//! ```text
//! POST /predict        one segment  → label + per-class scores
//! POST /predict_batch  N segments   → N results, micro-batched
//! POST /ingest         streaming points → predictions per closed segment
//! GET  /healthz        liveness + loaded models
//! GET  /metrics        counters, latency percentiles, batch + ingest stats
//! ```
//!
//! `/ingest` routes points into the per-user [`traj_stream::StreamEngine`]
//! shared by all workers; whenever a segment closes (gap, explicit
//! `flush`, idle sweep, or eviction) the paper's 70 features are already
//! materialised and a prediction is emitted without re-featurising. A
//! background sweeper closes idle sessions on the configured interval.

use crate::artifact::ModelArtifact;
use crate::batch::{BatchConfig, MicroBatcher, Priority};
use crate::http::Request;
use crate::metrics::ServeMetrics;
use crate::registry::{LoadedModel, ModelRegistry, Prediction};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use traj_ml::PredictError;
pub use traj_wal::FsyncPolicy;
use traj_wal::{SnapshotStore, Wal, WalConfig};

/// Durable-ingest tunables; see `DESIGN.md` §11.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Root directory for durable state (`wal/` segments and
    /// `snapshots/` are created beneath it).
    pub dir: PathBuf,
    /// When WAL appends are forced to stable storage.
    pub fsync: FsyncPolicy,
    /// WAL segment roll size.
    pub segment_bytes: u64,
    /// How often open-session state is snapshotted (and the WAL
    /// truncated past the covered LSN).
    pub snapshot_interval: Duration,
}

impl DurabilityConfig {
    /// Durability under `dir` with the default 50 ms fsync interval,
    /// 64 MiB segments and 30 s snapshots.
    pub fn new(dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Interval(Duration::from_millis(50)),
            segment_bytes: 64 * 1024 * 1024,
            snapshot_interval: Duration::from_secs(30),
        }
    }
}

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling requests (the reactor's single I/O
    /// thread is extra; connections themselves occupy no worker).
    pub workers: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Idle/slow-client deadline: a connection making no read progress
    /// for this long is reaped — 408 mid-request (slow-loris), silent
    /// close for an idle keep-alive connection.
    pub read_timeout: Duration,
    /// A response write making no progress for this long closes the
    /// connection (slow-reading client holding response memory).
    pub write_stall_timeout: Duration,
    /// Open-connection cap; accepts beyond it answer 503 and close.
    pub max_connections: usize,
    /// Batching policy, SLO deadline and admission cap shared by
    /// `/predict` (interactive), `/predict_batch` (bulk) and `/ingest`
    /// close-time predictions (close, never shed).
    pub batch: BatchConfig,
    /// Streaming-ingestion engine tunables (`POST /ingest`).
    pub stream: traj_stream::StreamConfig,
    /// How often the background sweeper scans for idle sessions.
    pub idle_sweep_interval: Duration,
    /// Durable ingestion (WAL + snapshots); `None` keeps stream state
    /// memory-only.
    pub durability: Option<DurabilityConfig>,
    /// Cluster shard identity. When set, `/metrics` and `/healthz`
    /// carry a `"shard"` label (id + served artifact versions) so a
    /// router's aggregated views can keep shards apart.
    pub shard_id: Option<u32>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            max_body_bytes: 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            write_stall_timeout: Duration::from_secs(10),
            max_connections: 16 * 1024,
            batch: BatchConfig::default(),
            stream: traj_stream::StreamConfig::default(),
            idle_sweep_interval: Duration::from_secs(30),
            durability: None,
            shard_id: None,
        }
    }
}

// ------------------------------------------------------------- wire DTOs

/// One GPS fix in a request body.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PointDto {
    lat: f64,
    lon: f64,
    /// Milliseconds since the Unix epoch (`Timestamp.0`'s own unit).
    t: i64,
}

#[derive(Debug, Deserialize)]
struct PredictRequest {
    /// Registry name (`None` → default model).
    model: Option<String>,
    points: Vec<PointDto>,
}

#[derive(Debug, Deserialize)]
struct PredictBatchRequest {
    model: Option<String>,
    segments: Vec<Vec<PointDto>>,
}

#[derive(Debug, Serialize)]
struct PredictResponse {
    model: String,
    version: u32,
    class: usize,
    label: String,
    scores: Vec<f64>,
    class_names: Vec<String>,
}

#[derive(Debug, Serialize)]
struct BatchItemResponse {
    class: Option<usize>,
    label: Option<String>,
    scores: Option<Vec<f64>>,
    error: Option<String>,
}

#[derive(Debug, Serialize)]
struct PredictBatchResponse {
    model: String,
    version: u32,
    class_names: Vec<String>,
    results: Vec<BatchItemResponse>,
}

#[derive(Debug, Deserialize)]
struct IngestRequest {
    /// Stream owner; shards the server-side session state.
    user: u32,
    /// Registry name (`None` → default model).
    model: Option<String>,
    points: Vec<PointDto>,
    /// Close the user's open segment after this batch.
    flush: Option<bool>,
    /// Idempotency key. `/ingest` is not idempotent, so a proxy that
    /// retries after an ambiguous transport failure (request possibly
    /// applied, response lost) would double-apply the points. With a
    /// key, a repeat of an already-applied `(user, idem)` replays the
    /// recorded response instead of mutating the session again. The
    /// cluster router stamps one on every forwarded request.
    idem: Option<u64>,
}

#[derive(Debug, Serialize)]
struct IngestPrediction {
    user: u32,
    start_t: i64,
    end_t: i64,
    n_points: usize,
    /// Why the segment closed: `gap`, `flush`, `idle` or `eviction`.
    reason: String,
    /// Whether the features were bit-identical to the batch pipeline.
    exact: bool,
    class: usize,
    label: String,
    scores: Vec<f64>,
}

#[derive(Debug, Serialize)]
struct IngestResponse {
    model: String,
    version: u32,
    accepted: usize,
    dropped: usize,
    open_points: usize,
    class_names: Vec<String>,
    predictions: Vec<IngestPrediction>,
}

#[derive(Debug, Serialize)]
struct ErrorResponse {
    error: String,
}

fn error_body(message: &str) -> String {
    serde_json::to_string(&ErrorResponse {
        error: message.to_owned(),
    })
    .unwrap_or_else(|_| "{\"error\":\"internal\"}".to_owned())
}

/// HTTP status of a typed prediction failure: an unfitted model is a
/// conflict with the server's state (409, retryable after retraining), a
/// shutting-down queue is a retryable unavailability (503), anything
/// else is an internal inconsistency (500).
fn predict_error_status(e: PredictError) -> u16 {
    match e {
        PredictError::NotFitted => 409,
        PredictError::WrongWidth { .. } => 500,
        PredictError::ShuttingDown => 503,
    }
}

fn points_of(dtos: &[PointDto]) -> Vec<traj_geo::TrajectoryPoint> {
    dtos.iter()
        .map(|p| traj_geo::TrajectoryPoint::new(p.lat, p.lon, traj_geo::Timestamp(p.t)))
        .collect()
}

// ---------------------------------------------------------------- routing

/// The WAL + snapshot store handles the admin surface needs to trigger
/// snapshots outside the maintenance thread (handoff imports snapshot
/// immediately so moved sessions are durable on their new owner).
struct DurabilityHandles {
    wal: Arc<Wal>,
    store: Arc<SnapshotStore>,
}

/// Shared state of all workers.
struct AppState {
    /// Writers are rare (artifact rollout, promotion); the hot path
    /// takes the read lock only long enough to clone a model `Arc`.
    registry: RwLock<ModelRegistry>,
    metrics: Arc<ServeMetrics>,
    batcher: MicroBatcher,
    engine: traj_stream::StreamEngine,
    /// Cluster shard identity (labels `/metrics` and health).
    shard_id: Option<u32>,
    /// Flips true once WAL replay + registry warm-up complete; traffic
    /// endpoints answer 503 until then (and again while draining).
    ready: AtomicBool,
    /// Set during boot when durability is configured.
    durability: OnceLock<DurabilityHandles>,
    /// Replayed responses of recently applied keyed `/ingest` requests.
    idem: Mutex<IdemCache>,
    /// The connection reactor's counters (set right after the reactor
    /// spawns); rendered as the `"net"` section of `/metrics`.
    net: OnceLock<Arc<traj_net::NetStats>>,
}

/// Bounded FIFO of `(user, idem key) → response` for `/ingest` retry
/// dedupe. Only responses of requests that reached the engine are
/// recorded — a replayed entry means "the points were applied; here is
/// what you missed". The window only needs to cover a proxy's
/// immediate-retry horizon, so a small cap suffices.
#[derive(Default)]
struct IdemCache {
    responses: HashMap<(u32, u64), (u16, String)>,
    order: VecDeque<(u32, u64)>,
}

impl IdemCache {
    const CAP: usize = 1024;

    fn get(&self, user: u32, key: u64) -> Option<(u16, String)> {
        self.responses.get(&(user, key)).cloned()
    }

    fn put(&mut self, user: u32, key: u64, response: &(u16, String)) {
        if self
            .responses
            .insert((user, key), response.clone())
            .is_none()
        {
            self.order.push_back((user, key));
        }
        while self.order.len() > Self::CAP {
            let oldest = self.order.pop_front().expect("len checked");
            self.responses.remove(&oldest);
        }
    }
}

impl AppState {
    /// Resolves a model by request name under the read lock.
    fn model(&self, name: Option<&str>) -> Option<Arc<LoadedModel>> {
        self.registry.read().expect("registry poisoned").get(name)
    }

    /// The pre-rendered `"shard"` label object, when this server has a
    /// shard identity.
    fn shard_label(&self) -> Option<String> {
        let id = self.shard_id?;
        let versions = self
            .registry
            .read()
            .expect("registry poisoned")
            .active_versions();
        let artifacts = versions
            .iter()
            .map(|(name, v)| format!("\"{name}\": {v}"))
            .collect::<Vec<String>>()
            .join(", ");
        Some(format!("{{\"id\": {id}, \"artifacts\": {{{artifacts}}}}}"))
    }

    /// Mirrors the engine's (and, when attached, the WAL's)
    /// authoritative counters and gauges into the `/metrics` snapshot.
    fn sync_ingest_metrics(&self) {
        let stats = self.engine.stats();
        self.metrics.ingest.sync_engine(
            &stats,
            self.engine.open_sessions() as u64,
            self.engine.state_bytes() as u64,
        );
        if let Some(wal) = self.engine.wal() {
            self.metrics
                .durability
                .sync_wal(&wal.stats(), stats.wal_append_errors);
        }
    }
}

/// A routed response: status, JSON body and — on admission-control
/// 429s — the queue-drain estimate carried as `Retry-After`.
struct Response {
    status: u16,
    body: String,
    retry_after: Option<Duration>,
}

impl From<(u16, String)> for Response {
    fn from((status, body): (u16, String)) -> Response {
        Response {
            status,
            body,
            retry_after: None,
        }
    }
}

/// Routes one request. Never panics on client input; internal failures
/// map to 500.
///
/// Traffic endpoints (`/predict`, `/predict_batch`, `/ingest`) are
/// gated on readiness: during WAL replay-on-boot, registry warm-up or
/// an explicit drain they answer 503 so a cluster router can steer
/// around this shard. Health, metrics and the admin surface always
/// answer — a draining shard must still serve handoff exports.
fn route(state: &AppState, request: &Request) -> Response {
    let ready = state.ready.load(Ordering::SeqCst);
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => handle_healthz(state, ready).into(),
        ("GET", "/readyz") => handle_readyz(state, ready).into(),
        ("GET", "/metrics") => {
            state.sync_ingest_metrics();
            let net = state.net.get().map(|n| n.render_json());
            (
                200,
                state
                    .metrics
                    .render_json_with_net(state.shard_label().as_deref(), net.as_deref()),
            )
                .into()
        }
        ("POST", "/predict" | "/predict_batch" | "/ingest") if !ready => Response {
            status: 503,
            body: error_body("server is not ready (starting or draining); retry"),
            retry_after: Some(Duration::from_secs(1)),
        },
        ("POST", "/predict") => handle_predict(state, &request.body),
        ("POST", "/predict_batch") => handle_predict_batch(state, &request.body),
        ("POST", "/ingest") => handle_ingest(state, &request.body).into(),
        ("POST", "/admin/artifact/stage") => handle_artifact_stage(state, &request.body).into(),
        ("POST", "/admin/artifact/promote") => {
            handle_artifact_rollout(state, &request.body, true).into()
        }
        ("POST", "/admin/artifact/rollback") => {
            handle_artifact_rollout(state, &request.body, false).into()
        }
        ("GET", "/admin/sessions") => handle_sessions(state).into(),
        ("POST", "/admin/handoff/export") => handle_handoff_export(state, &request.body).into(),
        ("POST", "/admin/handoff/import") => handle_handoff_import(state, &request.body).into(),
        ("POST", "/admin/handoff/evict") => handle_handoff_evict(state, &request.body).into(),
        ("POST", "/admin/drain") => {
            state.ready.store(false, Ordering::SeqCst);
            (200, "{\"ready\": false}".to_owned()).into()
        }
        ("POST", "/admin/ready") => {
            state.ready.store(true, Ordering::SeqCst);
            (200, "{\"ready\": true}".to_owned()).into()
        }
        ("GET", "/predict" | "/predict_batch" | "/ingest")
        | ("POST", "/healthz" | "/readyz" | "/metrics") => {
            (405, error_body("method not allowed")).into()
        }
        _ => (404, error_body("no such endpoint")).into(),
    }
}

/// The 429 an admission shed maps to.
fn shed_response(retry_after: Duration) -> Response {
    Response {
        status: 429,
        body: error_body("prediction queue is full; retry later"),
        retry_after: Some(retry_after),
    }
}

/// Liveness: answers 200 as soon as the acceptor runs, even while WAL
/// replay is still rebuilding state. Readiness is a separate signal
/// (`/readyz`) so supervisors don't kill a server that is merely busy
/// recovering.
fn handle_healthz(state: &AppState, ready: bool) -> (u16, String) {
    #[derive(Serialize)]
    struct Health {
        status: String,
        ready: bool,
        shard: Option<u32>,
        default_model: Option<String>,
        models: Vec<String>,
    }
    let registry = state.registry.read().expect("registry poisoned");
    let health = Health {
        status: "ok".to_owned(),
        ready,
        shard: state.shard_id,
        default_model: registry.default_name().map(str::to_owned),
        models: registry.keys(),
    };
    drop(registry);
    match serde_json::to_string(&health) {
        Ok(body) => (200, body),
        Err(e) => (500, error_body(&e.to_string())),
    }
}

/// Readiness: 503 until WAL replay + registry warm-up complete (and
/// again once draining); the router's health checks gate traffic on it.
fn handle_readyz(state: &AppState, ready: bool) -> (u16, String) {
    let shard = state
        .shard_id
        .map_or("null".to_owned(), |id| id.to_string());
    if ready {
        (200, format!("{{\"ready\": true, \"shard\": {shard}}}"))
    } else {
        (503, format!("{{\"ready\": false, \"shard\": {shard}}}"))
    }
}

fn handle_predict(state: &AppState, body: &[u8]) -> Response {
    let parsed: PredictRequest = match parse_json_body(body) {
        Ok(p) => p,
        Err(resp) => return resp.into(),
    };
    let Some(model) = state.model(parsed.model.as_deref()) else {
        return (404, error_body("unknown model")).into();
    };
    let points = points_of(&parsed.points);
    let row = match model.features_of_points(&points) {
        Ok(row) => row,
        Err(msg) => return (422, error_body(&msg)).into(),
    };
    // Interactive class: full admission cap, flushed first. The batcher
    // coalesces concurrent /predict rows into one compiled traversal and
    // records the per-model prediction count at flush time.
    let rx = match state
        .batcher
        .submit(Arc::clone(&model), row, Priority::Interactive)
    {
        Ok(rx) => rx,
        Err(shed) => return shed_response(shed.retry_after),
    };
    let prediction = match rx.recv() {
        Ok(Ok(p)) => p,
        Ok(Err(e)) => return (predict_error_status(e), error_body(&e.to_string())).into(),
        Err(_) => return (503, error_body("prediction queue unavailable")).into(),
    };
    let response = PredictResponse {
        model: model.artifact.name.clone(),
        version: model.artifact.version,
        class: prediction.class,
        label: prediction.label,
        scores: prediction.scores,
        class_names: class_names_of(&model.artifact.scheme),
    };
    match serde_json::to_string(&response) {
        Ok(body) => (200, body).into(),
        Err(e) => (500, error_body(&e.to_string())).into(),
    }
}

fn handle_predict_batch(state: &AppState, body: &[u8]) -> Response {
    let parsed: PredictBatchRequest = match parse_json_body(body) {
        Ok(p) => p,
        Err(resp) => return resp.into(),
    };
    let Some(model) = state.model(parsed.model.as_deref()) else {
        return (404, error_body("unknown model")).into();
    };
    if parsed.segments.is_empty() {
        return (422, error_body("empty segments array")).into();
    }
    if !model.is_ready() {
        return (409, error_body(&PredictError::NotFitted.to_string())).into();
    }

    // Featurise inline (per-segment, worker-parallel across requests),
    // then push the rows through the shared micro-batcher so concurrent
    // requests coalesce into larger prediction batches (grouped by model
    // and predicted with one compiled traversal per flush). Bulk class:
    // admission rejects the whole request at half the queue cap, keeping
    // headroom for interactive traffic (already-submitted rows are still
    // predicted; their replies go nowhere).
    enum Pending {
        Waiting(Receiver<Result<Prediction, PredictError>>),
        Failed(String),
    }
    let mut pending = Vec::with_capacity(parsed.segments.len());
    for dtos in &parsed.segments {
        let points = points_of(dtos);
        match model.features_of_points(&points) {
            Ok(row) => {
                match state
                    .batcher
                    .submit(Arc::clone(&model), row, Priority::Bulk)
                {
                    Ok(rx) => pending.push(Pending::Waiting(rx)),
                    Err(shed) => return shed_response(shed.retry_after),
                }
            }
            Err(msg) => pending.push(Pending::Failed(msg)),
        }
    }

    let results: Vec<BatchItemResponse> = pending
        .into_iter()
        .map(|p| match p {
            Pending::Failed(msg) => BatchItemResponse {
                class: None,
                label: None,
                scores: None,
                error: Some(msg),
            },
            Pending::Waiting(rx) => match rx.recv() {
                Ok(Ok(pred)) => BatchItemResponse {
                    class: Some(pred.class),
                    label: Some(pred.label),
                    scores: Some(pred.scores),
                    error: None,
                },
                Ok(Err(e)) => BatchItemResponse {
                    class: None,
                    label: None,
                    scores: None,
                    error: Some(e.to_string()),
                },
                Err(_) => BatchItemResponse {
                    class: None,
                    label: None,
                    scores: None,
                    error: Some("prediction queue unavailable".to_owned()),
                },
            },
        })
        .collect();

    let response = PredictBatchResponse {
        model: model.artifact.name.clone(),
        version: model.artifact.version,
        class_names: class_names_of(&model.artifact.scheme),
        results,
    };
    match serde_json::to_string(&response) {
        Ok(body) => (200, body).into(),
        Err(e) => (500, error_body(&e.to_string())).into(),
    }
}

fn handle_ingest(state: &AppState, body: &[u8]) -> (u16, String) {
    let started = Instant::now();
    let parsed: IngestRequest = match parse_json_body(body) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    // A keyed request already applied replays its recorded response —
    // the retry of a request whose response was lost in transit must
    // not push the points into the session a second time. (A retry that
    // races the still-executing original can slip past this check; the
    // router only retries after the original's connection died, so that
    // window is the tail of an already-failed request.)
    if let Some(key) = parsed.idem {
        if let Some(replay) = state
            .idem
            .lock()
            .expect("idem poisoned")
            .get(parsed.user, key)
        {
            return replay;
        }
    }
    let Some(model) = state.model(parsed.model.as_deref()) else {
        return (404, error_body("unknown model"));
    };
    // The engine emits the canonical 70-feature row; models trained on
    // other feature tables cannot consume it.
    if model.artifact.feature_set != crate::featurize::ServeFeatureSet::Paper70 {
        return (
            409,
            error_body(&format!(
                "/ingest requires a Paper70 model; {:?} was trained on {:?}",
                model.artifact.name, model.artifact.feature_set
            )),
        );
    }

    let response = ingest_apply(state, &parsed, &model, started);
    // Record only now that the engine mutated state; the pure-read
    // failures above are safe to re-attempt verbatim.
    if let Some(key) = parsed.idem {
        state
            .idem
            .lock()
            .expect("idem poisoned")
            .put(parsed.user, key, &response);
    }
    response
}

/// The stateful tail of `/ingest`: pushes the points into the engine
/// and predicts every closed segment. Everything past the engine call
/// mutates session state, so the caller records the response under the
/// request's idempotency key no matter which branch returns.
fn ingest_apply(
    state: &AppState,
    parsed: &IngestRequest,
    model: &Arc<LoadedModel>,
    started: Instant,
) -> (u16, String) {
    let points = points_of(&parsed.points);
    let flush = parsed.flush.unwrap_or(false);
    let report = state.engine.ingest(parsed.user, &points, flush);
    if let Some(msg) = &report.wal_error {
        // The in-memory state advanced but the WAL rejected the records:
        // the accepted points are NOT durable. Fail the request so the
        // client knows this batch may not survive a restart.
        state.sync_ingest_metrics();
        return (
            500,
            error_body(&format!("wal append failed; batch not durable: {msg}")),
        );
    }

    // Close class: routed through the shared batcher (coalescing with
    // concurrent traffic) but never shed — the engine already consumed
    // these segments, so dropping the prediction would lose paid-for
    // work. Submit every close first so one flush can cover them all.
    let mut waiting = Vec::with_capacity(report.closed.len());
    for closed in &report.closed {
        let scaled = match model.project_scale(&closed.features) {
            Ok(row) => row,
            Err(msg) => return (500, error_body(&msg)),
        };
        match state
            .batcher
            .submit(Arc::clone(model), scaled, Priority::Close)
        {
            Ok(rx) => waiting.push(rx),
            // Unreachable by policy (close is never shed); fail loudly
            // rather than silently dropping a close if that changes.
            Err(_) => return (503, error_body("prediction queue rejected a close")),
        }
    }
    let mut predictions = Vec::with_capacity(report.closed.len());
    for (closed, rx) in report.closed.iter().zip(waiting) {
        let prediction = match rx.recv() {
            Ok(Ok(p)) => p,
            Ok(Err(e)) => return (predict_error_status(e), error_body(&e.to_string())),
            Err(_) => return (503, error_body("prediction queue unavailable")),
        };
        state.metrics.ingest.record_close(
            Some(started.elapsed().as_micros() as u64),
            closed.exact,
            closed.sketch_drift,
        );
        predictions.push(IngestPrediction {
            user: closed.user,
            start_t: closed.start.0,
            end_t: closed.end.0,
            n_points: closed.n_points,
            reason: closed.reason.as_str().to_owned(),
            exact: closed.exact,
            class: prediction.class,
            label: prediction.label,
            scores: prediction.scores,
        });
    }
    state.sync_ingest_metrics();

    let response = IngestResponse {
        model: model.artifact.name.clone(),
        version: model.artifact.version,
        accepted: report.accepted,
        dropped: report.dropped,
        open_points: report.open_points,
        class_names: class_names_of(&model.artifact.scheme),
        predictions,
    };
    match serde_json::to_string(&response) {
        Ok(body) => (200, body),
        Err(e) => (500, error_body(&e.to_string())),
    }
}

// ------------------------------------------------------- admin surface
//
// The cluster router drives shards through these endpoints: artifact
// rollout (stage → canary traffic on the pinned key → promote or roll
// back) and session handoff on reshard. They are plain POST routes —
// the HTTP layer parses no query strings — and they bypass the ready
// gate so a draining shard can still export its sessions.

#[derive(Debug, Deserialize)]
struct RolloutRequest {
    name: String,
    version: u32,
}

#[derive(Debug, Deserialize)]
struct HandoffExportRequest {
    users: Vec<u32>,
}

#[derive(Debug, Serialize, Deserialize)]
struct SessionDto {
    user: u32,
    /// Hex-encoded `Session` codec bytes (the WAL/snapshot codec), so
    /// binary state travels inside JSON without loss.
    hex: String,
}

#[derive(Debug, Deserialize)]
struct HandoffImportRequest {
    sessions: Vec<SessionDto>,
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_decode(text: &str) -> Result<Vec<u8>, String> {
    // Work on bytes: indexing the &str would panic mid-character on
    // multibyte UTF-8 client input.
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err("odd-length hex".to_owned());
    }
    let nibble = |b: u8, i: usize| -> Result<u8, String> {
        match b {
            b'0'..=b'9' => Ok(b - b'0'),
            b'a'..=b'f' => Ok(b - b'a' + 10),
            b'A'..=b'F' => Ok(b - b'A' + 10),
            _ => Err(format!("bad hex at byte {i}")),
        }
    };
    bytes
        .chunks_exact(2)
        .enumerate()
        .map(|(pair, chunk)| Ok(nibble(chunk[0], pair * 2)? << 4 | nibble(chunk[1], pair * 2 + 1)?))
        .collect()
}

/// `POST /admin/artifact/stage`: body is a full [`ModelArtifact`] JSON
/// document. Registers it under its pinned `name@vN` key only — default
/// traffic is untouched until an explicit promote.
fn handle_artifact_stage(state: &AppState, body: &[u8]) -> (u16, String) {
    let artifact: ModelArtifact = match parse_json_body(body) {
        Ok(a) => a,
        Err(resp) => return resp,
    };
    let mut registry = state.registry.write().expect("registry poisoned");
    match registry.insert_staged(artifact) {
        Ok(key) => (200, format!("{{\"staged\": \"{key}\"}}")),
        Err(e) => (422, error_body(&e)),
    }
}

/// `POST /admin/artifact/promote` (`promote == true`) repoints default
/// traffic at a staged version; `POST /admin/artifact/rollback` removes
/// a parked pinned version. Both atomic under the registry write lock.
fn handle_artifact_rollout(state: &AppState, body: &[u8], promote: bool) -> (u16, String) {
    let parsed: RolloutRequest = match parse_json_body(body) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let mut registry = state.registry.write().expect("registry poisoned");
    // The version default traffic served before a promote, reported back
    // so a cluster orchestrator can compensate a partially-failed
    // cluster-wide promote by re-promoting the previous version.
    let previous = promote
        .then(|| registry.get(Some(&parsed.name)).map(|m| m.artifact.version))
        .flatten();
    let result = if promote {
        registry.promote(&parsed.name, parsed.version)
    } else {
        registry.remove_pinned(&parsed.name, parsed.version)
    };
    match result {
        Ok(()) => {
            let previous = previous.map_or("null".to_owned(), |v| v.to_string());
            let tail = if promote {
                format!(", \"previous\": {previous}")
            } else {
                String::new()
            };
            (
                200,
                format!(
                    "{{\"{}\": \"{}@v{}\"{tail}}}",
                    if promote { "promoted" } else { "rolled_back" },
                    parsed.name,
                    parsed.version
                ),
            )
        }
        Err(e) => (409, error_body(&e)),
    }
}

/// `GET /admin/sessions`: the user ids with open sessions — the reshard
/// planner's input for deciding which sessions move.
fn handle_sessions(state: &AppState) -> (u16, String) {
    let users = state.engine.open_users();
    let list = users
        .iter()
        .map(u32::to_string)
        .collect::<Vec<String>>()
        .join(",");
    (200, format!("{{\"users\": [{list}]}}"))
}

/// `POST /admin/handoff/export`: returns the named sessions' codec
/// bytes hex-encoded, without removing them — export is a pure read, so
/// the source stays authoritative until an explicit
/// `/admin/handoff/evict` after the import succeeded on the new owner.
/// Users without an open session are skipped.
fn handle_handoff_export(state: &AppState, body: &[u8]) -> (u16, String) {
    let parsed: HandoffExportRequest = match parse_json_body(body) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let sessions: Vec<SessionDto> = state
        .engine
        .export_sessions(&parsed.users)
        .into_iter()
        .map(|(user, bytes)| SessionDto {
            user,
            hex: hex_encode(&bytes),
        })
        .collect();
    match serde_json::to_string(&sessions) {
        Ok(list) => (200, format!("{{\"sessions\": {list}}}")),
        Err(e) => (500, error_body(&e.to_string())),
    }
}

/// `POST /admin/handoff/evict`: drains the named sessions out of this
/// shard's engine (logging WAL closes so a replay cannot resurrect
/// them). The router calls this only after the new owner acknowledged
/// the import, which is what makes the handoff lossless. Users without
/// an open session are skipped — evicting is idempotent. A WAL failure
/// aborts mid-list with 500 (already-evicted users stay evicted; the
/// router compensates from the exported payload).
fn handle_handoff_evict(state: &AppState, body: &[u8]) -> (u16, String) {
    let parsed: HandoffExportRequest = match parse_json_body(body) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let result = state.engine.evict_sessions(&parsed.users);
    state.sync_ingest_metrics();
    match result {
        Ok(evicted) => (200, format!("{{\"evicted\": {evicted}}}")),
        Err(e) => (500, error_body(&e)),
    }
}

/// `POST /admin/handoff/import`: restores exported sessions
/// bit-identically into this shard's engine, then — when durability is
/// attached — snapshots immediately so the moved sessions survive a
/// crash on their new owner.
fn handle_handoff_import(state: &AppState, body: &[u8]) -> (u16, String) {
    let parsed: HandoffImportRequest = match parse_json_body(body) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let mut imported = 0usize;
    for dto in &parsed.sessions {
        let bytes = match hex_decode(&dto.hex) {
            Ok(b) => b,
            Err(e) => return (422, error_body(&format!("user {}: {e}", dto.user))),
        };
        if let Err(e) = state.engine.install_session_bytes(dto.user, &bytes) {
            return (422, error_body(&e));
        }
        imported += 1;
    }
    if let Some(handles) = state.durability.get() {
        if let Err(e) = write_snapshot(&state.engine, &handles.store, &handles.wal, &state.metrics)
        {
            return (
                500,
                error_body(&format!(
                    "imported {imported} sessions but not durable: {e}"
                )),
            );
        }
    }
    state.sync_ingest_metrics();
    (200, format!("{{\"imported\": {imported}}}"))
}

fn parse_json_body<T: serde::de::DeserializeOwned>(body: &[u8]) -> Result<T, (u16, String)> {
    let text =
        std::str::from_utf8(body).map_err(|_| (400, error_body("request body is not UTF-8")))?;
    serde_json::from_str(text).map_err(|e| (400, error_body(&format!("invalid JSON: {e}"))))
}

fn class_names_of(scheme: &traj_geo::LabelScheme) -> Vec<String> {
    scheme
        .class_names()
        .into_iter()
        .map(str::to_owned)
        .collect()
}

// ----------------------------------------------------------------- server

/// The WAL + snapshot store of a durably-configured server.
struct DurabilityResources {
    wal: Arc<Wal>,
    store: Arc<SnapshotStore>,
    /// LSN of the snapshot recovery loaded (seeds the skip-if-unchanged
    /// check of the snapshot thread).
    recovered_lsn: u64,
}

/// Encodes the open sessions, writes the snapshot atomically and
/// truncates the WAL past the covered LSN. Returns the snapshot's LSN.
fn write_snapshot(
    engine: &traj_stream::StreamEngine,
    store: &SnapshotStore,
    wal: &Wal,
    metrics: &ServeMetrics,
) -> Result<u64, String> {
    let started = Instant::now();
    let snap = engine.export_snapshot();
    store
        .write(snap.lsn, &snap.payload)
        .map_err(|e| format!("writing snapshot at lsn {}: {e}", snap.lsn))?;
    wal.truncate_until(snap.lsn)
        .map_err(|e| format!("truncating wal to lsn {}: {e}", snap.lsn))?;
    metrics.durability.record_snapshot(
        snap.lsn,
        snap.sessions as u64,
        started.elapsed().as_micros() as u64,
    );
    Ok(snap.lsn)
}

/// A running server; dropping or [`ServerHandle::stop`] shuts it down.
pub struct ServerHandle {
    addr: SocketAddr,
    running: Arc<AtomicBool>,
    reactor: Option<traj_net::ReactorHandle>,
    sweep_thread: Option<JoinHandle<()>>,
    wal_thread: Option<JoinHandle<()>>,
    runtime: Option<Arc<traj_runtime::Runtime>>,
    state: Arc<AppState>,
    durability: Option<DurabilityResources>,
    metrics: Arc<ServeMetrics>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics, for in-process inspection.
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Whether the server is past WAL replay + warm-up and serving
    /// traffic (the `/readyz` signal, without a socket).
    pub fn is_ready(&self) -> bool {
        self.state.ready.load(Ordering::SeqCst)
    }

    /// Dispatches one request in-process, bypassing sockets — the
    /// cluster router's local backend. Same routing table, readiness
    /// gating and metrics as the HTTP surface; returns `(status, body)`.
    pub fn dispatch(&self, method: &str, path: &str, body: &[u8]) -> (u16, String) {
        let started = Instant::now();
        let request = Request {
            method: method.to_owned(),
            path: path.to_owned(),
            body: body.to_vec(),
            keep_alive: true,
        };
        let response = route(&self.state, &request);
        self.state
            .metrics
            .record_response(response.status, started.elapsed().as_micros() as u64);
        (response.status, response.body)
    }

    /// Stops accepting, drains in-flight connections, joins every thread
    /// and — when durability is configured — performs the final flush:
    /// one WAL sync plus one snapshot of the surviving sessions, so a
    /// restart recovers without replaying the tail.
    ///
    /// `Err` means the server stopped but the final flush failed — the
    /// last accepted batches may not be durable. Callers that promised
    /// durability to their clients must surface this (the CLI and
    /// `stream_replay` exit non-zero).
    pub fn stop(&mut self) -> Result<(), String> {
        if !self.running.swap(false, Ordering::SeqCst) {
            return Ok(());
        }
        // Not ready anymore: routers health-checking mid-shutdown see a
        // 503 instead of racing the dying acceptor.
        self.state.ready.store(false, Ordering::SeqCst);
        // The reactor stops accepting, closes idle connections and
        // drains in-flight responses (bounded by its drain grace).
        if let Some(reactor) = self.reactor.take() {
            reactor.shutdown();
        }
        if let Some(t) = self.sweep_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.wal_thread.take() {
            let _ = t.join();
        }
        // The reactor has exited, so ours is the last reference:
        // dropping it shuts the pool down gracefully — already-queued
        // request tasks are served to completion, then workers are
        // joined. Only after that drain is the engine quiescent enough
        // for the final flush below to cover every accepted point.
        self.runtime.take();

        let mut errors = Vec::new();
        if let Some(res) = self.durability.take() {
            if let Err(e) = res.wal.sync() {
                errors.push(format!("final wal sync: {e}"));
            }
            match write_snapshot(
                &self.state.engine,
                &res.store,
                &res.wal,
                &self.state.metrics,
            ) {
                Ok(_) => {}
                Err(e) => errors.push(format!("final snapshot: {e}")),
            }
            self.state.sync_ingest_metrics();
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors.join("; "))
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Drop still drains and flushes; failures have nowhere to go
        // from a destructor, so callers that care call stop() directly.
        let _ = self.stop();
    }
}

/// Binds `addr` and serves `registry` until the handle is stopped.
///
/// `addr` may use port 0 to let the OS pick; read the effective address
/// off the handle.
pub fn serve(
    addr: &str,
    registry: ModelRegistry,
    config: ServerConfig,
) -> Result<ServerHandle, String> {
    if registry.is_empty() {
        return Err("refusing to serve an empty model registry".to_owned());
    }
    let listener = TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
    let local_addr = listener.local_addr().map_err(|e| e.to_string())?;

    let metrics = Arc::new(ServeMetrics::new(&registry.names()));

    let engine = traj_stream::StreamEngine::new(config.stream);
    let batcher = MicroBatcher::new(config.batch, Arc::clone(&metrics));
    let state = Arc::new(AppState {
        registry: RwLock::new(registry),
        metrics: Arc::clone(&metrics),
        batcher,
        engine,
        shard_id: config.shard_id,
        ready: AtomicBool::new(false),
        durability: OnceLock::new(),
        idem: Mutex::new(IdemCache::default()),
        net: OnceLock::new(),
    });
    let running = Arc::new(AtomicBool::new(true));

    // The reactor starts BEFORE recovery: liveness (`/healthz`) and the
    // admin surface answer immediately, while traffic endpoints 503
    // until the `ready` flip below. One event-loop thread owns every
    // connection; only *complete* requests become tasks on a dedicated
    // work-stealing pool (never the shared compute pool: request tasks
    // block on the micro-batcher's flush). Queueing and shutdown
    // draining come with the pool.
    let workers = config.workers.max(1);
    let runtime = Arc::new(traj_runtime::Runtime::named(workers, "traj-serve"));

    let service = Arc::new(ServeService {
        state: Arc::clone(&state),
        runtime: Arc::clone(&runtime),
    });
    let reactor = traj_net::spawn(
        listener,
        traj_net::ReactorConfig {
            name: "traj-serve".to_owned(),
            max_body_bytes: config.max_body_bytes,
            idle_timeout: config.read_timeout,
            write_stall_timeout: config.write_stall_timeout,
            max_connections: config.max_connections,
            ..traj_net::ReactorConfig::default()
        },
        service,
    )
    .map_err(|e| format!("spawning connection reactor: {e}"))?;
    let _ = state.net.set(reactor.stats());

    // Durable ingest: recover stream state from snapshot + WAL replay.
    // serve() only returns once recovery finished, so in-process callers
    // still get a fully-ready server; concurrent clients see 503s on
    // traffic endpoints meanwhile.
    let mut durability: Option<DurabilityResources> = None;
    if let Some(d) = &config.durability {
        let store = SnapshotStore::open(d.dir.join("snapshots"))
            .map_err(|e| format!("opening snapshot dir under {}: {e}", d.dir.display()))?;
        let (wal, open_report) = Wal::open(WalConfig {
            dir: d.dir.join("wal"),
            segment_bytes: d.segment_bytes,
            fsync: d.fsync,
        })
        .map_err(|e| format!("opening wal under {}: {e}", d.dir.display()))?;
        let wal = Arc::new(wal);
        let report = traj_stream::recover(&state.engine, &store, &wal)
            .map_err(|e| format!("recovering stream state: {e}"))?;
        for diag in open_report.diagnostics.iter().chain(&report.diagnostics) {
            eprintln!("traj-serve durability: {diag}");
        }
        state.engine.attach_wal(Arc::clone(&wal));
        metrics.durability.enable();
        metrics.durability.record_recovery(&report);
        let fsync_metrics = Arc::clone(&metrics);
        wal.set_sync_observer(Box::new(move |us| {
            fsync_metrics.durability.fsync_us.record(us);
        }));
        let store = Arc::new(store);
        let _ = state.durability.set(DurabilityHandles {
            wal: Arc::clone(&wal),
            store: Arc::clone(&store),
        });
        durability = Some(DurabilityResources {
            wal,
            store,
            recovered_lsn: report.snapshot_lsn,
        });
    }

    // Registry warm-up: resolve every key once so first requests pay no
    // lazy cost, then open the traffic gate.
    {
        let registry = state.registry.read().expect("registry poisoned");
        for key in registry.keys() {
            let _ = registry.get(Some(&key));
        }
    }
    state.ready.store(true, Ordering::SeqCst);

    // WAL maintenance: drives the interval fsync policy and writes a
    // snapshot (then truncates the WAL) whenever the log advanced since
    // the last one.
    let mut wal_thread = None;
    if let (Some(res), Some(d)) = (&durability, &config.durability) {
        let wal = Arc::clone(&res.wal);
        let store = Arc::clone(&res.store);
        let thread_state = Arc::clone(&state);
        let thread_running = Arc::clone(&running);
        let interval = d.snapshot_interval;
        let mut last_written = res.recovered_lsn;
        wal_thread = Some(
            std::thread::Builder::new()
                .name("traj-serve-wal".to_owned())
                .spawn(move || {
                    let mut last_snapshot = Instant::now();
                    while thread_running.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(25));
                        // A failed tick poisons the WAL; the next append
                        // surfaces it as a 500, so nothing to do here.
                        let _ = wal.tick();
                        if last_snapshot.elapsed() < interval {
                            continue;
                        }
                        last_snapshot = Instant::now();
                        thread_state.sync_ingest_metrics();
                        if wal.last_lsn() == last_written {
                            continue; // nothing new to cover
                        }
                        match write_snapshot(
                            &thread_state.engine,
                            &store,
                            &wal,
                            &thread_state.metrics,
                        ) {
                            Ok(lsn) => last_written = lsn,
                            Err(e) => {
                                thread_state
                                    .metrics
                                    .durability
                                    .snapshot_errors
                                    .fetch_add(1, Ordering::Relaxed);
                                eprintln!("traj-serve durability: {e}");
                            }
                        }
                    }
                })
                .map_err(|e| format!("spawning wal maintenance: {e}"))?,
        );
    }

    // Idle-session sweeper: closes sessions with no recent points so
    // abandoned streams release their state. The resulting segments have
    // no waiting requester; they only feed the metrics.
    let sweep_state = Arc::clone(&state);
    let sweep_running = Arc::clone(&running);
    let sweep_interval = config.idle_sweep_interval;
    let sweep_thread = std::thread::Builder::new()
        .name("traj-serve-sweep".to_owned())
        .spawn(move || {
            let mut last_sweep = Instant::now();
            while sweep_running.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(50));
                if last_sweep.elapsed() < sweep_interval {
                    continue;
                }
                last_sweep = Instant::now();
                for closed in sweep_state.engine.sweep_idle() {
                    sweep_state.metrics.ingest.record_close(
                        None,
                        closed.exact,
                        closed.sketch_drift,
                    );
                }
                sweep_state.sync_ingest_metrics();
            }
        })
        .map_err(|e| format!("spawning sweeper: {e}"))?;

    Ok(ServerHandle {
        addr: local_addr,
        running,
        reactor: Some(reactor),
        sweep_thread: Some(sweep_thread),
        wal_thread,
        runtime: Some(runtime),
        state,
        durability,
        metrics,
    })
}

/// The reactor→worker bridge: every complete request becomes one task
/// on the dedicated pool, which routes it and hands the response back
/// to the reactor through the [`traj_net::Responder`]. The latency
/// clock starts *before* the spawn so queue wait inside the pool counts
/// toward the recorded latency, exactly like the per-connection-thread
/// model it replaces.
struct ServeService {
    state: Arc<AppState>,
    runtime: Arc<traj_runtime::Runtime>,
}

impl traj_net::Service for ServeService {
    fn call(&self, request: traj_net::Request, responder: traj_net::Responder) {
        let started = Instant::now();
        let state = Arc::clone(&self.state);
        self.runtime.spawn(move || {
            let request = Request {
                method: request.method,
                path: request.path,
                body: request.body,
                keep_alive: request.keep_alive,
            };
            let response = route(&state, &request);
            state
                .metrics
                .record_response(response.status, started.elapsed().as_micros() as u64);
            responder.send(response.status, response.body, response.retry_after);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{ModelArtifact, TrainSpec};
    use crate::http::client_request;
    use std::io::BufReader as ClientBufReader;
    use std::net::TcpStream;
    use traj_geolife::{SynthConfig, SynthDataset};

    fn test_registry() -> (ModelRegistry, Vec<traj_geo::Segment>) {
        let segs = SynthDataset::generate(&SynthConfig {
            n_users: 4,
            segments_per_user: (4, 6),
            seed: 23,
            ..SynthConfig::default()
        })
        .segments;
        let spec = TrainSpec {
            kind: traj_ml::ClassifierKind::DecisionTree,
            ..TrainSpec::paper_default("tree")
        };
        let mut reg = ModelRegistry::new();
        reg.insert(ModelArtifact::train(&spec, &segs).unwrap())
            .unwrap();
        (reg, segs)
    }

    fn body_of(segment: &traj_geo::Segment) -> String {
        let points: Vec<String> = segment
            .points
            .iter()
            .map(|p| format!("{{\"lat\":{},\"lon\":{},\"t\":{}}}", p.lat, p.lon, p.t.0))
            .collect();
        format!("{{\"points\":[{}]}}", points.join(","))
    }

    #[test]
    fn server_round_trips_predict_and_metrics() {
        let (registry, segs) = test_registry();
        let mut handle = serve(
            "127.0.0.1:0",
            registry,
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .expect("bind");

        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut client = ClientBufReader::new(stream);

        let (status, body) = client_request(&mut client, "GET", "/healthz", None).expect("healthz");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"tree\""));

        let seg = segs.iter().find(|s| s.len() >= 10).expect("long segment");
        let (status, body) =
            client_request(&mut client, "POST", "/predict", Some(&body_of(seg))).expect("predict");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"label\":"));

        let (status, body) =
            client_request(&mut client, "POST", "/predict", Some("{not json")).expect("bad json");
        assert_eq!(status, 400, "{body}");

        let (status, body) = client_request(&mut client, "GET", "/metrics", None).expect("metrics");
        assert_eq!(status, 200);
        assert!(body.contains("\"requests_total\""));
        assert!(body.contains("\"durability\""));

        handle.stop().expect("stop");
    }

    #[test]
    fn refuses_empty_registry() {
        assert!(serve("127.0.0.1:0", ModelRegistry::new(), ServerConfig::default()).is_err());
    }

    #[test]
    fn readiness_gates_traffic_but_not_health_or_admin() {
        let (registry, segs) = test_registry();
        let mut handle = serve(
            "127.0.0.1:0",
            registry,
            ServerConfig {
                workers: 1,
                shard_id: Some(3),
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        assert!(handle.is_ready());

        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut client = ClientBufReader::new(stream);
        let (status, body) = client_request(&mut client, "GET", "/readyz", None).expect("readyz");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"shard\": 3"), "{body}");

        // Drained: liveness and metrics still answer, traffic 503s.
        let (status, _) =
            client_request(&mut client, "POST", "/admin/drain", Some("{}")).expect("drain");
        assert_eq!(status, 200);
        assert!(!handle.is_ready());
        let (status, _) = client_request(&mut client, "GET", "/readyz", None).expect("readyz");
        assert_eq!(status, 503);
        let (status, body) = client_request(&mut client, "GET", "/healthz", None).expect("healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"ready\":false"), "{body}");
        let seg = segs.iter().find(|s| s.len() >= 10).expect("long segment");
        let (status, body) =
            client_request(&mut client, "POST", "/predict", Some(&body_of(seg))).expect("predict");
        assert_eq!(status, 503, "{body}");
        let (status, body) = client_request(&mut client, "GET", "/metrics", None).expect("metrics");
        assert_eq!(status, 200);
        assert!(body.contains("\"shard\": {\"id\": 3"), "{body}");

        // Back in rotation.
        let (status, _) =
            client_request(&mut client, "POST", "/admin/ready", Some("{}")).expect("ready");
        assert_eq!(status, 200);
        let (status, body) =
            client_request(&mut client, "POST", "/predict", Some(&body_of(seg))).expect("predict");
        assert_eq!(status, 200, "{body}");

        handle.stop().expect("stop");
    }

    #[test]
    fn artifact_stage_promote_rollback_over_dispatch() {
        let (registry, segs) = test_registry();
        let mut handle = serve(
            "127.0.0.1:0",
            registry,
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        )
        .expect("bind");

        // Stage v2: pinned key serves, default stays v1.
        let spec = TrainSpec {
            kind: traj_ml::ClassifierKind::DecisionTree,
            version: 2,
            ..TrainSpec::paper_default("tree")
        };
        let v2 = ModelArtifact::train(&spec, &segs).unwrap();
        let (status, body) = handle.dispatch(
            "POST",
            "/admin/artifact/stage",
            v2.to_json().unwrap().as_bytes(),
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("tree@v2"), "{body}");

        let seg = segs.iter().find(|s| s.len() >= 10).expect("long segment");
        let (status, body) = handle.dispatch("POST", "/predict", body_of(seg).as_bytes());
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"version\":1"), "{body}");
        let pinned = body_of(seg).replacen('{', "{\"model\":\"tree@v2\",", 1);
        let (status, body) = handle.dispatch("POST", "/predict", pinned.as_bytes());
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"version\":2"), "{body}");

        // Promote: default traffic flips to v2 atomically.
        let (status, body) = handle.dispatch(
            "POST",
            "/admin/artifact/promote",
            b"{\"name\":\"tree\",\"version\":2}",
        );
        assert_eq!(status, 200, "{body}");
        let (status, body) = handle.dispatch("POST", "/predict", body_of(seg).as_bytes());
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"version\":2"), "{body}");

        // Rollback of the now-active version must refuse; a parked one
        // is removable.
        let (status, body) = handle.dispatch(
            "POST",
            "/admin/artifact/rollback",
            b"{\"name\":\"tree\",\"version\":2}",
        );
        assert_eq!(status, 409, "{body}");
        let (status, body) = handle.dispatch(
            "POST",
            "/admin/artifact/promote",
            b"{\"name\":\"tree\",\"version\":1}",
        );
        assert_eq!(status, 200, "{body}");
        let (status, body) = handle.dispatch(
            "POST",
            "/admin/artifact/rollback",
            b"{\"name\":\"tree\",\"version\":2}",
        );
        assert_eq!(status, 200, "{body}");
        let (status, _) = handle.dispatch("POST", "/predict", pinned.as_bytes());
        assert_eq!(status, 404);

        handle.stop().expect("stop");
    }

    #[test]
    fn handoff_export_import_moves_sessions() {
        let (registry, segs) = test_registry();
        let (registry2, _) = test_registry();
        let mut source = serve("127.0.0.1:0", registry, ServerConfig::default()).expect("bind");
        let mut target = serve("127.0.0.1:0", registry2, ServerConfig::default()).expect("bind");

        // Open two streams on the source (no flush: sessions stay open).
        let seg = segs.iter().find(|s| s.len() >= 10).expect("long segment");
        for user in [7u32, 11] {
            let body = body_of(seg).replacen('{', &format!("{{\"user\":{user},"), 1);
            let (status, body) = source.dispatch("POST", "/ingest", body.as_bytes());
            assert_eq!(status, 200, "{body}");
        }
        let (status, body) = source.dispatch("GET", "/admin/sessions", b"");
        assert_eq!(status, 200);
        assert!(body.contains("[7,11]"), "{body}");

        // Export 7 off the source: a pure copy — the source still owns
        // the session until the explicit evict below.
        let (status, export) = source.dispatch("POST", "/admin/handoff/export", b"{\"users\":[7]}");
        assert_eq!(status, 200, "{export}");
        let (_, body) = source.dispatch("GET", "/admin/sessions", b"");
        assert!(body.contains("[7,11]"), "export must not drain: {body}");
        let sessions = export.trim_start_matches("{\"sessions\": ");
        let import = format!("{{\"sessions\": {}", sessions);
        let (status, body) = target.dispatch("POST", "/admin/handoff/import", import.as_bytes());
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"imported\": 1"), "{body}");
        let (status, body) = source.dispatch("POST", "/admin/handoff/evict", b"{\"users\":[7]}");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"evicted\": 1"), "{body}");

        let (_, body) = source.dispatch("GET", "/admin/sessions", b"");
        assert!(body.contains("[11]"), "{body}");
        let (_, body) = target.dispatch("GET", "/admin/sessions", b"");
        assert!(body.contains("[7]"), "{body}");

        // The moved stream keeps flowing on its new owner.
        let shifted: String = {
            let points: Vec<String> = seg
                .points
                .iter()
                .map(|p| {
                    format!(
                        "{{\"lat\":{},\"lon\":{},\"t\":{}}}",
                        p.lat,
                        p.lon,
                        p.t.0 + 1_000_000_000
                    )
                })
                .collect();
            format!(
                "{{\"user\":7,\"flush\":true,\"points\":[{}]}}",
                points.join(",")
            )
        };
        let (status, body) = target.dispatch("POST", "/ingest", shifted.as_bytes());
        assert_eq!(status, 200, "{body}");

        // Corrupt hex is a 422, not a panic — including multibyte UTF-8,
        // which would panic a byte-indexed &str slice mid-character.
        let (status, _) = target.dispatch(
            "POST",
            "/admin/handoff/import",
            b"{\"sessions\":[{\"user\":9,\"hex\":\"zz\"}]}",
        );
        assert_eq!(status, 422);
        let (status, _) = target.dispatch(
            "POST",
            "/admin/handoff/import",
            "{\"sessions\":[{\"user\":9,\"hex\":\"a\u{00e9}\u{00e9}a\"}]}".as_bytes(),
        );
        assert_eq!(status, 422);

        source.stop().expect("stop source");
        target.stop().expect("stop target");
    }

    #[test]
    fn keyed_ingest_retry_replays_without_double_apply() {
        let (registry, segs) = test_registry();
        let mut handle = serve("127.0.0.1:0", registry, ServerConfig::default()).expect("bind");
        let seg = segs.iter().find(|s| s.len() >= 10).expect("long segment");

        // The same keyed request twice: the replay must return the
        // recorded response and must NOT push the points again.
        let body = body_of(seg).replacen('{', "{\"user\":3,\"idem\":42,", 1);
        let (status, first) = handle.dispatch("POST", "/ingest", body.as_bytes());
        assert_eq!(status, 200, "{first}");
        let (status, replay) = handle.dispatch("POST", "/ingest", body.as_bytes());
        assert_eq!(status, 200);
        assert_eq!(first, replay, "replay must be the recorded response");
        let (_, metrics) = handle.dispatch("GET", "/metrics", b"");
        assert!(
            metrics.contains(&format!("\"points_total\": {}", seg.len())),
            "points were double-applied: {metrics}"
        );

        // A different key applies normally (fresh user: re-sending the
        // same timestamps to user 3 would be dropped as stale).
        let body2 = body_of(seg).replacen('{', "{\"user\":4,\"idem\":43,", 1);
        let (status, second) = handle.dispatch("POST", "/ingest", body2.as_bytes());
        assert_eq!(status, 200, "{second}");
        let (_, metrics) = handle.dispatch("GET", "/metrics", b"");
        assert!(
            metrics.contains(&format!("\"points_total\": {}", 2 * seg.len())),
            "{metrics}"
        );

        handle.stop().expect("stop");
    }

    #[test]
    fn unfitted_model_maps_to_conflict() {
        let (_, segs) = test_registry();
        // An artifact whose model never saw fit(): the typed NotFitted
        // error must surface as 409, not a worker panic or a 500.
        let spec = TrainSpec {
            kind: traj_ml::ClassifierKind::DecisionTree,
            ..TrainSpec::paper_default("hollow")
        };
        let mut artifact = ModelArtifact::train(&spec, &segs).unwrap();
        artifact.model = traj_ml::ErasedModel::new(spec.kind, 0);
        let mut registry = ModelRegistry::new();
        registry.insert(artifact).unwrap();

        let mut handle = serve(
            "127.0.0.1:0",
            registry,
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut client = ClientBufReader::new(stream);

        let seg = segs.iter().find(|s| s.len() >= 10).expect("long segment");
        let (status, body) =
            client_request(&mut client, "POST", "/predict", Some(&body_of(seg))).expect("predict");
        assert_eq!(status, 409, "{body}");
        assert!(body.contains("unfitted"), "{body}");

        let points_json = body_of(seg); // {"points":[...]}
        let batch = format!(
            "{{\"segments\":[{}]}}",
            &points_json[10..points_json.len() - 1]
        );
        let (status, body) = client_request(&mut client, "POST", "/predict_batch", Some(&batch))
            .expect("predict_batch");
        assert_eq!(status, 409, "{body}");

        handle.stop().expect("stop");
    }
}
