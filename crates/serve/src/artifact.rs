//! Trained-model artifacts: everything inference needs, in one JSON file.
//!
//! A model alone cannot serve predictions — the server must also know
//! which features the model consumes (step 5's selection), how to scale
//! them (step 7's Min–Max parameters, captured at training time), and
//! which label scheme maps class indices back to mode names. An artifact
//! bundles all four so that `train-artifact` (offline) and the registry
//! (online) agree by construction.

use crate::featurize::ServeFeatureSet;
use serde::{Deserialize, Serialize};
use std::path::Path;
use traj_features::normalize::MinMaxScaler;
use traj_geo::{LabelScheme, Segment};
use traj_ml::{
    BatchPredictor, Classifier, ClassifierKind, Dataset, ErasedModel, Predictions, RowMatrix,
};

/// Minimum points per servable segment, mirroring the paper's
/// segmentation floor (segments below it were never seen in training).
pub const MIN_SEGMENT_POINTS: usize = 10;

/// A self-contained trained model: metadata, feature selection,
/// normalisation parameters and the fitted classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelArtifact {
    /// Registry name the model is served under.
    pub name: String,
    /// Monotonically increasing version; the registry keeps the latest
    /// per name and serves pinned `name@vN` lookups for the rest.
    pub version: u32,
    /// Label grouping; maps predicted class indices to mode names.
    pub scheme: LabelScheme,
    /// Base feature table the model was trained on.
    #[serde(default)]
    pub feature_set: ServeFeatureSet,
    /// Selected features in model-input order (step 5). A subset of
    /// `feature_set.full_feature_names()`.
    pub feature_names: Vec<String>,
    /// Min–Max parameters fitted on the (selected) training columns
    /// (step 7).
    pub scaler: MinMaxScaler,
    /// The fitted classifier (step 8).
    pub model: ErasedModel,
}

/// Training-time options of [`ModelArtifact::train`].
#[derive(Debug, Clone)]
pub struct TrainSpec {
    /// Registry name.
    pub name: String,
    /// Artifact version.
    pub version: u32,
    /// Label scheme to train under.
    pub scheme: LabelScheme,
    /// Base feature table.
    pub feature_set: ServeFeatureSet,
    /// Classifier to fit.
    pub kind: ClassifierKind,
    /// Keep only the top-k features by random-forest importance
    /// (the paper's step 4/5); `None` keeps the full table.
    pub top_k: Option<usize>,
    /// Seed of the importance forest and the classifier.
    pub seed: u64,
}

impl TrainSpec {
    /// A spec with the paper's defaults: Dabiri scheme, 70 features, no
    /// selection, random forest.
    pub fn paper_default(name: impl Into<String>) -> TrainSpec {
        TrainSpec {
            name: name.into(),
            version: 1,
            scheme: LabelScheme::Dabiri,
            feature_set: ServeFeatureSet::Paper70,
            kind: ClassifierKind::RandomForest,
            top_k: None,
            seed: 0,
        }
    }
}

impl ModelArtifact {
    /// Trains an artifact from labeled segments: featurise, optionally
    /// select the top-k features, fit the scaler on the selected columns,
    /// scale, and fit the classifier.
    ///
    /// Unlike `trajlib::Pipeline` (which normalises and then discards the
    /// scaler — cross-validation refits per run), the fitted scaler is
    /// retained in the artifact because serving must apply the *training*
    /// ranges to unseen requests.
    pub fn train(spec: &TrainSpec, segments: &[Segment]) -> Result<ModelArtifact, String> {
        let full_names = spec.feature_set.full_feature_names();
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut labels = Vec::new();
        let mut groups = Vec::new();
        for seg in segments {
            // Count admission against the shared timestamp policy
            // (featurization drops non-monotonic points internally).
            if traj_geo::monotonic_len(&seg.points) < MIN_SEGMENT_POINTS {
                continue;
            }
            let Some(class) = spec.scheme.class_of(seg.mode) else {
                continue;
            };
            rows.push(spec.feature_set.featurize(seg));
            labels.push(class);
            groups.push(seg.user);
        }
        if rows.is_empty() {
            return Err("no trainable segments (too short or outside the scheme)".to_owned());
        }

        // Step 4/5: optional importance-ranked selection on the raw table
        // (Min–Max scaling is monotone per feature, so tree importances
        // are unaffected by ranking before scaling).
        let (feature_names, mut rows) = match spec.top_k {
            None => (full_names, rows),
            Some(k) => {
                let k = k.min(full_names.len());
                if k == 0 {
                    return Err("--top-k must be at least 1".to_owned());
                }
                let full = Dataset::from_rows(
                    &rows,
                    labels.clone(),
                    spec.scheme.n_classes(),
                    groups.clone(),
                    full_names.clone(),
                );
                let ranked = traj_select::rf_importance_ranking(&full, 50, spec.seed);
                let indices: Vec<usize> = ranked.iter().take(k).map(|&(i, _)| i).collect();
                let names = indices.iter().map(|&i| full_names[i].clone()).collect();
                let projected = rows
                    .iter()
                    .map(|r| indices.iter().map(|&i| r[i]).collect())
                    .collect();
                (names, projected)
            }
        };

        // Step 7: fit Min–Max on the training columns, keep the params.
        let scaler = MinMaxScaler::fit(&rows);
        scaler.transform(&mut rows);

        // Step 8.
        let data = Dataset::from_rows(
            &rows,
            labels,
            spec.scheme.n_classes(),
            groups,
            feature_names.clone(),
        );
        let mut model = ErasedModel::new(spec.kind, spec.seed);
        model.fit(&data);

        Ok(ModelArtifact {
            name: spec.name.clone(),
            version: spec.version,
            scheme: spec.scheme,
            feature_set: spec.feature_set,
            feature_names,
            scaler,
            model,
        })
    }

    /// Training accuracy of the artifact on the segments it was (or could
    /// have been) trained on — a smoke check for `train-artifact`.
    pub fn training_accuracy(&self, segments: &[Segment]) -> f64 {
        let full_names = self.feature_set.full_feature_names();
        let indices: Vec<usize> = self
            .feature_names
            .iter()
            .map(|n| full_names.iter().position(|f| f == n).expect("known name"))
            .collect();
        let mut rows = RowMatrix::with_width(indices.len());
        let mut truth = Vec::new();
        for seg in segments {
            if traj_geo::monotonic_len(&seg.points) < MIN_SEGMENT_POINTS {
                continue;
            }
            let Some(class) = self.scheme.class_of(seg.mode) else {
                continue;
            };
            let full = self.feature_set.featurize(seg);
            let mut row: Vec<f64> = indices.iter().map(|&i| full[i]).collect();
            self.scaler.transform_row(&mut row);
            rows.push_row(&row);
            truth.push(class);
        }
        if truth.is_empty() {
            return 0.0;
        }
        let mut out = Predictions::new();
        self.model
            .predict_into(&rows, &mut out)
            .expect("artifact model is fitted by construction");
        let correct = out
            .classes()
            .iter()
            .zip(&truth)
            .filter(|(p, t)| p == t)
            .count();
        correct as f64 / truth.len() as f64
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string(self).map_err(|e| e.to_string())
    }

    /// Deserialises from JSON.
    pub fn from_json(json: &str) -> Result<ModelArtifact, String> {
        serde_json::from_str(json).map_err(|e| format!("invalid artifact JSON: {e}"))
    }

    /// Writes the artifact to a file.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.to_json()?)
            .map_err(|e| format!("writing {}: {e}", path.display()))
    }

    /// Reads an artifact from a file.
    pub fn load(path: &Path) -> Result<ModelArtifact, String> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        ModelArtifact::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_geolife::{SynthConfig, SynthDataset};

    fn segments() -> Vec<Segment> {
        SynthDataset::generate(&SynthConfig::small(77)).segments
    }

    #[test]
    fn train_full_table_round_trips() {
        let segs = segments();
        let artifact =
            ModelArtifact::train(&TrainSpec::paper_default("rf-full"), &segs).expect("train");
        assert_eq!(artifact.feature_names.len(), 70);
        let json = artifact.to_json().unwrap();
        let back = ModelArtifact::from_json(&json).unwrap();
        assert_eq!(artifact, back);
        assert!(artifact.training_accuracy(&segs) > 0.8);
    }

    #[test]
    fn top_k_selects_k_features() {
        let segs = segments();
        let spec = TrainSpec {
            top_k: Some(20),
            ..TrainSpec::paper_default("rf-top20")
        };
        let artifact = ModelArtifact::train(&spec, &segs).expect("train");
        assert_eq!(artifact.feature_names.len(), 20);
        let full = ServeFeatureSet::Paper70.full_feature_names();
        for name in &artifact.feature_names {
            assert!(full.contains(name), "{name} not a known feature");
        }
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(ModelArtifact::train(&TrainSpec::paper_default("x"), &[]).is_err());
    }
}
