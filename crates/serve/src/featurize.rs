//! Per-segment featurisation for inference — steps 2–3 of the paper's
//! framework applied to a single unlabeled segment.
//!
//! Training runs the same steps through `trajlib::Pipeline` over a whole
//! corpus; at serving time each request carries one segment, so the
//! pipeline is re-expressed here as a pure function of the points. The
//! feature order matches the training-side tables exactly (the artifact
//! stores the selected names, and [`crate::registry::LoadedModel`]
//! resolves them against [`full_feature_names`]).

use serde::{Deserialize, Serialize};
use traj_features::point_features::PointFeatures;
use traj_features::trajectory_features::{feature_names, features_from_point_features};
use traj_geo::{Segment, TrajectoryPoint, TransportMode};

/// Which base feature table the model was trained on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ServeFeatureSet {
    /// The paper's 70 features (10 statistics × 7 point features).
    #[default]
    Paper70,
    /// The 70 plus the ten spatiotemporal extensions.
    Extended80,
    /// The classic 11 features of Zheng et al. (UbiComp 2008).
    Zheng11,
}

impl ServeFeatureSet {
    /// Column names of the full (pre-selection) feature table, in order.
    pub fn full_feature_names(self) -> Vec<String> {
        match self {
            ServeFeatureSet::Paper70 => feature_names(),
            ServeFeatureSet::Extended80 => {
                let mut names = feature_names();
                names.extend(traj_features::extended::extended_feature_names());
                names
            }
            ServeFeatureSet::Zheng11 => traj_features::zheng::zheng_feature_names(),
        }
    }

    /// The full feature row of one segment, matching
    /// [`ServeFeatureSet::full_feature_names`] column for column.
    pub fn featurize(self, segment: &Segment) -> Vec<f64> {
        let pf = PointFeatures::compute(segment);
        match self {
            ServeFeatureSet::Paper70 => features_from_point_features(&pf),
            ServeFeatureSet::Extended80 => {
                let mut row = features_from_point_features(&pf);
                row.extend(traj_features::extended::extended_features(segment, &pf));
                row
            }
            ServeFeatureSet::Zheng11 => traj_features::zheng::zheng_features(segment, &pf),
        }
    }
}

/// Wraps raw inference points into a [`Segment`].
///
/// The mode is what the model will predict and the user/day grouping only
/// matters for cross-validation, so placeholders fill those fields.
pub fn segment_of_points(points: Vec<TrajectoryPoint>) -> Segment {
    Segment::new(0, TransportMode::Walk, 0, points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_geo::Timestamp;

    fn walk_points(n: usize) -> Vec<TrajectoryPoint> {
        (0..n)
            .map(|i| TrajectoryPoint::new(39.9 + i as f64 * 1e-5, 116.3, Timestamp(i as i64 * 10)))
            .collect()
    }

    #[test]
    fn featurize_matches_name_count() {
        let seg = segment_of_points(walk_points(20));
        for set in [
            ServeFeatureSet::Paper70,
            ServeFeatureSet::Extended80,
            ServeFeatureSet::Zheng11,
        ] {
            let names = set.full_feature_names();
            let row = set.featurize(&seg);
            assert_eq!(names.len(), row.len(), "{set:?}");
            assert!(row.iter().all(|v| v.is_finite()), "{set:?}");
        }
        assert_eq!(ServeFeatureSet::Paper70.full_feature_names().len(), 70);
        assert_eq!(ServeFeatureSet::Extended80.full_feature_names().len(), 80);
        assert_eq!(ServeFeatureSet::Zheng11.full_feature_names().len(), 11);
    }

    #[test]
    fn feature_set_serialises_as_tag() {
        let json = serde_json::to_string(&ServeFeatureSet::Extended80).unwrap();
        assert_eq!(json, "\"Extended80\"");
        let back: ServeFeatureSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ServeFeatureSet::Extended80);
    }
}
