//! The model registry: named, versioned, ready-to-serve models.
//!
//! Loading resolves each artifact's selected feature names against the
//! full feature table once, so the per-request hot path is index lookups
//! only: featurise → project → scale → predict.

use crate::artifact::{ModelArtifact, MIN_SEGMENT_POINTS};
use crate::featurize::segment_of_points;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;
use traj_geo::TrajectoryPoint;
use traj_ml::{BatchPredictor, CompiledModel, PredictError, Predictions, RowMatrix};

/// One model prediction: the dense class index, its mode name, and the
/// per-class scores in class-index order.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Dense class index under the artifact's label scheme.
    pub class: usize,
    /// Mode name of `class` (e.g. `"walk"`).
    pub label: String,
    /// Per-class scores, summing to 1.
    pub scores: Vec<f64>,
}

/// An artifact with its feature projection resolved, ready to predict.
#[derive(Debug)]
pub struct LoadedModel {
    /// The artifact as loaded.
    pub artifact: ModelArtifact,
    /// Indices of the selected features in the full feature row.
    feature_indices: Vec<usize>,
    /// Width of the full (pre-selection) feature row.
    full_width: usize,
    /// Flat SoA lowering of the artifact's model, built once at load time.
    /// `None` for model kinds without a compiled form (kNN, SVM, MLP,
    /// AdaBoost), which fall back to the per-row walkers.
    compiled: Option<CompiledModel>,
}

impl LoadedModel {
    /// Resolves an artifact's feature names; fails on names the feature
    /// set does not produce or a scaler of the wrong width.
    pub fn new(artifact: ModelArtifact) -> Result<LoadedModel, String> {
        let full_names = artifact.feature_set.full_feature_names();
        let feature_indices = artifact
            .feature_names
            .iter()
            .map(|n| {
                full_names
                    .iter()
                    .position(|f| f == n)
                    .ok_or_else(|| format!("artifact {}: unknown feature {n:?}", artifact.name))
            })
            .collect::<Result<Vec<usize>, String>>()?;
        if artifact.scaler.n_features() != feature_indices.len() {
            return Err(format!(
                "artifact {}: scaler width {} != {} selected features",
                artifact.name,
                artifact.scaler.n_features(),
                feature_indices.len()
            ));
        }
        let compiled = artifact.model.compile();
        Ok(LoadedModel {
            artifact,
            feature_indices,
            full_width: full_names.len(),
            compiled,
        })
    }

    /// `true` when the underlying model has been fitted and can predict.
    pub fn is_ready(&self) -> bool {
        self.artifact.model.is_fitted()
    }

    /// Width of the scaled model-input row (selected features).
    pub fn input_width(&self) -> usize {
        self.feature_indices.len()
    }

    /// Registry key of this exact version (`name@v3`).
    pub fn versioned_key(&self) -> String {
        format!("{}@v{}", self.artifact.name, self.artifact.version)
    }

    /// The scaled model-input row of one segment of raw points.
    ///
    /// Errors when the segment is shorter than the training segmentation
    /// floor — the model never saw such inputs.
    pub fn features_of_points(&self, points: &[TrajectoryPoint]) -> Result<Vec<f64>, String> {
        let kept = traj_geo::monotonic_len(points);
        if kept < MIN_SEGMENT_POINTS {
            return Err(format!(
                "segment has {kept} policy-surviving points; at least {MIN_SEGMENT_POINTS} required",
            ));
        }
        let segment = segment_of_points(points.to_vec());
        let full = self.artifact.feature_set.featurize(&segment);
        self.project_scale(&full)
    }

    /// Projects a *full* canonical feature row (in
    /// `feature_set.full_feature_names()` order) onto the model's selected
    /// features and applies the training-time Min–Max scaling. The entry
    /// point of the streaming path, whose engine emits full rows.
    pub fn project_scale(&self, full_row: &[f64]) -> Result<Vec<f64>, String> {
        let expected = self.full_width;
        if full_row.len() != expected {
            return Err(format!(
                "full feature row has {} values; feature set {:?} produces {expected}",
                full_row.len(),
                self.artifact.feature_set
            ));
        }
        let mut row: Vec<f64> = self.feature_indices.iter().map(|&i| full_row[i]).collect();
        self.artifact.scaler.transform_row(&mut row);
        Ok(row)
    }

    /// [`LoadedModel::project_scale`] followed by prediction — full row in,
    /// prediction out.
    pub fn predict_full_row(&self, full_row: &[f64]) -> Result<Prediction, String> {
        self.try_predict_scaled_row(&self.project_scale(full_row)?)
            .map_err(|e| e.to_string())
    }

    /// Predicts from one already scaled model-input row. A one-row batch
    /// through [`LoadedModel::predict_scaled_batch`]: the compiled ensemble
    /// when the model kind has one, else the per-row walkers.
    pub fn try_predict_scaled_row(&self, row: &[f64]) -> Result<Prediction, PredictError> {
        let mut batch = self.predict_scaled_batch(&RowMatrix::from_row(row))?;
        Ok(batch.pop().expect("one row in, one prediction out"))
    }

    /// Predicts a batch of already scaled model-input rows at once —
    /// the serve-side entry point of the compiled batch path.
    ///
    /// Errors with [`PredictError::NotFitted`] on an unfitted model
    /// (mapped to HTTP 409 at the boundary) and
    /// [`PredictError::WrongWidth`] on rows narrower than the model.
    pub fn predict_scaled_batch(&self, rows: &RowMatrix) -> Result<Vec<Prediction>, PredictError> {
        let mut out = Predictions::new();
        match &self.compiled {
            Some(compiled) => compiled.predict_into(rows, &mut out)?,
            None => self.artifact.model.predict_into(rows, &mut out)?,
        }
        let names = self.artifact.scheme.class_names();
        Ok((0..out.len())
            .map(|i| {
                let class = out.class(i);
                Prediction {
                    class,
                    label: names.get(class).copied().unwrap_or("?").to_owned(),
                    scores: out.scores(i).map(<[f64]>::to_vec).unwrap_or_default(),
                }
            })
            .collect())
    }

    /// Full hot path: raw points → prediction.
    pub fn predict_points(&self, points: &[TrajectoryPoint]) -> Result<Prediction, String> {
        self.try_predict_scaled_row(&self.features_of_points(points)?)
            .map_err(|e| e.to_string())
    }
}

/// Name → model map with a default entry.
///
/// Each artifact registers under two keys: its plain name (latest version
/// wins) and its pinned `name@vN`. The first loaded name becomes the
/// default served when a request names no model.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: BTreeMap<String, Arc<LoadedModel>>,
    default_name: Option<String>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// Registers an artifact under its name and pinned version key.
    pub fn insert(&mut self, artifact: ModelArtifact) -> Result<(), String> {
        let loaded = Arc::new(LoadedModel::new(artifact)?);
        let name = loaded.artifact.name.clone();
        self.models
            .insert(loaded.versioned_key(), Arc::clone(&loaded));
        match self.models.get(&name) {
            Some(existing) if existing.artifact.version > loaded.artifact.version => {}
            _ => {
                self.models.insert(name.clone(), loaded);
            }
        }
        if self.default_name.is_none() {
            self.default_name = Some(name);
        }
        Ok(())
    }

    /// Registers an artifact under its pinned `name@vN` key *only* —
    /// the plain name keeps serving whatever it served before. Staging
    /// is how a canary version becomes addressable (requests pin
    /// `name@vN`) without receiving default traffic; [`Self::promote`]
    /// repoints the plain name atomically afterwards.
    ///
    /// Returns the pinned key. Restaging an existing version replaces it.
    pub fn insert_staged(&mut self, artifact: ModelArtifact) -> Result<String, String> {
        let loaded = Arc::new(LoadedModel::new(artifact)?);
        let key = loaded.versioned_key();
        self.models.insert(key.clone(), loaded);
        Ok(key)
    }

    /// Atomically repoints the plain `name` entry at the pinned
    /// `name@vN`, making that version the default-traffic target.
    /// Errors when the version was never inserted or staged.
    pub fn promote(&mut self, name: &str, version: u32) -> Result<(), String> {
        let key = format!("{name}@v{version}");
        let Some(loaded) = self.models.get(&key).cloned() else {
            return Err(format!("no staged artifact {key}"));
        };
        self.models.insert(name.to_owned(), loaded);
        if self.default_name.is_none() {
            self.default_name = Some(name.to_owned());
        }
        Ok(())
    }

    /// Removes a pinned `name@vN` entry — canary rollback. Refuses to
    /// remove the version the plain name currently serves.
    pub fn remove_pinned(&mut self, name: &str, version: u32) -> Result<(), String> {
        let key = format!("{name}@v{version}");
        if let Some(active) = self.models.get(name) {
            if active.artifact.version == version {
                return Err(format!(
                    "{key} is the active version of {name:?}; promote another version first"
                ));
            }
        }
        self.models
            .remove(&key)
            .map(|_| ())
            .ok_or_else(|| format!("no pinned artifact {key}"))
    }

    /// `(plain name, version)` pairs of the versions default traffic is
    /// served from — the per-shard artifact labels of `/metrics`.
    pub fn active_versions(&self) -> Vec<(String, u32)> {
        self.models
            .iter()
            .filter(|(k, _)| !k.contains("@v"))
            .map(|(k, m)| (k.clone(), m.artifact.version))
            .collect()
    }

    /// Loads one artifact file.
    pub fn load_file(&mut self, path: &Path) -> Result<(), String> {
        self.insert(ModelArtifact::load(path)?)
    }

    /// Loads every `*.json` artifact in a directory (sorted by file name,
    /// so default-model selection is deterministic).
    pub fn load_dir(&mut self, dir: &Path) -> Result<usize, String> {
        let mut paths: Vec<_> = std::fs::read_dir(dir)
            .map_err(|e| format!("reading {}: {e}", dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        paths.sort();
        let mut loaded = 0usize;
        for path in &paths {
            self.load_file(path)?;
            loaded += 1;
        }
        Ok(loaded)
    }

    /// Looks a model up by name (`None` → the default model).
    pub fn get(&self, name: Option<&str>) -> Option<Arc<LoadedModel>> {
        let key = match name {
            Some(n) => n,
            None => self.default_name.as_deref()?,
        };
        self.models.get(key).cloned()
    }

    /// All registry keys (plain and pinned), sorted.
    pub fn keys(&self) -> Vec<String> {
        self.models.keys().cloned().collect()
    }

    /// Plain model names (no `@vN` pins), sorted.
    pub fn names(&self) -> Vec<String> {
        self.models
            .keys()
            .filter(|k| !k.contains("@v"))
            .cloned()
            .collect()
    }

    /// Name of the default model, when any model is loaded.
    pub fn default_name(&self) -> Option<&str> {
        self.default_name.as_deref()
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// `true` when no model is loaded.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::TrainSpec;
    use traj_geolife::{SynthConfig, SynthDataset};

    fn artifact(name: &str, version: u32) -> ModelArtifact {
        let segs = SynthDataset::generate(&SynthConfig {
            n_users: 4,
            segments_per_user: (4, 6),
            seed: 5,
            ..SynthConfig::default()
        })
        .segments;
        let spec = TrainSpec {
            version,
            kind: traj_ml::ClassifierKind::DecisionTree,
            ..TrainSpec::paper_default(name)
        };
        ModelArtifact::train(&spec, &segs).expect("train")
    }

    #[test]
    fn registry_resolves_names_versions_and_default() {
        let mut reg = ModelRegistry::new();
        reg.insert(artifact("alpha", 1)).unwrap();
        reg.insert(artifact("alpha", 2)).unwrap();
        reg.insert(artifact("beta", 1)).unwrap();

        assert_eq!(reg.default_name(), Some("alpha"));
        assert_eq!(reg.get(None).unwrap().artifact.version, 2);
        assert_eq!(reg.get(Some("alpha")).unwrap().artifact.version, 2);
        assert_eq!(reg.get(Some("alpha@v1")).unwrap().artifact.version, 1);
        assert_eq!(reg.names(), vec!["alpha", "beta"]);
        assert!(reg.get(Some("missing")).is_none());
    }

    #[test]
    fn staged_versions_serve_only_after_promotion() {
        let mut reg = ModelRegistry::new();
        reg.insert(artifact("alpha", 1)).unwrap();

        // Staging v2 makes it pin-addressable but default traffic stays
        // on v1 until the explicit promote.
        let key = reg.insert_staged(artifact("alpha", 2)).unwrap();
        assert_eq!(key, "alpha@v2");
        assert_eq!(reg.get(None).unwrap().artifact.version, 1);
        assert_eq!(reg.get(Some("alpha@v2")).unwrap().artifact.version, 2);
        assert_eq!(reg.active_versions(), vec![("alpha".to_owned(), 1)]);

        reg.promote("alpha", 2).unwrap();
        assert_eq!(reg.get(None).unwrap().artifact.version, 2);
        assert_eq!(reg.active_versions(), vec![("alpha".to_owned(), 2)]);

        // Rollback: the now-active v2 cannot be removed, the parked v1
        // can after promoting back.
        assert!(reg.remove_pinned("alpha", 2).is_err());
        reg.promote("alpha", 1).unwrap();
        reg.remove_pinned("alpha", 2).unwrap();
        assert!(reg.get(Some("alpha@v2")).is_none());
        assert_eq!(reg.get(None).unwrap().artifact.version, 1);
        assert!(reg.promote("alpha", 9).is_err());
    }

    #[test]
    fn loaded_model_predicts_points_and_rejects_short_segments() {
        let mut reg = ModelRegistry::new();
        reg.insert(artifact("m", 1)).unwrap();
        let model = reg.get(None).unwrap();

        let segs = SynthDataset::generate(&SynthConfig::small(6)).segments;
        let seg = segs.iter().find(|s| s.len() >= MIN_SEGMENT_POINTS).unwrap();
        let pred = model.predict_points(&seg.points).expect("predict");
        assert!(pred.class < model.artifact.scheme.n_classes());
        assert_eq!(pred.scores.len(), model.artifact.scheme.n_classes());
        assert!(!pred.label.is_empty());
        let sum: f64 = pred.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);

        assert!(model.predict_points(&seg.points[..3]).is_err());
    }

    #[test]
    fn bad_feature_name_fails_to_load() {
        let mut bad = artifact("x", 1);
        bad.feature_names[0] = "not_a_feature".to_owned();
        assert!(LoadedModel::new(bad).is_err());
    }
}
