//! `loadgen` — replays synthetic GeoLife-like traffic against a running
//! `traj-serve` instance and reports throughput and latency.
//!
//! ```text
//! loadgen --addr 127.0.0.1:8080 [--connections 8] [--duration-secs 10]
//!         [--model NAME] [--batch N] [--seed S]
//! loadgen --targets 127.0.0.1:8080,127.0.0.1:8081,127.0.0.1:8082 ...
//! ```
//!
//! Each connection is a keep-alive HTTP/1.1 client cycling through
//! request bodies pre-built from synthetic segments (`--batch N` switches
//! to `/predict_batch` with N segments per request). The summary reports
//! requests/s, segment predictions/s, client-side latency percentiles,
//! the shed (429) count and the non-2xx count — the acceptance gate for
//! the serving stack. Admission-control sheds fail the run unless
//! `--allow-shed` is passed (overload experiments expect them).
//!
//! `--targets a,b,c` spreads the connections round-robin across several
//! endpoints (e.g. the shards of a `traj-cluster`, or shards next to
//! their router) and adds a per-target goodput/shed/latency split to
//! the summary, so an unbalanced or shedding member is visible at a
//! glance. `--addr` is shorthand for a single target.
//!
//! `--idle N` switches on the open-loop mode: N extra keep-alive
//! connections are opened up front, probed once (`GET /healthz`), then
//! parked for the whole run while the `--connections` workers generate
//! load — the event-driven server must hold them all without spending a
//! worker thread on any of them. A final probe on each parked
//! connection verifies it survived; `--require-idle-alive` fails the
//! run if any died. Pick a server idle timeout above the run duration
//! (`trajlib-cli serve --idle-timeout-s`), or the server's reaper will
//! (correctly) close them mid-run.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use traj_geolife::{SynthConfig, SynthDataset};
use traj_serve::http::client_request;

struct Args {
    targets: Vec<String>,
    connections: usize,
    duration: Duration,
    model: Option<String>,
    batch: usize,
    seed: u64,
    allow_shed: bool,
    idle: usize,
    require_idle_alive: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut map = HashMap::new();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = raw.iter();
    while let Some(arg) = iter.next() {
        let key = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument {arg:?}"))?;
        // Boolean flags take no value.
        if key == "allow-shed" || key == "require-idle-alive" {
            map.insert(key.to_owned(), "true".to_owned());
            continue;
        }
        let value = iter
            .next()
            .ok_or_else(|| format!("--{key} requires a value"))?;
        map.insert(key.to_owned(), value.clone());
    }
    let parsed = |key: &str, default: u64| -> Result<u64, String> {
        match map.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid --{key} {v:?}")),
        }
    };
    if map.contains_key("addr") && map.contains_key("targets") {
        return Err("--addr and --targets are mutually exclusive".to_owned());
    }
    let targets: Vec<String> = match map.get("targets") {
        Some(list) => list
            .split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(str::to_owned)
            .collect(),
        None => vec![map
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:8080".to_owned())],
    };
    if targets.is_empty() {
        return Err("--targets needs at least one endpoint".to_owned());
    }
    Ok(Args {
        targets,
        connections: parsed("connections", 8)? as usize,
        duration: Duration::from_secs(parsed("duration-secs", 10)?),
        model: map.get("model").cloned(),
        batch: parsed("batch", 0)? as usize,
        seed: parsed("seed", 42)?,
        allow_shed: map.contains_key("allow-shed"),
        idle: parsed("idle", 0)? as usize,
        require_idle_alive: map.contains_key("require-idle-alive"),
    })
}

/// Pre-builds JSON request bodies from synthetic segments.
fn build_bodies(args: &Args) -> Vec<String> {
    let synth = SynthDataset::generate(&SynthConfig::small(args.seed));
    let segments: Vec<String> = synth
        .segments
        .iter()
        .filter(|s| s.len() >= 10)
        .map(|seg| {
            let points: Vec<String> = seg
                .points
                .iter()
                .map(|p| format!("{{\"lat\":{},\"lon\":{},\"t\":{}}}", p.lat, p.lon, p.t.0))
                .collect();
            format!("[{}]", points.join(","))
        })
        .collect();
    let model_field = match &args.model {
        Some(m) => format!("\"model\":\"{m}\","),
        None => String::new(),
    };
    if args.batch == 0 {
        segments
            .iter()
            .map(|s| format!("{{{model_field}\"points\":{s}}}"))
            .collect()
    } else {
        segments
            .chunks(args.batch.max(1))
            .map(|chunk| format!("{{{model_field}\"segments\":[{}]}}", chunk.join(",")))
            .collect()
    }
}

#[derive(Default)]
struct WorkerStats {
    requests: u64,
    shed: u64,
    non_2xx: u64,
    transport_errors: u64,
    /// Client-side latency of successful (2xx) requests only — sheds are
    /// rejected in microseconds and would drag the percentiles down.
    latencies_us: Vec<u64>,
    /// Requests served per connection opened, in open order — the
    /// keep-alive reuse evidence (an event-driven server should serve a
    /// whole worker's run on one connection).
    requests_per_conn: Vec<u64>,
}

fn worker(
    addr: &str,
    path: &str,
    bodies: &[String],
    offset: usize,
    stop: &AtomicBool,
) -> WorkerStats {
    let mut stats = WorkerStats::default();
    let mut client = None;
    let mut on_current_conn = 0u64;
    let mut i = offset;
    while !stop.load(Ordering::Relaxed) {
        if client.is_none() {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                    client = Some(BufReader::new(stream));
                    stats.requests_per_conn.push(0);
                    on_current_conn = 0;
                }
                Err(_) => {
                    stats.transport_errors += 1;
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            }
        }
        let body = &bodies[i % bodies.len()];
        i += 1;
        let started = Instant::now();
        match client_request(
            client.as_mut().expect("connected"),
            "POST",
            path,
            Some(body),
        ) {
            Ok((status, _)) => {
                stats.requests += 1;
                on_current_conn += 1;
                *stats.requests_per_conn.last_mut().expect("conn pushed") = on_current_conn;
                if (200..300).contains(&status) {
                    stats
                        .latencies_us
                        .push(started.elapsed().as_micros() as u64);
                } else if status == 429 {
                    stats.shed += 1;
                } else {
                    stats.non_2xx += 1;
                }
            }
            Err(_) => {
                stats.transport_errors += 1;
                client = None; // Reconnect on the next iteration.
            }
        }
    }
    stats
}

/// The parked keep-alive herd of `--idle N`: opened and probed before
/// the load starts, then left silent until the final liveness probe.
struct IdleHerd {
    conns: Vec<BufReader<TcpStream>>,
    open_failures: usize,
}

fn open_idle_herd(targets: &[String], n: usize) -> IdleHerd {
    let mut herd = IdleHerd {
        conns: Vec::with_capacity(n),
        open_failures: 0,
    };
    for c in 0..n {
        let addr = &targets[c % targets.len()];
        let opened = TcpStream::connect(addr).ok().and_then(|stream| {
            let _ = stream.set_nodelay(true);
            let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
            let mut conn = BufReader::new(stream);
            match client_request(&mut conn, "GET", "/healthz", None) {
                Ok((status, _)) if (200..300).contains(&status) => Some(conn),
                _ => None,
            }
        });
        match opened {
            Some(conn) => herd.conns.push(conn),
            None => herd.open_failures += 1,
        }
    }
    herd
}

/// Probes every parked connection once more; returns how many answered
/// on the same connection (= survived the whole run).
fn probe_idle_herd(herd: &mut IdleHerd) -> usize {
    let mut alive = 0usize;
    for conn in &mut herd.conns {
        if matches!(
            client_request(conn, "GET", "/healthz", None),
            Ok((status, _)) if (200..300).contains(&status)
        ) {
            alive += 1;
        }
    }
    alive
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: loadgen --addr HOST:PORT | --targets A,B,C [--connections N] \
                 [--duration-secs S] [--model NAME] [--batch N] [--seed S] [--allow-shed] \
                 [--idle N] [--require-idle-alive]"
            );
            return ExitCode::FAILURE;
        }
    };
    let bodies = Arc::new(build_bodies(&args));
    if bodies.is_empty() {
        eprintln!("error: no request bodies generated");
        return ExitCode::FAILURE;
    }
    let path = if args.batch == 0 {
        "/predict"
    } else {
        "/predict_batch"
    };
    let segments_per_request = args.batch.max(1) as u64;

    println!(
        "loadgen: {} connections × {}s against {}{} ({} distinct bodies)",
        args.connections,
        args.duration.as_secs(),
        if args.targets.len() == 1 {
            format!("http://{}", args.targets[0])
        } else {
            format!("{} targets", args.targets.len())
        },
        path,
        bodies.len()
    );

    // The idle herd opens (and is probed) before the load starts, so
    // every parked connection rides out the whole run.
    let mut herd = open_idle_herd(&args.targets, args.idle);
    if args.idle > 0 {
        println!(
            "idle herd:         {:>10} open ({} failed to open)",
            herd.conns.len(),
            herd.open_failures
        );
    }

    // Connections spread round-robin across the targets.
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let handles: Vec<_> = (0..args.connections.max(1))
        .map(|c| {
            let target = c % args.targets.len();
            let addr = args.targets[target].clone();
            let bodies = Arc::clone(&bodies);
            let stop = Arc::clone(&stop);
            let path = path.to_owned();
            (
                target,
                std::thread::spawn(move || worker(&addr, &path, &bodies, c * 7, &stop)),
            )
        })
        .collect();

    std::thread::sleep(args.duration);
    stop.store(true, Ordering::Relaxed);
    let mut all = WorkerStats::default();
    let mut per_target: Vec<WorkerStats> = args
        .targets
        .iter()
        .map(|_| WorkerStats::default())
        .collect();
    for (target, handle) in handles {
        let stats = handle.join().expect("worker panicked");
        all.requests += stats.requests;
        all.shed += stats.shed;
        all.non_2xx += stats.non_2xx;
        all.transport_errors += stats.transport_errors;
        all.latencies_us.extend(stats.latencies_us.iter().copied());
        all.requests_per_conn
            .extend(stats.requests_per_conn.iter().copied());
        let bucket = &mut per_target[target];
        bucket.requests += stats.requests;
        bucket.shed += stats.shed;
        bucket.non_2xx += stats.non_2xx;
        bucket.transport_errors += stats.transport_errors;
        bucket.latencies_us.extend(stats.latencies_us);
    }
    let elapsed = started.elapsed().as_secs_f64();
    all.latencies_us.sort_unstable();

    let rps = all.requests as f64 / elapsed;
    let goodput = all.latencies_us.len() as f64 / elapsed;
    println!("requests:          {:>10}", all.requests);
    println!("throughput:        {rps:>10.1} req/s");
    println!("goodput (2xx):     {goodput:>10.1} req/s");
    println!(
        "predictions:       {:>10.1} segments/s",
        goodput * segments_per_request as f64
    );
    println!(
        "latency (2xx):     p50 {} µs   p95 {} µs   p99 {} µs",
        percentile(&all.latencies_us, 0.50),
        percentile(&all.latencies_us, 0.95),
        percentile(&all.latencies_us, 0.99)
    );
    println!("shed (429):        {:>10}", all.shed);
    println!("non-2xx (other):   {:>10}", all.non_2xx);
    println!("transport errors:  {:>10}", all.transport_errors);

    // Keep-alive reuse: with an event-driven server every worker should
    // hold exactly one connection for the whole run.
    if !all.requests_per_conn.is_empty() {
        let min = all.requests_per_conn.iter().min().copied().unwrap_or(0);
        let max = all.requests_per_conn.iter().max().copied().unwrap_or(0);
        let mean =
            all.requests_per_conn.iter().sum::<u64>() as f64 / all.requests_per_conn.len() as f64;
        println!(
            "connections:       {:>10} opened   requests/conn min {min} mean {mean:.1} max {max}",
            all.requests_per_conn.len()
        );
    }

    // Final liveness probe over the parked herd: each survivor answered
    // twice on one connection, bracketing the whole run.
    let mut idle_died = 0usize;
    if args.idle > 0 {
        let alive = probe_idle_herd(&mut herd);
        idle_died = herd.conns.len() - alive + herd.open_failures;
        println!(
            "idle herd:         {:>10} alive after {:.1}s ({} died)",
            alive, elapsed, idle_died
        );
    }

    // Per-target split: an unbalanced or shedding member stands out.
    if args.targets.len() > 1 {
        println!("per-target:");
        for (target, stats) in per_target.iter_mut().enumerate() {
            stats.latencies_us.sort_unstable();
            println!(
                "  {:<24} goodput {:>8.1} req/s   shed {:>6}   non-2xx {:>4}   \
                 transport {:>4}   p95 {} µs",
                args.targets[target],
                stats.latencies_us.len() as f64 / elapsed,
                stats.shed,
                stats.non_2xx,
                stats.transport_errors,
                percentile(&stats.latencies_us, 0.95),
            );
        }
    }

    if all.requests == 0 || all.non_2xx > 0 || (all.shed > 0 && !args.allow_shed) {
        return ExitCode::FAILURE;
    }
    if args.require_idle_alive && idle_died > 0 {
        eprintln!("error: {idle_died} idle connections died (--require-idle-alive)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
