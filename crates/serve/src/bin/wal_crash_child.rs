//! `wal_crash_child` — the ingesting half of the crash-consistency
//! test (`tests/wal_crash.rs`).
//!
//! Ingests a deterministic point stream into a WAL-backed
//! [`traj_stream::StreamEngine`] and prints `round N` after every
//! interleaved batch round. The parent test SIGKILLs this process
//! mid-ingest, recovers a fresh engine from the WAL directory, and
//! bit-compares the recovered state against an uninterrupted reference
//! fed the same prefix. The stream shape (users, points per user,
//! batch size, the point generator) is part of the test contract and
//! must stay in lockstep with `tests/wal_crash.rs`.

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use traj_geo::{Timestamp, TrajectoryPoint};
use traj_stream::{recover, StreamConfig, StreamEngine};
use traj_wal::{FsyncPolicy, SnapshotStore, Wal, WalConfig};

/// Stream shape shared with `tests/wal_crash.rs`.
const USERS: u32 = 64;
const POINTS_PER_USER: u32 = 400;
const BATCH: u32 = 7;

/// Deterministic per-(user, index) point; duplicated verbatim in
/// `tests/wal_crash.rs` so the parent can regenerate any prefix.
fn crash_point(user: u32, i: u32) -> TrajectoryPoint {
    let h = (user as u64 + 1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(i as u64)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let jitter = |shift: u32| ((h >> shift) & 0xFFFF) as f64 / 65_536.0;
    TrajectoryPoint::new(
        39.0 + user as f64 * 0.01 + i as f64 * 1e-4 + jitter(16) * 1e-3,
        116.0 + i as f64 * 1e-4 + jitter(32) * 1e-3,
        Timestamp(i as i64 + 1),
    )
}

/// Small `exact_cap` so summaries leave the exact phase early and the
/// crash lands squarely on live P² estimator state.
fn crash_config() -> StreamConfig {
    StreamConfig {
        exact_cap: 16,
        n_shards: 4,
        ..StreamConfig::default()
    }
}

fn main() -> ExitCode {
    let dir = match std::env::args().nth(1) {
        Some(d) => std::path::PathBuf::from(d),
        None => {
            eprintln!("usage: wal_crash_child WAL_ROOT_DIR");
            return ExitCode::FAILURE;
        }
    };
    let engine = Arc::new(StreamEngine::new(crash_config()));
    let store = match SnapshotStore::open(dir.join("snap")) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: snapshot dir: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wal = match Wal::open(WalConfig {
        fsync: FsyncPolicy::Always,
        ..WalConfig::new(dir.join("wal"))
    }) {
        Ok((wal, _report)) => Arc::new(wal),
        Err(e) => {
            eprintln!("error: wal open: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = recover(&engine, &store, &wal) {
        eprintln!("error: recover: {e}");
        return ExitCode::FAILURE;
    }
    engine.attach_wal(Arc::clone(&wal));

    let rounds = POINTS_PER_USER.div_ceil(BATCH);
    let mut stdout = std::io::stdout();
    for round in 0..rounds {
        let start = round * BATCH;
        let end = (start + BATCH).min(POINTS_PER_USER);
        for user in 0..USERS {
            let batch: Vec<TrajectoryPoint> = (start..end).map(|i| crash_point(user, i)).collect();
            let report = engine.ingest(user, &batch, false);
            if let Some(msg) = report.wal_error {
                eprintln!("error: wal append: {msg}");
                return ExitCode::from(2);
            }
        }
        // The parent waits for these lines to know how far ingestion
        // got before it pulls the plug.
        println!("round {round}");
        let _ = stdout.flush();
    }
    println!("done");
    ExitCode::SUCCESS
}
