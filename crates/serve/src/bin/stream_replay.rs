//! `stream_replay` — replays a GeoLife-like point stream against a
//! running `traj-serve` instance through `POST /ingest`, in global
//! timestamp order, and reports end-to-end ingestion throughput.
//!
//! ```text
//! stream_replay --addr 127.0.0.1:8080 [--connections 4] [--chunk 64]
//!               [--model NAME] [--seed S] [--repeat N]
//! ```
//!
//! The synthetic dataset's points are merged across users into one
//! globally time-ordered stream (what an ingestion gateway would see),
//! then cut into per-user chunks of at most `--chunk` points. Each user
//! is pinned to one connection so the per-user point order the engine
//! requires is preserved; connections replay their chunk sequence as
//! fast as the server accepts it and finish with one `flush` per user.
//! The summary reports points/s, predictions received, request latency
//! percentiles and the non-2xx count — the acceptance gate for the
//! streaming stack (≥ 20 000 points/s, zero non-2xx).

use std::collections::HashMap;
use std::io::BufReader;
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};
use traj_geolife::{SynthConfig, SynthDataset};
use traj_serve::http::client_request;

struct Args {
    addr: String,
    connections: usize,
    chunk: usize,
    model: Option<String>,
    seed: u64,
    /// Replays the dataset N times (with shifted user ids) to lengthen
    /// the run without changing the per-request shape.
    repeat: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut map = HashMap::new();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = raw.iter();
    while let Some(arg) = iter.next() {
        let key = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument {arg:?}"))?;
        let value = iter
            .next()
            .ok_or_else(|| format!("--{key} requires a value"))?;
        map.insert(key.to_owned(), value.clone());
    }
    let parsed = |key: &str, default: u64| -> Result<u64, String> {
        match map.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid --{key} {v:?}")),
        }
    };
    Ok(Args {
        addr: map
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:8080".to_owned()),
        connections: parsed("connections", 4)?.max(1) as usize,
        chunk: parsed("chunk", 64)?.max(1) as usize,
        model: map.get("model").cloned(),
        seed: parsed("seed", 42)?,
        repeat: parsed("repeat", 1)?.max(1) as usize,
    })
}

/// A request body destined for one connection, in send order.
struct Plan {
    /// `bodies[c]` is connection `c`'s ordered request sequence; the
    /// flag marks final per-user `flush` requests, whose failure means
    /// a segment close (and, on a durable server, its durability) was
    /// never acknowledged.
    bodies: Vec<Vec<(String, bool)>>,
    total_points: usize,
}

/// Merges the dataset into one global time-ordered stream and cuts it
/// into per-user `/ingest` bodies with user→connection affinity.
fn build_plan(args: &Args) -> Plan {
    let synth = SynthDataset::generate(&SynthConfig::small(args.seed));
    // (t, user, lat, lon), globally ordered. Repeats shift user ids so
    // sessions stay independent.
    let mut events: Vec<(i64, u32, f64, f64)> = Vec::new();
    for r in 0..args.repeat {
        let user_shift = (r as u32) * 10_000;
        for seg in &synth.segments {
            for p in &seg.points {
                events.push((p.t.0, seg.user + user_shift, p.lat, p.lon));
            }
        }
    }
    events.sort_by_key(|&(t, user, _, _)| (t, user));

    let model_field = match &args.model {
        Some(m) => format!("\"model\":\"{m}\","),
        None => String::new(),
    };
    let mut bodies: Vec<Vec<(String, bool)>> = vec![Vec::new(); args.connections];
    let mut buffers: HashMap<u32, Vec<String>> = HashMap::new();
    let mut total_points = 0usize;
    let flush_body = |user: u32, points: &mut Vec<String>, flush: bool| -> String {
        let flush_field = if flush { ",\"flush\":true" } else { "" };
        let body = format!(
            "{{{model_field}\"user\":{user},\"points\":[{}]{flush_field}}}",
            points.join(",")
        );
        points.clear();
        body
    };
    for (t, user, lat, lon) in events {
        let buffer = buffers.entry(user).or_default();
        buffer.push(format!("{{\"lat\":{lat},\"lon\":{lon},\"t\":{t}}}"));
        total_points += 1;
        if buffer.len() >= args.chunk {
            let body = flush_body(user, buffer, false);
            bodies[user as usize % args.connections].push((body, false));
        }
    }
    // Tail chunks, then one flush per user to close open segments.
    let mut users: Vec<u32> = buffers.keys().copied().collect();
    users.sort_unstable();
    for user in users {
        let buffer = buffers.get_mut(&user).expect("listed");
        let body = flush_body(user, buffer, true);
        bodies[user as usize % args.connections].push((body, true));
    }
    Plan {
        bodies,
        total_points,
    }
}

#[derive(Default)]
struct WorkerStats {
    requests: u64,
    non_2xx: u64,
    transport_errors: u64,
    /// Final per-user `flush` requests that did not get a 2xx — the
    /// server never acknowledged closing (and durably recording) the
    /// stream's last segment.
    flush_failures: u64,
    predictions: u64,
    latencies_us: Vec<u64>,
}

fn worker(addr: &str, bodies: &[(String, bool)]) -> WorkerStats {
    let mut stats = WorkerStats::default();
    let mut client = None;
    for (body, is_flush) in bodies {
        if client.is_none() {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                    client = Some(BufReader::new(stream));
                }
                Err(_) => {
                    stats.transport_errors += 1;
                    if *is_flush {
                        stats.flush_failures += 1;
                    }
                    continue; // Skips the body: counted as transport error.
                }
            }
        }
        let started = Instant::now();
        match client_request(
            client.as_mut().expect("connected"),
            "POST",
            "/ingest",
            Some(body),
        ) {
            Ok((status, response)) => {
                stats.requests += 1;
                stats
                    .latencies_us
                    .push(started.elapsed().as_micros() as u64);
                if (200..300).contains(&status) {
                    stats.predictions += response.matches("\"reason\":").count() as u64;
                } else {
                    stats.non_2xx += 1;
                    if *is_flush {
                        stats.flush_failures += 1;
                    }
                }
            }
            Err(_) => {
                stats.transport_errors += 1;
                if *is_flush {
                    stats.flush_failures += 1;
                }
                client = None;
            }
        }
    }
    stats
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: stream_replay --addr HOST:PORT [--connections N] [--chunk N] \
                 [--model NAME] [--seed S] [--repeat N]"
            );
            return ExitCode::FAILURE;
        }
    };
    let plan = build_plan(&args);
    if plan.total_points == 0 {
        eprintln!("error: no points generated");
        return ExitCode::FAILURE;
    }
    let requests: usize = plan.bodies.iter().map(Vec::len).sum();
    println!(
        "stream_replay: {} points in {} requests over {} connections against http://{}/ingest",
        plan.total_points, requests, args.connections, args.addr
    );

    let started = Instant::now();
    let handles: Vec<_> = plan
        .bodies
        .into_iter()
        .map(|bodies| {
            let addr = args.addr.clone();
            std::thread::spawn(move || worker(&addr, &bodies))
        })
        .collect();
    let mut all = WorkerStats::default();
    for handle in handles {
        let stats = handle.join().expect("worker panicked");
        all.requests += stats.requests;
        all.non_2xx += stats.non_2xx;
        all.transport_errors += stats.transport_errors;
        all.flush_failures += stats.flush_failures;
        all.predictions += stats.predictions;
        all.latencies_us.extend(stats.latencies_us);
    }
    let elapsed = started.elapsed().as_secs_f64();
    all.latencies_us.sort_unstable();

    let pps = plan.total_points as f64 / elapsed;
    println!("points:            {:>10}", plan.total_points);
    println!("throughput:        {pps:>10.1} points/s");
    println!("requests:          {:>10}", all.requests);
    println!("predictions:       {:>10}", all.predictions);
    println!(
        "request latency:   p50 {} µs   p95 {} µs   p99 {} µs",
        percentile(&all.latencies_us, 0.50),
        percentile(&all.latencies_us, 0.95),
        percentile(&all.latencies_us, 0.99)
    );
    println!("non-2xx:           {:>10}", all.non_2xx);
    println!("transport errors:  {:>10}", all.transport_errors);
    println!("flush failures:    {:>10}", all.flush_failures);

    if all.flush_failures > 0 {
        eprintln!(
            "error: {} final flush request(s) were not acknowledged — open segments \
             may be lost or not durable",
            all.flush_failures
        );
        return ExitCode::FAILURE;
    }
    if all.requests == 0 || all.non_2xx > 0 || all.transport_errors > 0 || all.predictions == 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
