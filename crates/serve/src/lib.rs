//! # traj-serve
//!
//! Online transportation-mode inference over the trained classifiers of
//! the Etemad et al. (2019) reproduction — the "deploy the model" half
//! the paper's offline evaluation stops short of.
//!
//! The crate is dependency-light by construction (the workspace builds
//! offline): the HTTP server sits directly on `std::net::TcpListener`
//! with a fixed worker pool, and all JSON goes through the workspace's
//! serde stack.
//!
//! * [`artifact`] — the trained-model bundle: classifier + selected
//!   feature names + Min–Max parameters + label scheme, one JSON file.
//! * [`registry`] — name → versioned model map with resolved feature
//!   projections; the per-request hot path.
//! * [`featurize`] — steps 2–3 of the paper's pipeline as a pure
//!   function of one segment, shared by training and serving.
//! * [`server`] — `POST /predict`, `POST /predict_batch`,
//!   `GET /healthz`, `GET /metrics`.
//! * [`batch`] — micro-batching (flush on size or delay) behind
//!   `/predict_batch`.
//! * [`metrics`] — lock-free counters and latency/batch histograms.
//! * [`http`] — minimal HTTP/1.1 framing with body-size caps, plus the
//!   blocking client the load generator and tests use.
//!
//! ```no_run
//! use traj_serve::artifact::{ModelArtifact, TrainSpec};
//! use traj_serve::registry::ModelRegistry;
//! use traj_serve::server::{serve, ServerConfig};
//! use traj_geolife::{SynthConfig, SynthDataset};
//!
//! let segments = SynthDataset::generate(&SynthConfig::small(7)).segments;
//! let artifact = ModelArtifact::train(&TrainSpec::paper_default("rf"), &segments).unwrap();
//! let mut registry = ModelRegistry::new();
//! registry.insert(artifact).unwrap();
//! let handle = serve("127.0.0.1:8080", registry, ServerConfig::default()).unwrap();
//! println!("serving on {}", handle.addr());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod batch;
pub mod featurize;
pub mod http;
pub mod metrics;
pub mod registry;
pub mod server;

pub use artifact::{ModelArtifact, TrainSpec};
pub use registry::{LoadedModel, ModelRegistry, Prediction};
pub use server::{serve, DurabilityConfig, ServerConfig, ServerHandle};
