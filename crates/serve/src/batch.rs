//! SLO-aware micro-batching: concurrent prediction jobs are coalesced
//! into batches by a pluggable scheduling policy, behind bounded-queue
//! admission control.
//!
//! Feature extraction stays on the request workers (it is per-segment and
//! embarrassingly parallel); only the scaled model-input rows flow through
//! the batcher. A flush groups the queued jobs by model and pushes each
//! group through [`LoadedModel::predict_scaled_batch`] — one compiled
//! level-synchronous traversal per model instead of a per-row walk. Each
//! job carries a reply channel; callers block on it.
//!
//! Two policies are available (see [`SchedulerPolicy`]), both proven in
//! the `traj-sim` discrete-event simulator before landing here:
//!
//! * **Fixed** — the classic `max_batch`/`max_delay` rule. Under
//!   closed-loop load below `max_batch` concurrency it is *wait-bound*:
//!   every batch pays the full `max_delay`, capping throughput at
//!   roughly `connections / max_delay` regardless of CPU headroom.
//! * **Adaptive** — deadline-driven (Nexus-style): never wait while the
//!   executor is idle, size each flush from queue depth, and cap it so
//!   the oldest job's predicted completion (from an online EWMA
//!   service-time model) still meets its `slo` deadline. Batch size
//!   self-regulates: under load, jobs accumulate *during* the previous
//!   flush, so batches grow exactly when batching pays.
//!
//! Admission control sheds work *before* it queues: when the queue holds
//! `queue_cap` jobs, interactive submissions are rejected with a
//! [`ShedError`] carrying a drain-time `Retry-After` estimate; bulk
//! submissions are rejected at half the cap so interactive headroom
//! survives a bulk flood; close-time jobs (`/ingest`) are never shed —
//! the stream engine already consumed the segment, so the prediction is
//! paid-for work. Every admitted job is answered exactly once, including
//! across shutdown: jobs still queued when the batcher stops receive
//! [`PredictError::ShuttingDown`] instead of a dropped channel.

use crate::metrics::ServeMetrics;
use crate::registry::{LoadedModel, Prediction};
use std::collections::VecDeque;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use traj_ml::{PredictError, RowMatrix};
use traj_sim::adaptive_batch_size;

/// Request priority class, highest first. Mirrors
/// `traj_sim::scheduler::Class` — the simulator's traffic classes are
/// these, under the same drain and shed rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// `/predict` — a user is waiting.
    Interactive = 0,
    /// `/ingest` close-time predictions — work already paid for.
    Close = 1,
    /// `/predict_batch` — bulk scoring.
    Bulk = 2,
}

impl Priority {
    /// All classes, highest priority first (drain order).
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Close, Priority::Bulk];

    /// Display name used in metrics.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Close => "close",
            Priority::Bulk => "bulk",
        }
    }
}

/// Which batching policy the flush thread runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// Flush on size or age — the pre-SLO default, kept as the
    /// benchmark baseline and for explicit opt-in.
    Fixed {
        /// Flush when this many jobs are queued.
        max_batch: usize,
        /// Flush when the oldest *visible* job is this old.
        max_delay: Duration,
    },
    /// Deadline-driven adaptive batching (the default).
    Adaptive {
        /// Hard flush-size cap (bounds scratch memory).
        max_batch: usize,
    },
}

impl SchedulerPolicy {
    /// The policy's flush-size cap.
    pub fn max_batch(&self) -> usize {
        match *self {
            SchedulerPolicy::Fixed { max_batch, .. } => max_batch,
            SchedulerPolicy::Adaptive { max_batch } => max_batch,
        }
    }

    /// Display name.
    pub fn as_str(&self) -> &'static str {
        match self {
            SchedulerPolicy::Fixed { .. } => "fixed",
            SchedulerPolicy::Adaptive { .. } => "adaptive",
        }
    }
}

/// Scheduling configuration of the [`MicroBatcher`].
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// The batching policy.
    pub policy: SchedulerPolicy,
    /// Per-job scheduling deadline, measured from admission; the
    /// adaptive policy sizes batches to hold it and `/metrics` counts
    /// misses against it.
    pub slo: Duration,
    /// Admission cap on queued jobs; 0 disables shedding.
    pub queue_cap: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            policy: SchedulerPolicy::Adaptive { max_batch: 128 },
            slo: Duration::from_millis(50),
            queue_cap: 1024,
        }
    }
}

impl BatchConfig {
    /// The pre-SLO fixed policy (`max_batch` = 32, `max_delay` = 2 ms)
    /// with this config's SLO and cap — the benchmark baseline.
    pub fn fixed_baseline() -> BatchConfig {
        BatchConfig {
            policy: SchedulerPolicy::Fixed {
                max_batch: 32,
                max_delay: Duration::from_millis(2),
            },
            ..BatchConfig::default()
        }
    }
}

/// An admission rejection: the queue is full for this priority class.
/// Maps to HTTP 429 with a `Retry-After` derived from `retry_after`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedError {
    /// Estimated time until the queue drains below the cap.
    pub retry_after: Duration,
}

/// One queued prediction.
struct Job {
    model: Arc<LoadedModel>,
    row: Vec<f64>,
    reply: SyncSender<Result<Prediction, PredictError>>,
    enqueued: Instant,
    deadline: Instant,
}

/// Online EWMA estimate of flush duration per power-of-two batch-size
/// bucket — the serving twin of the simulator's fitted affine
/// [`traj_sim::ServiceModel`], learned on the fly instead of offline.
#[derive(Debug, Clone)]
struct ServiceEstimator {
    /// `ewma_ns[i]` covers batch sizes in `(2^(i-1), 2^i]`.
    ewma_ns: [f64; Self::BUCKETS],
    seen: [bool; Self::BUCKETS],
}

impl ServiceEstimator {
    const BUCKETS: usize = 13; // batch sizes up to 4096
    const ALPHA: f64 = 0.3;

    fn new() -> ServiceEstimator {
        ServiceEstimator {
            ewma_ns: [0.0; Self::BUCKETS],
            seen: [false; Self::BUCKETS],
        }
    }

    fn bucket(batch: usize) -> usize {
        let b = batch.max(1);
        if b == 1 {
            0
        } else {
            ((b - 1).ilog2() as usize + 1).min(Self::BUCKETS - 1)
        }
    }

    fn observe(&mut self, batch: usize, dur_ns: f64) {
        let i = Self::bucket(batch);
        self.ewma_ns[i] = if self.seen[i] {
            (1.0 - Self::ALPHA) * self.ewma_ns[i] + Self::ALPHA * dur_ns
        } else {
            dur_ns
        };
        self.seen[i] = true;
    }

    /// Predicted flush duration for `batch` rows, ns. Unseen buckets
    /// extrapolate from the nearest observed one (scaling up per-row
    /// from below, taking the pessimistic value from above); with no
    /// observations at all the estimate is 0 — optimistically large
    /// first batches, corrected after one flush.
    fn estimate_ns(&self, batch: usize) -> u64 {
        let i = Self::bucket(batch);
        if self.seen[i] {
            return self.ewma_ns[i] as u64;
        }
        for d in 1..Self::BUCKETS {
            if i >= d && self.seen[i - d] {
                let scale = batch.max(1) as f64 / (1usize << (i - d)) as f64;
                return (self.ewma_ns[i - d] * scale) as u64;
            }
            if i + d < Self::BUCKETS && self.seen[i + d] {
                return self.ewma_ns[i + d] as u64;
            }
        }
        0
    }

    /// Estimated time to drain `depth` queued jobs in `max_batch`-sized
    /// flushes — the `Retry-After` hint on sheds.
    fn drain_estimate(&self, depth: usize, max_batch: usize) -> Duration {
        let per = self.estimate_ns(depth.min(max_batch));
        let flushes = depth.div_ceil(max_batch.max(1)) as u64;
        let ns = (per * flushes).clamp(1_000_000, 2_000_000_000);
        Duration::from_nanos(ns)
    }
}

/// Queue state shared between submitters and the flush thread.
struct Inner {
    /// One FIFO per priority class, drained highest class first.
    queues: [VecDeque<Job>; 3],
    /// Total queued jobs across classes.
    depth: usize,
    shutdown: bool,
    est: ServiceEstimator,
}

struct Shared {
    inner: Mutex<Inner>,
    /// Signals the flush thread: new job, or shutdown.
    cond: Condvar,
}

/// Handle to the batching thread. Dropping it stops the thread; queued
/// jobs are answered with [`PredictError::ShuttingDown`], never dropped.
pub struct MicroBatcher {
    shared: Arc<Shared>,
    config: BatchConfig,
    metrics: Arc<ServeMetrics>,
    worker: Option<JoinHandle<()>>,
}

impl MicroBatcher {
    /// Spawns the batching thread.
    pub fn new(config: BatchConfig, metrics: Arc<ServeMetrics>) -> MicroBatcher {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                depth: 0,
                shutdown: false,
                est: ServiceEstimator::new(),
            }),
            cond: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let thread_metrics = Arc::clone(&metrics);
        let worker = std::thread::Builder::new()
            .name("traj-serve-batcher".to_owned())
            .spawn(move || batch_loop(&thread_shared, config, &thread_metrics))
            .expect("spawn batcher thread");
        MicroBatcher {
            shared,
            config,
            metrics,
            worker: Some(worker),
        }
    }

    /// Enqueues one scaled row for `model` at `priority`.
    ///
    /// On admission the prediction arrives on the returned channel after
    /// the batch it joins is flushed (a [`PredictError::ShuttingDown`]
    /// reply if the batcher stops first). A full queue rejects
    /// synchronously with [`ShedError`] — nothing was enqueued and no
    /// reply will arrive.
    pub fn submit(
        &self,
        model: Arc<LoadedModel>,
        row: Vec<f64>,
        priority: Priority,
    ) -> Result<Receiver<Result<Prediction, PredictError>>, ShedError> {
        let (reply, result) = sync_channel(1);
        let mut inner = self.shared.inner.lock().expect("batcher lock");
        if inner.shutdown {
            // Typed terminal reply instead of a dropped channel.
            self.metrics
                .scheduler
                .shutdown_rejects
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let _ = reply.send(Err(PredictError::ShuttingDown));
            return Ok(result);
        }
        let cap = self.config.queue_cap;
        if cap > 0 {
            let limit = match priority {
                Priority::Interactive => Some(cap),
                // Never shed close-time jobs: the stream engine already
                // consumed the segment.
                Priority::Close => None,
                Priority::Bulk => Some((cap / 2).max(1)),
            };
            if limit.is_some_and(|l| inner.depth >= l) {
                let retry_after = inner
                    .est
                    .drain_estimate(inner.depth, self.config.policy.max_batch().max(1));
                self.metrics.scheduler.record_shed(priority);
                return Err(ShedError { retry_after });
            }
        }
        let now = Instant::now();
        inner.queues[priority as usize].push_back(Job {
            model,
            row,
            reply,
            enqueued: now,
            deadline: now + self.config.slo,
        });
        inner.depth += 1;
        drop(inner);
        self.shared.cond.notify_one();
        Ok(result)
    }

    /// Jobs currently queued (all classes).
    pub fn queue_depth(&self) -> usize {
        self.shared.inner.lock().expect("batcher lock").depth
    }

    /// Begins shutdown without waiting for the worker: queued jobs are
    /// answered with [`PredictError::ShuttingDown`] and later submits
    /// are rejected the same way. `Drop` joins the worker thread.
    pub fn shutdown(&self) {
        self.shared.inner.lock().expect("batcher lock").shutdown = true;
        self.shared.cond.notify_all();
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

fn batch_loop(shared: &Shared, config: BatchConfig, metrics: &ServeMetrics) {
    let mut batch: Vec<Job> = Vec::new();
    let mut scratch = FlushScratch::default();
    // Fixed policy: absolute flush time, armed when the thread first
    // sees a job with the executor idle (this thread *is* the executor,
    // so "first sees" is exactly the old recv()-then-arm semantics).
    let mut armed: Option<Instant> = None;

    let mut inner = shared.inner.lock().expect("batcher lock");
    loop {
        if inner.shutdown {
            // Answer everything still queued; exactly-once, typed.
            for class in &mut inner.queues {
                for job in class.drain(..) {
                    let _ = job.reply.send(Err(PredictError::ShuttingDown));
                }
            }
            inner.depth = 0;
            return;
        }
        if inner.depth == 0 {
            armed = None;
            inner = shared.cond.wait(inner).expect("batcher lock");
            continue;
        }

        let now = Instant::now();
        let take = match config.policy {
            SchedulerPolicy::Fixed {
                max_batch,
                max_delay,
            } => {
                let max_batch = max_batch.max(1);
                if inner.depth >= max_batch {
                    armed = None;
                    max_batch
                } else {
                    let flush_at = *armed.get_or_insert(now + max_delay);
                    if now < flush_at {
                        let (guard, _) = shared
                            .cond
                            .wait_timeout(inner, flush_at - now)
                            .expect("batcher lock");
                        inner = guard;
                        continue; // re-check depth / shutdown / clock
                    }
                    armed = None;
                    inner.depth
                }
            }
            SchedulerPolicy::Adaptive { max_batch } => {
                let headroom = Priority::ALL
                    .iter()
                    .filter_map(|&p| inner.queues[p as usize].front())
                    .map(|job| job.deadline)
                    .min()
                    .expect("depth > 0")
                    .saturating_duration_since(now);
                adaptive_batch_size(inner.depth, max_batch, headroom.as_nanos() as u64, |b| {
                    inner.est.estimate_ns(b)
                })
            }
        };

        // Pop `take` jobs in priority order, recording queue wait.
        for class in Priority::ALL {
            while batch.len() < take {
                let Some(job) = inner.queues[class as usize].pop_front() else {
                    break;
                };
                metrics
                    .scheduler
                    .queue_wait_us
                    .record(now.saturating_duration_since(job.enqueued).as_micros() as u64);
                batch.push(job);
            }
        }
        inner.depth -= batch.len();
        drop(inner); // flush outside the lock: submits stay non-blocking

        metrics.batch_size.record(batch.len() as u64);
        let rows = batch.len();
        let started = Instant::now();
        flush(&batch, &mut scratch, metrics);
        let elapsed = started.elapsed();
        let done = started + elapsed;
        let misses = batch.iter().filter(|j| done > j.deadline).count();
        if misses > 0 {
            metrics
                .scheduler
                .deadline_misses
                .fetch_add(misses as u64, std::sync::atomic::Ordering::Relaxed);
        }
        batch.clear();

        inner = shared.inner.lock().expect("batcher lock");
        inner.est.observe(rows, elapsed.as_nanos() as f64);
    }
}

/// Per-flush scratch, reused across flushes so the steady state
/// allocates nothing: one row matrix (re-armed per group via
/// [`RowMatrix::reset`]) and the model-grouping table.
#[derive(Default)]
struct FlushScratch {
    rows: RowMatrix,
    groups: Vec<(Arc<LoadedModel>, Vec<usize>)>,
}

/// Answers every job of one flush: jobs are grouped by model (a batch
/// usually holds one, `Arc::ptr_eq` keeps grouping O(groups·jobs)), each
/// group runs as one call to [`LoadedModel::predict_scaled_batch`], and
/// per-group errors fan back out to every affected reply channel.
fn flush(batch: &[Job], scratch: &mut FlushScratch, metrics: &ServeMetrics) {
    scratch.groups.clear();
    for (i, job) in batch.iter().enumerate() {
        match scratch
            .groups
            .iter_mut()
            .find(|(model, _)| Arc::ptr_eq(model, &job.model))
        {
            Some((_, ixs)) => ixs.push(i),
            None => scratch.groups.push((Arc::clone(&job.model), vec![i])),
        }
    }

    for (model, ixs) in &scratch.groups {
        let width = model.input_width();
        let (ixs, bad): (Vec<usize>, Vec<usize>) =
            ixs.iter().partition(|&&i| batch[i].row.len() == width);
        for i in bad {
            let _ = batch[i].reply.send(Err(PredictError::WrongWidth {
                expected: width,
                got: batch[i].row.len(),
            }));
        }
        if ixs.is_empty() {
            continue;
        }
        scratch.rows.reset(width);
        for &i in &ixs {
            scratch.rows.push_row(&batch[i].row);
        }
        match model.predict_scaled_batch(&scratch.rows) {
            Ok(predictions) => {
                metrics.record_predictions(&model.artifact.name, ixs.len() as u64);
                for (&i, prediction) in ixs.iter().zip(predictions) {
                    let _ = batch[i].reply.send(Ok(prediction));
                }
            }
            Err(e) => {
                for &i in &ixs {
                    let _ = batch[i].reply.send(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{ModelArtifact, TrainSpec};
    use crate::registry::ModelRegistry;
    use traj_geolife::{SynthConfig, SynthDataset};

    fn loaded_model() -> Arc<LoadedModel> {
        let segs = SynthDataset::generate(&SynthConfig {
            n_users: 3,
            segments_per_user: (4, 6),
            seed: 13,
            ..SynthConfig::default()
        })
        .segments;
        let spec = TrainSpec {
            kind: traj_ml::ClassifierKind::DecisionTree,
            ..TrainSpec::paper_default("batcher-test")
        };
        let mut reg = ModelRegistry::new();
        reg.insert(ModelArtifact::train(&spec, &segs).unwrap())
            .unwrap();
        reg.get(None).unwrap()
    }

    #[test]
    fn batcher_answers_every_submission() {
        let model = loaded_model();
        let metrics = Arc::new(ServeMetrics::new(&["batcher-test".to_owned()]));
        let batcher = MicroBatcher::new(
            BatchConfig {
                policy: SchedulerPolicy::Fixed {
                    max_batch: 4,
                    max_delay: Duration::from_millis(5),
                },
                ..BatchConfig::default()
            },
            Arc::clone(&metrics),
        );

        let n_features = model.artifact.feature_names.len();
        let receivers: Vec<_> = (0..10)
            .map(|i| {
                batcher
                    .submit(
                        Arc::clone(&model),
                        vec![i as f64 * 0.05; n_features],
                        Priority::Interactive,
                    )
                    .expect("admitted")
            })
            .collect();
        for rx in receivers {
            let pred = rx.recv().expect("reply").expect("fitted model");
            assert!(pred.class < model.artifact.scheme.n_classes());
        }
        assert!(metrics.batch_size.count() > 0);
        assert!(metrics.scheduler.queue_wait_us.count() >= 10);
        drop(batcher);
        // All 10 predictions were counted.
        assert!(metrics.render_json().contains("\"batcher-test\": 10"));
    }

    #[test]
    fn wrong_width_rows_error_instead_of_killing_the_batcher() {
        let model = loaded_model();
        let metrics = Arc::new(ServeMetrics::new(&["batcher-test".to_owned()]));
        let batcher = MicroBatcher::new(BatchConfig::default(), Arc::clone(&metrics));

        let bad = batcher
            .submit(Arc::clone(&model), vec![0.0; 3], Priority::Interactive)
            .expect("admitted");
        let err = bad.recv().expect("reply").expect_err("width mismatch");
        assert!(matches!(err, PredictError::WrongWidth { .. }), "{err:?}");

        // The batcher thread survived: a well-formed row still answers.
        let n_features = model.artifact.feature_names.len();
        let good = batcher
            .submit(
                Arc::clone(&model),
                vec![0.1; n_features],
                Priority::Interactive,
            )
            .expect("admitted");
        assert!(good.recv().expect("reply").is_ok());
    }

    #[test]
    fn submit_after_shutdown_replies_shutting_down() {
        let model = loaded_model();
        let metrics = Arc::new(ServeMetrics::new(&["batcher-test".to_owned()]));
        let batcher = MicroBatcher::new(BatchConfig::default(), Arc::clone(&metrics));
        // Simulate the race where a request worker holds the batcher
        // across shutdown: mark shutdown, keep the handle alive.
        {
            let mut inner = batcher.shared.inner.lock().unwrap();
            inner.shutdown = true;
        }
        batcher.shared.cond.notify_all();
        let n_features = model.artifact.feature_names.len();
        let rx = batcher
            .submit(
                Arc::clone(&model),
                vec![0.1; n_features],
                Priority::Interactive,
            )
            .expect("typed reply, not a shed");
        assert_eq!(
            rx.recv().expect("reply"),
            Err(PredictError::ShuttingDown),
            "shutdown must answer with the typed error, not drop the channel"
        );
    }

    #[test]
    fn full_queue_sheds_bulk_before_interactive() {
        let model = loaded_model();
        let metrics = Arc::new(ServeMetrics::new(&["batcher-test".to_owned()]));
        let batcher = MicroBatcher::new(
            BatchConfig {
                queue_cap: 8,
                ..BatchConfig::default()
            },
            Arc::clone(&metrics),
        );
        // Wedge the queue by pre-filling while the flush thread is
        // blocked behind the lock.
        let n_features = model.artifact.feature_names.len();
        let mut receivers = Vec::new();
        {
            let mut inner = batcher.shared.inner.lock().unwrap();
            for _ in 0..8 {
                let (reply, rx) = sync_channel(1);
                let now = Instant::now();
                inner.queues[Priority::Interactive as usize].push_back(Job {
                    model: Arc::clone(&model),
                    row: vec![0.1; n_features],
                    reply,
                    enqueued: now,
                    deadline: now + Duration::from_millis(50),
                });
                inner.depth += 1;
                receivers.push(rx);
            }
            // Depth 8 = cap: bulk (limit 4) and interactive (limit 8)
            // must both shed; close must not.
            drop(inner);
            let bulk = batcher.submit(Arc::clone(&model), vec![0.1; n_features], Priority::Bulk);
            assert!(bulk.is_err(), "bulk must shed at cap");
            let interactive = batcher.submit(
                Arc::clone(&model),
                vec![0.1; n_features],
                Priority::Interactive,
            );
            let shed = interactive.expect_err("interactive must shed at cap");
            assert!(shed.retry_after >= Duration::from_millis(1));
            let close = batcher
                .submit(Arc::clone(&model), vec![0.1; n_features], Priority::Close)
                .expect("close is never shed");
            receivers.push(close);
        }
        batcher.shared.cond.notify_one();
        for rx in receivers {
            assert!(rx.recv().expect("reply").is_ok());
        }
        assert!(
            metrics
                .scheduler
                .shed_bulk
                .load(std::sync::atomic::Ordering::Relaxed)
                == 1
        );
        assert!(
            metrics
                .scheduler
                .shed_interactive
                .load(std::sync::atomic::Ordering::Relaxed)
                == 1
        );
    }

    #[test]
    fn service_estimator_extrapolates_sanely() {
        let mut est = ServiceEstimator::new();
        assert_eq!(est.estimate_ns(16), 0, "no data yet");
        est.observe(8, 80_000.0);
        assert_eq!(est.estimate_ns(8), 80_000);
        // Above the seen bucket: per-row scale-up from below.
        assert_eq!(est.estimate_ns(16), 160_000);
        // Below the seen bucket: pessimistic value from above.
        assert_eq!(est.estimate_ns(2), 80_000);
        // EWMA converges toward repeated observations.
        for _ in 0..50 {
            est.observe(8, 40_000.0);
        }
        let settled = est.estimate_ns(8);
        assert!((39_000..=41_000).contains(&settled), "{settled}");
        assert!(est.drain_estimate(100, 32) >= Duration::from_millis(1));
    }
}
