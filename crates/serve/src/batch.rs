//! Micro-batching: concurrent prediction jobs are coalesced and flushed
//! together when either the batch fills (`max_batch`) or the oldest job
//! has waited `max_delay`.
//!
//! Feature extraction stays on the request workers (it is per-segment and
//! embarrassingly parallel); only the scaled model-input rows flow through
//! the batcher. A flush groups the queued jobs by model and pushes each
//! group through [`LoadedModel::predict_scaled_batch`] — one compiled
//! level-synchronous traversal per model instead of a per-row walk. Each
//! job carries a reply channel; callers block on it.

use crate::metrics::ServeMetrics;
use crate::registry::{LoadedModel, Prediction};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use traj_ml::{PredictError, RowMatrix};

/// Flush policy of the [`MicroBatcher`].
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Flush when this many jobs are queued.
    pub max_batch: usize,
    /// Flush when the oldest queued job is this old.
    pub max_delay: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
        }
    }
}

/// One queued prediction.
struct Job {
    model: Arc<LoadedModel>,
    row: Vec<f64>,
    reply: SyncSender<Result<Prediction, PredictError>>,
}

/// Handle to the batching thread. Dropping it stops the thread.
pub struct MicroBatcher {
    tx: Option<Sender<Job>>,
    worker: Option<JoinHandle<()>>,
}

impl MicroBatcher {
    /// Spawns the batching thread.
    pub fn new(config: BatchConfig, metrics: Arc<ServeMetrics>) -> MicroBatcher {
        let (tx, rx) = std::sync::mpsc::channel::<Job>();
        let max_batch = config.max_batch.max(1);
        let worker = std::thread::Builder::new()
            .name("traj-serve-batcher".to_owned())
            .spawn(move || batch_loop(&rx, max_batch, config.max_delay, &metrics))
            .expect("spawn batcher thread");
        MicroBatcher {
            tx: Some(tx),
            worker: Some(worker),
        }
    }

    /// Enqueues one scaled row for `model`; the prediction arrives on the
    /// returned channel after the batch it joins is flushed.
    pub fn submit(
        &self,
        model: Arc<LoadedModel>,
        row: Vec<f64>,
    ) -> Receiver<Result<Prediction, PredictError>> {
        let (reply, result) = sync_channel(1);
        // A disconnected queue surfaces as a dropped reply sender, which
        // the caller observes as RecvError.
        let job = Job { model, row, reply };
        if let Some(tx) = &self.tx {
            let _ = tx.send(job);
        }
        result
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        self.tx = None; // Disconnects the queue; the thread drains and exits.
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

fn batch_loop(rx: &Receiver<Job>, max_batch: usize, max_delay: Duration, metrics: &ServeMetrics) {
    loop {
        // Block for the first job of a batch.
        let Ok(first) = rx.recv() else {
            return; // Queue disconnected: server shut down.
        };
        let deadline = Instant::now() + max_delay;
        let mut batch = vec![first];
        while batch.len() < max_batch {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                break;
            };
            match rx.recv_timeout(remaining) {
                Ok(job) => batch.push(job),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        metrics.batch_size.record(batch.len() as u64);
        flush(batch, metrics);
    }
}

/// Answers every job of one flush: jobs are grouped by model (a batch
/// usually holds one, `Arc::ptr_eq` keeps grouping O(groups·jobs)), each
/// group runs as one call to [`LoadedModel::predict_scaled_batch`], and
/// per-group errors fan back out to every affected reply channel.
fn flush(batch: Vec<Job>, metrics: &ServeMetrics) {
    let mut groups: Vec<(Arc<LoadedModel>, Vec<usize>)> = Vec::new();
    for (i, job) in batch.iter().enumerate() {
        match groups
            .iter_mut()
            .find(|(model, _)| Arc::ptr_eq(model, &job.model))
        {
            Some((_, ixs)) => ixs.push(i),
            None => groups.push((Arc::clone(&job.model), vec![i])),
        }
    }

    for (model, ixs) in &groups {
        let width = model.input_width();
        let (ixs, bad): (Vec<usize>, Vec<usize>) =
            ixs.iter().partition(|&&i| batch[i].row.len() == width);
        for i in bad {
            let _ = batch[i].reply.send(Err(PredictError::WrongWidth {
                expected: width,
                got: batch[i].row.len(),
            }));
        }
        if ixs.is_empty() {
            continue;
        }
        let mut rows = RowMatrix::with_width(width);
        for &i in &ixs {
            rows.push_row(&batch[i].row);
        }
        match model.predict_scaled_batch(&rows) {
            Ok(predictions) => {
                metrics.record_predictions(&model.artifact.name, ixs.len() as u64);
                for (&i, prediction) in ixs.iter().zip(predictions) {
                    let _ = batch[i].reply.send(Ok(prediction));
                }
            }
            Err(e) => {
                for &i in &ixs {
                    let _ = batch[i].reply.send(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{ModelArtifact, TrainSpec};
    use crate::registry::ModelRegistry;
    use traj_geolife::{SynthConfig, SynthDataset};

    fn loaded_model() -> Arc<LoadedModel> {
        let segs = SynthDataset::generate(&SynthConfig {
            n_users: 3,
            segments_per_user: (4, 6),
            seed: 13,
            ..SynthConfig::default()
        })
        .segments;
        let spec = TrainSpec {
            kind: traj_ml::ClassifierKind::DecisionTree,
            ..TrainSpec::paper_default("batcher-test")
        };
        let mut reg = ModelRegistry::new();
        reg.insert(ModelArtifact::train(&spec, &segs).unwrap())
            .unwrap();
        reg.get(None).unwrap()
    }

    #[test]
    fn batcher_answers_every_submission() {
        let model = loaded_model();
        let metrics = Arc::new(ServeMetrics::new(&["batcher-test".to_owned()]));
        let batcher = MicroBatcher::new(
            BatchConfig {
                max_batch: 4,
                max_delay: Duration::from_millis(5),
            },
            Arc::clone(&metrics),
        );

        let n_features = model.artifact.feature_names.len();
        let receivers: Vec<_> = (0..10)
            .map(|i| batcher.submit(Arc::clone(&model), vec![i as f64 * 0.05; n_features]))
            .collect();
        for rx in receivers {
            let pred = rx.recv().expect("reply").expect("fitted model");
            assert!(pred.class < model.artifact.scheme.n_classes());
        }
        assert!(metrics.batch_size.count() > 0);
        drop(batcher);
        // All 10 predictions were counted.
        assert!(metrics.render_json().contains("\"batcher-test\": 10"));
    }

    #[test]
    fn wrong_width_rows_error_instead_of_killing_the_batcher() {
        let model = loaded_model();
        let metrics = Arc::new(ServeMetrics::new(&["batcher-test".to_owned()]));
        let batcher = MicroBatcher::new(BatchConfig::default(), Arc::clone(&metrics));

        let bad = batcher.submit(Arc::clone(&model), vec![0.0; 3]);
        let err = bad.recv().expect("reply").expect_err("width mismatch");
        assert!(matches!(err, PredictError::WrongWidth { .. }), "{err:?}");

        // The batcher thread survived: a well-formed row still answers.
        let n_features = model.artifact.feature_names.len();
        let good = batcher.submit(Arc::clone(&model), vec![0.1; n_features]);
        assert!(good.recv().expect("reply").is_ok());
    }
}
