//! Lock-free serving metrics: request/error counters, latency and
//! batch-size histograms, and per-model prediction counters.
//!
//! Everything is atomics over fixed bucket layouts, so the hot path never
//! takes a lock; `/metrics` renders a JSON snapshot with percentiles
//! estimated from the histogram buckets (upper-bound interpolation).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Upper bounds (inclusive) of the latency buckets, in microseconds.
const LATENCY_BOUNDS_US: [u64; 14] = [
    50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000,
    1_000_000,
];

/// Upper bounds (inclusive) of the batch-size buckets.
const BATCH_BOUNDS: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// Upper bounds (inclusive) of the sketch-drift buckets, in parts per
/// million of the series value range (the documented contract caps
/// realized drift at 250 000 ppm = 0.25 × range).
const DRIFT_BOUNDS_PPM: [u64; 10] = [
    1, 10, 100, 1_000, 5_000, 10_000, 50_000, 100_000, 150_000, 250_000,
];

/// A fixed-bucket histogram with atomic counters.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    counts: Vec<AtomicU64>,
    /// Overflow bucket for values above the last bound.
    overflow: AtomicU64,
    total: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    pub(crate) fn new(bounds: &'static [u64]) -> Histogram {
        Histogram {
            bounds,
            counts: bounds.iter().map(|_| AtomicU64::new(0)).collect(),
            overflow: AtomicU64::new(0),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        match self.bounds.iter().position(|&b| value <= b) {
            Some(i) => self.counts[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Mean observation, or 0 with no data.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Quantile estimate: the upper bound of the bucket holding the
    /// q-th observation (`q` in `[0, 1]`). Returns 0 with no data; values
    /// past the last bound report the last bound.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return self.bounds[i];
            }
        }
        *self.bounds.last().expect("non-empty bounds")
    }

    /// `[bound, count]` pairs including the overflow bucket (bound 0).
    fn snapshot(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = self
            .bounds
            .iter()
            .zip(&self.counts)
            .map(|(&b, c)| (b, c.load(Ordering::Relaxed)))
            .collect();
        out.push((0, self.overflow.load(Ordering::Relaxed)));
        out
    }
}

/// Streaming-ingestion metrics (`POST /ingest` and the idle sweeper).
///
/// The monotonic counters mirror the engine's own counters —
/// [`IngestMetrics::sync_engine`] stores the authoritative engine
/// snapshot rather than double-counting — while the histograms are
/// recorded at the serving layer, where close-to-prediction latency and
/// per-close sketch drift are observable.
#[derive(Debug)]
pub struct IngestMetrics {
    /// Points accepted into sessions (engine snapshot).
    pub points_total: AtomicU64,
    /// Points dropped by the timestamp policy (engine snapshot).
    pub points_dropped: AtomicU64,
    /// Admitted segment closes (engine snapshot).
    pub segments_closed: AtomicU64,
    /// Discarded short closes (engine snapshot).
    pub segments_discarded: AtomicU64,
    /// Sessions evicted by the session cap (engine snapshot).
    pub evictions: AtomicU64,
    /// Gauge: currently open sessions.
    pub open_sessions: AtomicU64,
    /// Gauge: bytes of per-user session state.
    pub state_bytes: AtomicU64,
    /// Closes whose features were bit-identical to the batch pipeline.
    pub exact_closes: AtomicU64,
    /// Closes answered from degraded (sketch-phase) summaries.
    pub sketch_closes: AtomicU64,
    /// Segment-close-to-prediction latency, microseconds (request-path
    /// closes only; idle/eviction closes have no requester to answer).
    pub close_latency_us: Histogram,
    /// Realized sketch-vs-exact drift per close, ppm of the value range.
    pub sketch_drift_ppm: Histogram,
    /// Process start, for the derived points/sec rate.
    started: std::time::Instant,
}

impl IngestMetrics {
    fn new() -> IngestMetrics {
        IngestMetrics {
            points_total: AtomicU64::new(0),
            points_dropped: AtomicU64::new(0),
            segments_closed: AtomicU64::new(0),
            segments_discarded: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            open_sessions: AtomicU64::new(0),
            state_bytes: AtomicU64::new(0),
            exact_closes: AtomicU64::new(0),
            sketch_closes: AtomicU64::new(0),
            close_latency_us: Histogram::new(&LATENCY_BOUNDS_US),
            sketch_drift_ppm: Histogram::new(&DRIFT_BOUNDS_PPM),
            started: std::time::Instant::now(),
        }
    }

    /// Stores an authoritative engine snapshot into the mirrored
    /// counters and gauges.
    pub fn sync_engine(
        &self,
        stats: &traj_stream::EngineStats,
        open_sessions: u64,
        state_bytes: u64,
    ) {
        self.points_total
            .store(stats.points_accepted, Ordering::Relaxed);
        self.points_dropped
            .store(stats.points_dropped, Ordering::Relaxed);
        self.segments_closed
            .store(stats.segments_closed, Ordering::Relaxed);
        self.segments_discarded
            .store(stats.segments_discarded, Ordering::Relaxed);
        self.evictions.store(stats.evictions, Ordering::Relaxed);
        self.open_sessions.store(open_sessions, Ordering::Relaxed);
        self.state_bytes.store(state_bytes, Ordering::Relaxed);
    }

    /// Records one closed segment: `latency_us` when a request was
    /// waiting on the prediction, `drift` when the close was still exact.
    pub fn record_close(&self, latency_us: Option<u64>, exact: bool, drift: Option<f64>) {
        if exact {
            self.exact_closes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.sketch_closes.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(us) = latency_us {
            self.close_latency_us.record(us);
        }
        if let Some(d) = drift {
            self.sketch_drift_ppm.record((d * 1e6).round() as u64);
        }
    }

    fn render_json(&self) -> String {
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let points = self.points_total.load(Ordering::Relaxed);
        let lat = &self.close_latency_us;
        let drift = &self.sketch_drift_ppm;
        format!(
            "{{\"points_total\": {}, \"points_dropped\": {}, \"points_per_sec\": {:.1}, \
             \"open_sessions\": {}, \"state_bytes\": {}, \"segments_closed\": {}, \
             \"segments_discarded\": {}, \"evictions\": {}, \"exact_closes\": {}, \
             \"sketch_closes\": {}, \
             \"close_latency_us\": {{\"count\": {}, \"mean\": {:.1}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": {}}}, \
             \"sketch_drift_ppm\": {{\"count\": {}, \"mean\": {:.1}, \"p50\": {}, \"p99\": {}, \"buckets\": {}}}}}",
            points,
            self.points_dropped.load(Ordering::Relaxed),
            points as f64 / elapsed,
            self.open_sessions.load(Ordering::Relaxed),
            self.state_bytes.load(Ordering::Relaxed),
            self.segments_closed.load(Ordering::Relaxed),
            self.segments_discarded.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
            self.exact_closes.load(Ordering::Relaxed),
            self.sketch_closes.load(Ordering::Relaxed),
            lat.count(),
            lat.mean(),
            lat.quantile(0.50),
            lat.quantile(0.95),
            lat.quantile(0.99),
            render_buckets(&lat.snapshot()),
            drift.count(),
            drift.mean(),
            drift.quantile(0.50),
            drift.quantile(0.99),
            render_buckets(&drift.snapshot()),
        )
    }
}

/// Durability metrics: WAL volume, fsync latency, snapshot cadence and
/// the last recovery's outcome. Dormant (`"enabled": false`) unless the
/// server runs with a WAL attached.
///
/// The WAL counters mirror [`traj_wal::WalStats`] — synced from the
/// authoritative log on `/metrics` renders and maintenance ticks — while
/// the fsync histogram is fed push-style through the log's sync
/// observer, reusing the same lock-free [`Histogram`] as the latency
/// metrics.
#[derive(Debug)]
pub struct DurabilityMetrics {
    enabled: AtomicBool,
    /// Highest assigned LSN (WAL snapshot).
    pub wal_last_lsn: AtomicU64,
    /// Live segment files (WAL snapshot).
    pub wal_segments: AtomicU64,
    /// Bytes across live segments (WAL snapshot).
    pub wal_live_bytes: AtomicU64,
    /// Records appended since open (WAL snapshot).
    pub wal_appended_records: AtomicU64,
    /// Frame bytes appended since open (WAL snapshot).
    pub wal_appended_bytes: AtomicU64,
    /// Fsyncs performed since open (WAL snapshot).
    pub wal_syncs: AtomicU64,
    /// Failed append batches (engine snapshot): accepted state that is
    /// not durable.
    pub wal_append_errors: AtomicU64,
    /// Fsync duration, microseconds (fed by the WAL's sync observer).
    pub fsync_us: Histogram,
    /// Snapshots written since start.
    pub snapshots_written: AtomicU64,
    /// Snapshot writes that failed (the WAL keeps growing meanwhile).
    pub snapshot_errors: AtomicU64,
    /// LSN of the newest snapshot.
    pub snapshot_lsn: AtomicU64,
    /// Sessions captured in the newest snapshot.
    pub snapshot_sessions: AtomicU64,
    /// Snapshot encode+write+truncate duration, microseconds.
    pub snapshot_write_us: Histogram,
    /// Seconds since start at the last snapshot write (0 = never).
    last_snapshot_s: AtomicU64,
    /// Sessions restored by the boot-time recovery.
    pub recovered_sessions: AtomicU64,
    /// WAL records applied by the boot-time recovery.
    pub recovered_records: AtomicU64,
    /// Boot-time recovery duration, milliseconds.
    pub recovery_ms: AtomicU64,
    /// Repair/skip diagnostics the recovery logged.
    pub recovery_diagnostics: AtomicU64,
    started: std::time::Instant,
}

impl DurabilityMetrics {
    fn new() -> DurabilityMetrics {
        DurabilityMetrics {
            enabled: AtomicBool::new(false),
            wal_last_lsn: AtomicU64::new(0),
            wal_segments: AtomicU64::new(0),
            wal_live_bytes: AtomicU64::new(0),
            wal_appended_records: AtomicU64::new(0),
            wal_appended_bytes: AtomicU64::new(0),
            wal_syncs: AtomicU64::new(0),
            wal_append_errors: AtomicU64::new(0),
            fsync_us: Histogram::new(&LATENCY_BOUNDS_US),
            snapshots_written: AtomicU64::new(0),
            snapshot_errors: AtomicU64::new(0),
            snapshot_lsn: AtomicU64::new(0),
            snapshot_sessions: AtomicU64::new(0),
            snapshot_write_us: Histogram::new(&LATENCY_BOUNDS_US),
            last_snapshot_s: AtomicU64::new(0),
            recovered_sessions: AtomicU64::new(0),
            recovered_records: AtomicU64::new(0),
            recovery_ms: AtomicU64::new(0),
            recovery_diagnostics: AtomicU64::new(0),
            started: std::time::Instant::now(),
        }
    }

    /// Marks durability active (renders the full section).
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Whether a WAL is attached.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Stores an authoritative WAL snapshot into the mirrored counters.
    pub fn sync_wal(&self, stats: &traj_wal::WalStats, append_errors: u64) {
        self.wal_last_lsn.store(stats.last_lsn, Ordering::Relaxed);
        self.wal_segments
            .store(stats.segments as u64, Ordering::Relaxed);
        self.wal_live_bytes
            .store(stats.live_bytes, Ordering::Relaxed);
        self.wal_appended_records
            .store(stats.appended_records, Ordering::Relaxed);
        self.wal_appended_bytes
            .store(stats.appended_bytes, Ordering::Relaxed);
        self.wal_syncs.store(stats.syncs, Ordering::Relaxed);
        self.wal_append_errors
            .store(append_errors, Ordering::Relaxed);
    }

    /// Records one snapshot write (covering `lsn`, holding `sessions`).
    pub fn record_snapshot(&self, lsn: u64, sessions: u64, write_us: u64) {
        self.snapshots_written.fetch_add(1, Ordering::Relaxed);
        self.snapshot_lsn.store(lsn, Ordering::Relaxed);
        self.snapshot_sessions.store(sessions, Ordering::Relaxed);
        self.snapshot_write_us.record(write_us);
        self.last_snapshot_s
            .store(self.started.elapsed().as_secs().max(1), Ordering::Relaxed);
    }

    /// Stores the boot-time recovery outcome.
    pub fn record_recovery(&self, report: &traj_stream::RecoveryReport) {
        self.recovered_sessions
            .store(report.snapshot_sessions as u64, Ordering::Relaxed);
        self.recovered_records
            .store(report.applied_records, Ordering::Relaxed);
        self.recovery_ms.store(report.elapsed_ms, Ordering::Relaxed);
        self.recovery_diagnostics
            .store(report.diagnostics.len() as u64, Ordering::Relaxed);
    }

    /// Seconds since the last snapshot write, or `None` before the first.
    pub fn snapshot_age_s(&self) -> Option<u64> {
        let at = self.last_snapshot_s.load(Ordering::Relaxed);
        if at == 0 {
            return None;
        }
        Some(self.started.elapsed().as_secs().saturating_sub(at))
    }

    fn render_json(&self) -> String {
        if !self.is_enabled() {
            return "{\"enabled\": false}".to_owned();
        }
        let fsync = &self.fsync_us;
        let snap = &self.snapshot_write_us;
        let age = self
            .snapshot_age_s()
            .map_or("null".to_owned(), |s| s.to_string());
        format!(
            "{{\"enabled\": true, \"wal_last_lsn\": {}, \"wal_segments\": {}, \
             \"wal_live_bytes\": {}, \"wal_appended_records\": {}, \"wal_appended_bytes\": {}, \
             \"wal_syncs\": {}, \"wal_append_errors\": {}, \
             \"fsync_us\": {{\"count\": {}, \"mean\": {:.1}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": {}}}, \
             \"snapshots_written\": {}, \"snapshot_errors\": {}, \"snapshot_lsn\": {}, \
             \"snapshot_sessions\": {}, \"snapshot_age_s\": {}, \
             \"snapshot_write_us\": {{\"count\": {}, \"mean\": {:.1}, \"p50\": {}, \"p99\": {}}}, \
             \"recovery\": {{\"sessions\": {}, \"wal_records_applied\": {}, \"elapsed_ms\": {}, \"diagnostics\": {}}}}}",
            self.wal_last_lsn.load(Ordering::Relaxed),
            self.wal_segments.load(Ordering::Relaxed),
            self.wal_live_bytes.load(Ordering::Relaxed),
            self.wal_appended_records.load(Ordering::Relaxed),
            self.wal_appended_bytes.load(Ordering::Relaxed),
            self.wal_syncs.load(Ordering::Relaxed),
            self.wal_append_errors.load(Ordering::Relaxed),
            fsync.count(),
            fsync.mean(),
            fsync.quantile(0.50),
            fsync.quantile(0.95),
            fsync.quantile(0.99),
            render_buckets(&fsync.snapshot()),
            self.snapshots_written.load(Ordering::Relaxed),
            self.snapshot_errors.load(Ordering::Relaxed),
            self.snapshot_lsn.load(Ordering::Relaxed),
            self.snapshot_sessions.load(Ordering::Relaxed),
            age,
            snap.count(),
            snap.mean(),
            snap.quantile(0.50),
            snap.quantile(0.99),
            self.recovered_sessions.load(Ordering::Relaxed),
            self.recovered_records.load(Ordering::Relaxed),
            self.recovery_ms.load(Ordering::Relaxed),
            self.recovery_diagnostics.load(Ordering::Relaxed),
        )
    }
}

/// Scheduler metrics: batch-queue wait, deadline misses against the
/// configured SLO, and admission-control sheds per priority class.
#[derive(Debug)]
pub struct SchedulerMetrics {
    /// Time jobs spent in the batch queue before being flushed, µs.
    pub queue_wait_us: Histogram,
    /// Jobs whose flush completed after their SLO deadline.
    pub deadline_misses: AtomicU64,
    /// Interactive (`/predict`) submissions rejected with 429.
    pub shed_interactive: AtomicU64,
    /// Close-time submissions rejected (always 0 by policy; kept so a
    /// policy regression is visible).
    pub shed_close: AtomicU64,
    /// Bulk (`/predict_batch`) submissions rejected with 429.
    pub shed_bulk: AtomicU64,
    /// Submissions answered with `ShuttingDown` during shutdown.
    pub shutdown_rejects: AtomicU64,
}

impl SchedulerMetrics {
    fn new() -> SchedulerMetrics {
        SchedulerMetrics {
            queue_wait_us: Histogram::new(&LATENCY_BOUNDS_US),
            deadline_misses: AtomicU64::new(0),
            shed_interactive: AtomicU64::new(0),
            shed_close: AtomicU64::new(0),
            shed_bulk: AtomicU64::new(0),
            shutdown_rejects: AtomicU64::new(0),
        }
    }

    /// Counts one admission rejection for `priority`.
    pub fn record_shed(&self, priority: crate::batch::Priority) {
        match priority {
            crate::batch::Priority::Interactive => &self.shed_interactive,
            crate::batch::Priority::Close => &self.shed_close,
            crate::batch::Priority::Bulk => &self.shed_bulk,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Total sheds across classes.
    pub fn shed_total(&self) -> u64 {
        self.shed_interactive.load(Ordering::Relaxed)
            + self.shed_close.load(Ordering::Relaxed)
            + self.shed_bulk.load(Ordering::Relaxed)
    }

    fn render_json(&self) -> String {
        let wait = &self.queue_wait_us;
        format!(
            "{{\"queue_wait_us\": {{\"count\": {}, \"mean\": {:.1}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": {}}}, \
             \"deadline_misses\": {}, \"shed_interactive\": {}, \"shed_close\": {}, \
             \"shed_bulk\": {}, \"shutdown_rejects\": {}}}",
            wait.count(),
            wait.mean(),
            wait.quantile(0.50),
            wait.quantile(0.95),
            wait.quantile(0.99),
            render_buckets(&wait.snapshot()),
            self.deadline_misses.load(Ordering::Relaxed),
            self.shed_interactive.load(Ordering::Relaxed),
            self.shed_close.load(Ordering::Relaxed),
            self.shed_bulk.load(Ordering::Relaxed),
            self.shutdown_rejects.load(Ordering::Relaxed),
        )
    }
}

/// All serving metrics; shared across workers behind an `Arc`.
#[derive(Debug)]
pub struct ServeMetrics {
    /// Requests accepted (any route, any outcome).
    pub requests_total: AtomicU64,
    /// Responses with 2xx status.
    pub responses_2xx: AtomicU64,
    /// Responses with 4xx status.
    pub responses_4xx: AtomicU64,
    /// Responses with 5xx status.
    pub responses_5xx: AtomicU64,
    /// End-to-end request latency, microseconds.
    pub latency_us: Histogram,
    /// Sizes of flushed prediction micro-batches.
    pub batch_size: Histogram,
    /// Batch-queue scheduling metrics (wait, deadline misses, sheds).
    pub scheduler: SchedulerMetrics,
    /// Streaming-ingestion gauges and histograms.
    pub ingest: IngestMetrics,
    /// WAL / snapshot / recovery metrics (dormant without a WAL).
    pub durability: DurabilityMetrics,
    /// Predictions served per registry model name.
    per_model: BTreeMap<String, AtomicU64>,
}

impl ServeMetrics {
    /// Creates metrics with one prediction counter per model name.
    pub fn new(model_names: &[String]) -> ServeMetrics {
        ServeMetrics {
            requests_total: AtomicU64::new(0),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            latency_us: Histogram::new(&LATENCY_BOUNDS_US),
            batch_size: Histogram::new(&BATCH_BOUNDS),
            scheduler: SchedulerMetrics::new(),
            ingest: IngestMetrics::new(),
            durability: DurabilityMetrics::new(),
            per_model: model_names
                .iter()
                .map(|n| (n.clone(), AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Counts one response with `status`, observed after `latency_us`.
    pub fn record_response(&self, status: u16, latency_us: u64) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.latency_us.record(latency_us);
    }

    /// Counts `n` predictions served by `model`.
    pub fn record_predictions(&self, model: &str, n: u64) {
        if let Some(counter) = self.per_model.get(model) {
            counter.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The `/metrics` JSON document.
    pub fn render_json(&self) -> String {
        self.render_json_with(None)
    }

    /// The `/metrics` JSON document with an optional pre-rendered
    /// `"shard"` label object (shard id + served artifact versions) —
    /// what a cluster router's aggregated `/metrics` keys shards by.
    pub fn render_json_with(&self, shard: Option<&str>) -> String {
        self.render_json_with_net(shard, None)
    }

    /// Like [`ServeMetrics::render_json_with`], additionally embedding a
    /// pre-rendered `"net"` object (the connection reactor's counters,
    /// `traj_net::NetStats::render_json`). Rendering stays string-based
    /// so the reactor crate needs no dependency on this one.
    pub fn render_json_with_net(&self, shard: Option<&str>, net: Option<&str>) -> String {
        let lat = &self.latency_us;
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        if let Some(label) = shard {
            out.push_str(&format!("  \"shard\": {label},\n"));
        }
        out.push_str(&format!(
            "  \"requests_total\": {},\n  \"responses_2xx\": {},\n  \"responses_4xx\": {},\n  \"responses_5xx\": {},\n",
            self.requests_total.load(Ordering::Relaxed),
            self.responses_2xx.load(Ordering::Relaxed),
            self.responses_4xx.load(Ordering::Relaxed),
            self.responses_5xx.load(Ordering::Relaxed),
        ));
        out.push_str(&format!(
            "  \"latency_us\": {{\"count\": {}, \"mean\": {:.1}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": {}}},\n",
            lat.count(),
            lat.mean(),
            lat.quantile(0.50),
            lat.quantile(0.95),
            lat.quantile(0.99),
            render_buckets(&lat.snapshot()),
        ));
        let batch = &self.batch_size;
        out.push_str(&format!(
            "  \"batch_size\": {{\"count\": {}, \"mean\": {:.2}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": {}}},\n",
            batch.count(),
            batch.mean(),
            batch.quantile(0.50),
            batch.quantile(0.95),
            batch.quantile(0.99),
            render_buckets(&batch.snapshot()),
        ));
        out.push_str(&format!(
            "  \"scheduler\": {},\n",
            self.scheduler.render_json()
        ));
        if let Some(net) = net {
            out.push_str(&format!("  \"net\": {net},\n"));
        }
        out.push_str(&format!("  \"ingest\": {},\n", self.ingest.render_json()));
        out.push_str(&format!(
            "  \"durability\": {},\n",
            self.durability.render_json()
        ));
        out.push_str("  \"predictions_per_model\": {");
        let mut first = true;
        for (name, counter) in &self.per_model {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!(
                "\"{}\": {}",
                name,
                counter.load(Ordering::Relaxed)
            ));
        }
        out.push_str("}\n}");
        out
    }
}

/// Buckets as a JSON array of `{"le": bound, "count": n}` (the overflow
/// bucket renders `"le": "inf"`).
fn render_buckets(snapshot: &[(u64, u64)]) -> String {
    let mut out = String::from("[");
    for (i, &(bound, count)) in snapshot.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        if bound == 0 {
            out.push_str(&format!("{{\"le\": \"inf\", \"count\": {count}}}"));
        } else {
            out.push_str(&format!("{{\"le\": {bound}, \"count\": {count}}}"));
        }
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_track_buckets() {
        let h = Histogram::new(&LATENCY_BOUNDS_US);
        assert_eq!(h.quantile(0.5), 0);
        for v in [40, 40, 40, 40, 40, 40, 40, 40, 40, 9_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.quantile(0.5), 50);
        assert_eq!(h.quantile(0.99), 10_000);
        assert!(h.mean() > 40.0);
        // Overflow values clamp to the last bound.
        h.record(10_000_000);
        assert_eq!(h.quantile(1.0), 1_000_000);
    }

    #[test]
    fn metrics_render_valid_json_with_counters() {
        let m = ServeMetrics::new(&["rf".to_owned(), "xgb".to_owned()]);
        m.record_response(200, 750);
        m.record_response(404, 80);
        m.record_predictions("rf", 3);
        m.batch_size.record(3);
        let json = m.render_json();
        let value = serde_json::parse_value(&json).expect("valid JSON");
        let text = serde_json::to_string(&value).unwrap();
        assert!(text.contains("\"requests_total\":2"));
        assert!(text.contains("\"rf\":3"));
        assert!(text.contains("\"responses_4xx\":1"));
    }
}
